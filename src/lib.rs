//! Locality-Aware Data Replication in the Last-Level Cache — a from-scratch
//! Rust reproduction of Kurian, Devadas and Khan's HPCA 2014 paper.
//!
//! This crate is the umbrella of the workspace: it re-exports every
//! sub-crate under a stable module path and provides a [`prelude`] with the
//! types most programs need.  See `README.md` for the architecture overview,
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure.
//!
//! # Quick start
//!
//! ```
//! use locality_replication::prelude::*;
//!
//! // A scaled-down system for a fast doc-test; use
//! // `SystemConfig::paper_default()` for the 64-core target of the paper.
//! let system = SystemConfig::small_test();
//! let trace = TraceGenerator::new(Benchmark::Barnes.profile())
//!     .generate(system.num_cores, 400, 7);
//!
//! let mut locality_aware = Simulator::new(system.clone(), ReplicationConfig::locality_aware(3));
//! let mut static_nuca = Simulator::new(system, ReplicationConfig::static_nuca());
//!
//! let with_replication = locality_aware.run(&trace);
//! let baseline = static_nuca.run(&trace);
//! assert!(with_replication.total_accesses == baseline.total_accesses);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lad_cache as cache;
pub use lad_coherence as coherence;
pub use lad_common as common;
pub use lad_dram as dram;
pub use lad_energy as energy;
pub use lad_noc as noc;
pub use lad_replication as replication;
pub use lad_serve as serve;
pub use lad_sim as sim;
pub use lad_trace as trace;
pub use lad_traceio as traceio;

/// The types most applications of the library need.
pub mod prelude {
    pub use lad_check::{
        check_view, explore, run_mutant, Event, ExploreOptions, Invariant, Model, ModelConfig,
        Mutant, ProtocolView, Violation, SEEDED_MUTANTS,
    };
    pub use lad_common::config::SystemConfig;
    pub use lad_common::json::JsonValue;
    pub use lad_common::types::{
        Address, CacheLine, CoreId, Cycle, DataClass, MemOp, MemoryAccess,
    };
    pub use lad_energy::accounting::Component;
    pub use lad_energy::model::EnergyModel;
    pub use lad_replication::classifier::{ClassifierKind, ReplicationMode};
    pub use lad_replication::config::ReplicationConfig;
    pub use lad_replication::placement::PlacementPolicy;
    pub use lad_replication::policy::{
        builtin_policy, EvictDecision, FillDecision, RegisteredScheme, ReplicationPolicy,
        SchemeRegistry,
    };
    pub use lad_replication::scheme::{SchemeId, SchemeKind, UnknownScheme};
    pub use lad_sim::engine::{AccessOutcome, ServedBy, Simulator};
    pub use lad_sim::experiment::{ExperimentRunner, ReplayError, SchemeComparison};
    pub use lad_sim::metrics::SimulationReport;
    pub use lad_trace::benchmarks::Benchmark;
    pub use lad_trace::error::ProfileError;
    pub use lad_trace::generator::TraceGenerator;
    pub use lad_trace::suite::BenchmarkSuite;
    pub use lad_traceio::{
        FileSource, GeneratorSource, MemorySource, ReaderSource, TraceError, TraceHeader,
        TraceReader, TraceSource, TraceWriter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_stack() {
        let system = SystemConfig::small_test();
        let trace = TraceGenerator::new(Benchmark::Dedup.profile()).generate(4, 50, 1);
        let mut sim = Simulator::new(system, ReplicationConfig::paper_default());
        let report = sim.run(&trace);
        assert_eq!(report.scheme, "RT-3");
        assert!(report.total_accesses >= 200);
    }
}
