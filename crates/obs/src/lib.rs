//! `lad-obs`: the workspace's observability subsystem.
//!
//! Three pieces, all dependency-free:
//!
//! * **Metrics** ([`registry`]) — a [`MetricsRegistry`] of typed
//!   instruments ([`Counter`], [`Gauge`], [`LatencyHistogram`]) resolved
//!   once into handles whose record path is a single `Relaxed` atomic
//!   operation.  [`MetricsRegistry::noop`] hands out disarmed handles for
//!   measuring the instrumentation overhead itself.
//! * **Tracing** ([`trace`]) — a bounded per-thread ring-buffer
//!   [`Tracer`] of structured [`TraceEvent`]s with monotonic timestamps
//!   and RAII [`Span`]s, drained on demand for post-mortem queries.
//! * **Exposition** ([`export`]) — [`prometheus_text`] renders a
//!   snapshot in the Prometheus text format (histograms as summaries
//!   with *exact* quantiles); [`metrics_json`] renders the same data
//!   through [`lad_common::json`].
//!
//! # Naming convention
//!
//! `lad_<component>_<what>[_<unit>][_total]`, lowercase with
//! underscores: `lad_serve_frames_in_total`, `lad_engine_accesses_total`,
//! `lad_serve_verb_latency_us` (labelled `verb="..."`).  Counters end in
//! `_total`; histograms carry their unit suffix (`_us` for
//! microseconds); gauges are bare nouns (`lad_serve_queue_depth`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod registry;
pub mod trace;

pub use export::{metrics_json, prometheus_text, EXPORT_QUANTILES};
pub use registry::{
    global, Counter, Gauge, Label, LatencyHistogram, MetricSample, MetricsRegistry, SampleValue,
};
pub use trace::{global_tracer, Span, TraceEvent, Tracer};
