//! Bounded ring-buffer structured-event tracing.
//!
//! A [`Tracer`] collects [`TraceEvent`]s into per-thread ring buffers:
//! the emitting thread appends to its own buffer under an uncontended
//! mutex (the lock is shared only with [`Tracer::drain`], which runs on
//! demand), so tracing never serializes the worker pool the way a single
//! global event log would.  Buffers are bounded — when a thread's buffer
//! is full the *oldest* event is dropped and counted, never the newest,
//! because post-mortem "what was this worker doing" queries care about
//! the most recent history.
//!
//! Timestamps are monotonic microseconds since the tracer was created
//! (`std::time::Instant`, never wall clock), so event order is meaningful
//! even across NTP steps.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic microseconds since the tracer's creation.
    pub micros: u64,
    /// Per-tracer thread index (assigned in registration order).
    pub thread: u64,
    /// Event name (e.g. `"execute_cell"`).
    pub name: String,
    /// Free-form detail (e.g. the cell's benchmark/scheme).
    pub detail: String,
    /// For span-end events, the span's duration in microseconds.
    pub duration_us: Option<u64>,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

struct ThreadBuffer {
    thread: u64,
    ring: Mutex<Ring>,
}

/// A handle on a tracer's per-thread event buffers.  Cloning shares the
/// buffers.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

struct TracerInner {
    id: u64,
    epoch: Instant,
    capacity: usize,
    next_thread: AtomicU64,
    buffers: Mutex<Vec<Arc<ThreadBuffer>>>,
}

thread_local! {
    /// This thread's registered buffers, keyed by tracer id.  Almost
    /// always length 0 or 1; a linear scan beats a map.
    static LOCAL_BUFFERS: RefCell<Vec<(u64, Arc<ThreadBuffer>)>> = const { RefCell::new(Vec::new()) };
}

fn next_tracer_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Tracer {
    /// Creates a tracer whose per-thread buffers keep at most `capacity`
    /// events each.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                id: next_tracer_id(),
                epoch: Instant::now(),
                capacity: capacity.max(1),
                next_thread: AtomicU64::new(0),
                buffers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Monotonic microseconds since this tracer was created.
    pub fn now_micros(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    fn local_buffer(&self) -> Arc<ThreadBuffer> {
        LOCAL_BUFFERS.with(|local| {
            let mut local = local.borrow_mut();
            if let Some((_, buffer)) = local.iter().find(|(id, _)| *id == self.inner.id) {
                return Arc::clone(buffer);
            }
            let buffer = Arc::new(ThreadBuffer {
                thread: self.inner.next_thread.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring {
                    events: VecDeque::with_capacity(self.inner.capacity),
                    dropped: 0,
                }),
            });
            self.inner
                .buffers
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&buffer));
            local.push((self.inner.id, Arc::clone(&buffer)));
            buffer
        })
    }

    fn push(&self, name: &str, detail: &str, duration_us: Option<u64>) {
        let buffer = self.local_buffer();
        let event = TraceEvent {
            micros: self.now_micros(),
            thread: buffer.thread,
            name: name.to_string(),
            detail: detail.to_string(),
            duration_us,
        };
        let mut ring = buffer.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.events.len() >= self.inner.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Records an instantaneous event.
    pub fn emit(&self, name: &str, detail: &str) {
        self.push(name, detail, None);
    }

    /// Opens a span: the returned guard records a single span-end event
    /// (with its duration) when dropped.
    pub fn span(&self, name: &str, detail: &str) -> Span {
        Span {
            tracer: self.clone(),
            name: name.to_string(),
            detail: detail.to_string(),
            started: Instant::now(),
        }
    }

    /// Drains every thread's buffer: returns all buffered events in
    /// timestamp order plus the total number of events dropped to bound
    /// memory.  Draining resets the buffers (events are reported once).
    pub fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let buffers = self
            .inner
            .buffers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut events = Vec::new();
        let mut dropped = 0;
        for buffer in buffers.iter() {
            let mut ring = buffer.ring.lock().unwrap_or_else(PoisonError::into_inner);
            events.extend(ring.events.drain(..));
            dropped += ring.dropped;
            ring.dropped = 0;
        }
        events.sort_by_key(|event| (event.micros, event.thread));
        (events, dropped)
    }
}

/// RAII span guard from [`Tracer::span`]; see there.
pub struct Span {
    tracer: Tracer,
    name: String,
    detail: String,
    started: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration = self.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.tracer.push(&self.name, &self.detail, Some(duration));
    }
}

/// The process-wide tracer used by library-level instrumentation.
/// Bounded at 4096 events per thread.
pub fn global_tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::with_capacity(4096))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_in_timestamp_order_once() {
        let tracer = Tracer::with_capacity(16);
        tracer.emit("a", "first");
        tracer.emit("b", "second");
        {
            let _span = tracer.span("work", "cell");
        }
        let (events, dropped) = tracer.drain();
        assert_eq!(dropped, 0);
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "work"]
        );
        assert!(events.windows(2).all(|w| w[0].micros <= w[1].micros));
        assert!(events[2].duration_us.is_some());
        // A second drain is empty: events are reported once.
        assert!(tracer.drain().0.is_empty());
    }

    #[test]
    fn full_buffer_drops_oldest_and_counts() {
        let tracer = Tracer::with_capacity(4);
        for i in 0..10 {
            tracer.emit("tick", &i.to_string());
        }
        let (events, dropped) = tracer.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        // The survivors are the most recent events.
        assert_eq!(
            events.iter().map(|e| e.detail.as_str()).collect::<Vec<_>>(),
            vec!["6", "7", "8", "9"]
        );
    }

    #[test]
    fn threads_get_their_own_buffers() {
        let tracer = Tracer::with_capacity(8);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for _ in 0..8 {
                        tracer.emit("t", "");
                    }
                });
            }
        });
        let (events, dropped) = tracer.drain();
        // Each thread kept its own full buffer: nothing was dropped by
        // cross-thread contention for a shared ring.
        assert_eq!(events.len(), 24);
        assert_eq!(dropped, 0);
        let threads: std::collections::BTreeSet<u64> = events.iter().map(|e| e.thread).collect();
        assert_eq!(threads.len(), 3);
    }
}
