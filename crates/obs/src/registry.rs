//! The metrics registry and its typed instruments.
//!
//! A [`MetricsRegistry`] maps metric names (plus optional label sets) to
//! shared instrument cells.  Callers resolve a handle **once** — at
//! construction or first use — and then record through it; recording is a
//! single `Relaxed` atomic operation on the pre-resolved cell, with no
//! string hashing or map lookup per event.  A registry built with
//! [`MetricsRegistry::noop`] hands out disarmed handles whose record
//! methods are a branch on an immediate `bool` and nothing else, so the
//! cost of *not* observing is measurable (and benched) too.
//!
//! Registration is idempotent: asking for the same `(name, labels)` pair
//! again returns a handle on the same cell, so independent subsystems can
//! share an instrument without coordinating.  Asking for an existing name
//! with a *different* instrument kind is a programming error and panics —
//! silently splitting a metric across kinds would corrupt the exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use lad_common::stats::Histogram;

/// One `(key, value)` metric label.  Labels are sorted by key inside the
/// registry, so registration order does not matter.
pub type Label = (String, String);

/// A point-in-time snapshot of one instrument, used by the exposition
/// layer.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric name (e.g. `lad_serve_frames_total`).
    pub name: String,
    /// Help text registered with the instrument.
    pub help: String,
    /// Label set, sorted by key (empty for unlabelled instruments).
    pub labels: Vec<Label>,
    /// The instrument's value at snapshot time.
    pub value: SampleValue,
}

/// The value half of a [`MetricSample`].
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Monotonic counter reading.
    Counter(u64),
    /// Gauge reading (may be negative).
    Gauge(i64),
    /// Full histogram contents — exact, not pre-bucketed quantiles.
    Histogram(Histogram),
}

/// A monotonically increasing counter handle.
///
/// Cloning is cheap and clones share the same cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    armed: bool,
}

impl Counter {
    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.armed {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current reading.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways (queue depth, worker
/// occupancy, a mode flag).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    armed: bool,
}

impl Gauge {
    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: i64) {
        if self.armed {
            self.cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.armed {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current reading.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// The shared storage of a [`LatencyHistogram`]: a dense array of atomic
/// buckets for values below [`Histogram::DENSE_LIMIT`] (one atomic add per
/// sample — the common case for the microsecond-scale latencies recorded
/// here), and a mutex-guarded sparse map for the rare large values.
/// The split mirrors [`lad_common::stats::Histogram`], which snapshots
/// re-materialize for exact percentile queries.
#[derive(Debug)]
struct HistogramCell {
    dense: Vec<AtomicU64>,
    sparse: Mutex<BTreeMap<u64, u64>>,
}

impl HistogramCell {
    fn new() -> Self {
        let mut dense = Vec::with_capacity(Histogram::DENSE_LIMIT as usize);
        dense.resize_with(Histogram::DENSE_LIMIT as usize, AtomicU64::default);
        HistogramCell {
            dense,
            sparse: Mutex::new(BTreeMap::new()),
        }
    }

    fn record(&self, value: u64) {
        if let Some(bucket) = self.dense.get(value as usize) {
            bucket.fetch_add(1, Ordering::Relaxed);
        } else {
            *self
                .sparse
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(value)
                .or_insert(0) += 1;
        }
    }

    fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        for (value, bucket) in self.dense.iter().enumerate() {
            out.record_weighted(value as u64, bucket.load(Ordering::Relaxed));
        }
        for (&value, &count) in self
            .sparse
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            out.record_weighted(value, count);
        }
        out
    }
}

/// An exact latency histogram handle.  Samples are recorded in integer
/// units chosen by the caller (the workspace convention is microseconds,
/// suffix `_us`); snapshots export the full distribution so percentiles
/// are computed over every recorded sample, not interpolated buckets.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    cell: Arc<HistogramCell>,
    armed: bool,
}

impl LatencyHistogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if self.armed {
            self.cell.record(value);
        }
    }

    /// Records a [`std::time::Duration`] in whole microseconds.
    #[inline]
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        if self.armed {
            self.cell
                .record(elapsed.as_micros().min(u64::MAX as u128) as u64);
        }
    }

    /// Materializes the current contents as an exact
    /// [`lad_common::stats::Histogram`].
    pub fn snapshot(&self) -> Histogram {
        self.cell.snapshot()
    }
}

#[derive(Debug)]
enum InstrumentCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCell>),
}

impl InstrumentCell {
    fn kind(&self) -> &'static str {
        match self {
            InstrumentCell::Counter(_) => "counter",
            InstrumentCell::Gauge(_) => "gauge",
            InstrumentCell::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Instrument {
    help: String,
    cell: InstrumentCell,
}

/// Registry key: metric name plus its sorted label set.
type InstrumentKey = (String, Vec<Label>);

/// A process- or component-scoped collection of named instruments.
///
/// The registry is cheap to clone (clones share the instrument table) and
/// safe to use from any number of threads.  See the module docs for the
/// armed/no-op split and the idempotent-registration contract.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

#[derive(Debug)]
struct RegistryInner {
    armed: bool,
    instruments: Mutex<BTreeMap<InstrumentKey, Instrument>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an armed registry: handles record for real.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                armed: true,
                instruments: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Creates a disarmed registry: every handle it hands out is a no-op
    /// whose record methods test one `bool` and return.  Used to measure
    /// the cost of instrumentation itself (see the `metrics_overhead`
    /// bench).
    pub fn noop() -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                armed: false,
                instruments: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Whether handles from this registry record anything.
    pub fn is_armed(&self) -> bool {
        self.inner.armed
    }

    fn resolve<F, M, T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: F,
        open: M,
    ) -> T
    where
        F: FnOnce() -> InstrumentCell,
        M: FnOnce(&InstrumentCell) -> Option<T>,
    {
        let mut sorted: Vec<Label> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let key = (name.to_string(), sorted);
        let mut table = self
            .inner
            .instruments
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let entry = table.entry(key).or_insert_with(|| Instrument {
            help: help.to_string(),
            cell: make(),
        });
        match open(&entry.cell) {
            Some(handle) => handle,
            // lad-lint: allow(panic) — a name registered under two
            // instrument kinds is a bug in the instrumenting code, never
            // remote input; failing loudly beats corrupting the exposition.
            None => panic!(
                "metric {name:?} already registered as a {}",
                entry.cell.kind()
            ),
        }
    }

    /// Resolves (registering on first use) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Resolves (registering on first use) a counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        let armed = self.inner.armed;
        self.resolve(
            name,
            labels,
            help,
            || InstrumentCell::Counter(Arc::new(AtomicU64::new(0))),
            |cell| match cell {
                InstrumentCell::Counter(c) => Some(Counter {
                    cell: Arc::clone(c),
                    armed,
                }),
                _ => None,
            },
        )
    }

    /// Resolves (registering on first use) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Resolves (registering on first use) a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let armed = self.inner.armed;
        self.resolve(
            name,
            labels,
            help,
            || InstrumentCell::Gauge(Arc::new(AtomicI64::new(0))),
            |cell| match cell {
                InstrumentCell::Gauge(c) => Some(Gauge {
                    cell: Arc::clone(c),
                    armed,
                }),
                _ => None,
            },
        )
    }

    /// Resolves (registering on first use) an unlabelled latency histogram.
    pub fn histogram(&self, name: &str, help: &str) -> LatencyHistogram {
        self.histogram_with(name, &[], help)
    }

    /// Resolves (registering on first use) a latency histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> LatencyHistogram {
        let armed = self.inner.armed;
        self.resolve(
            name,
            labels,
            help,
            || InstrumentCell::Histogram(Arc::new(HistogramCell::new())),
            |cell| match cell {
                InstrumentCell::Histogram(c) => Some(LatencyHistogram {
                    cell: Arc::clone(c),
                    armed,
                }),
                _ => None,
            },
        )
    }

    /// Snapshots every registered instrument, in `(name, labels)` order.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let table = self
            .inner
            .instruments
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        table
            .iter()
            .map(|((name, labels), instrument)| MetricSample {
                name: name.clone(),
                help: instrument.help.clone(),
                labels: labels.clone(),
                value: match &instrument.cell {
                    InstrumentCell::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    InstrumentCell::Gauge(c) => SampleValue::Gauge(c.load(Ordering::Relaxed)),
                    InstrumentCell::Histogram(c) => SampleValue::Histogram(c.snapshot()),
                },
            })
            .collect()
    }
}

/// The process-wide registry used by library-level instrumentation (the
/// simulation engine, the experiment runner's worker pools).  Armed; code
/// that wants a disarmed variant threads its own
/// [`MetricsRegistry::noop`] instead.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("events_total", "events");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        // Re-resolving yields the same cell.
        assert_eq!(registry.counter("events_total", "events").value(), 5);

        let g = registry.gauge("depth", "queue depth");
        g.set(7);
        g.add(-3);
        g.inc();
        g.dec();
        assert_eq!(g.value(), 4);
    }

    #[test]
    fn labelled_instruments_are_distinct_and_order_insensitive() {
        let registry = MetricsRegistry::new();
        let a = registry.counter_with("req", &[("verb", "stats"), ("code", "200")], "x");
        let b = registry.counter_with("req", &[("code", "200"), ("verb", "stats")], "x");
        let other = registry.counter_with("req", &[("verb", "submit"), ("code", "200")], "x");
        a.inc();
        b.inc();
        other.add(10);
        assert_eq!(a.value(), 2);
        assert_eq!(other.value(), 10);
        assert_eq!(registry.snapshot().len(), 2);
    }

    #[test]
    fn histogram_records_dense_and_sparse_exactly() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("latency_us", "latency");
        for v in [0, 1, 1, 500, 1023, 1024, 90_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 7);
        assert_eq!(snap.max(), 90_000);
        assert_eq!(snap.count_in(1, 1), 2);
        assert_eq!(snap.percentile(100.0), Some(90_000));
        h.record_duration(std::time::Duration::from_micros(250));
        assert_eq!(h.snapshot().count_in(250, 250), 1);
    }

    #[test]
    fn noop_registry_hands_out_dead_handles() {
        let registry = MetricsRegistry::noop();
        assert!(!registry.is_armed());
        let c = registry.counter("x", "x");
        let g = registry.gauge("y", "y");
        let h = registry.histogram("z", "z");
        c.add(100);
        g.set(9);
        h.record(5);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.snapshot().count(), 0);
        // The instruments still exist for exposition (reporting zeros),
        // so a scrape of a disarmed component has a stable shape.
        assert_eq!(registry.snapshot().len(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("dual", "x");
        registry.gauge("dual", "x");
    }

    #[test]
    fn concurrent_counts_are_exact_under_contention() {
        // Satellite requirement: 8 threads hammering one handle must sum
        // exactly — `Relaxed` ordering never drops increments.
        let registry = MetricsRegistry::new();
        let counter = registry.counter("contended_total", "x");
        let histogram = registry.histogram("contended_us", "x");
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let counter = counter.clone();
                let histogram = histogram.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        counter.inc();
                        // Mix dense and (rare) sparse values.
                        histogram.record(if i % 1000 == 0 { 5000 } else { i % 64 });
                    }
                });
            }
        });
        assert_eq!(counter.value(), THREADS as u64 * PER_THREAD);
        let snap = histogram.snapshot();
        assert_eq!(snap.count(), THREADS as u64 * PER_THREAD);
        assert_eq!(
            snap.count_in(5000, 5000),
            THREADS as u64 * (PER_THREAD / 1000)
        );
    }

    #[test]
    fn global_registry_is_one_instance() {
        let a = global().counter("obs_selftest_total", "x");
        a.inc();
        assert!(global().counter("obs_selftest_total", "x").value() >= 1);
        assert!(global().is_armed());
    }
}
