//! Exposition: rendering registry snapshots as Prometheus text and as the
//! workspace's native JSON.
//!
//! Counters and gauges render as their Prometheus types; latency
//! histograms render as Prometheus *summaries* with exact
//! `quantile="0.5" / 0.9 / 0.99 / 1"` series (computed over every
//! recorded sample by [`lad_common::stats::Histogram::percentile`], not
//! interpolated from buckets) plus the conventional `_sum` and `_count`
//! series.  The JSON form carries the same data as one document for
//! clients that already speak `lad_common::json` (the `lad-client watch`
//! screen).

use std::fmt::Write as _;

use lad_common::json::JsonValue;
use lad_common::stats::Histogram;

use crate::registry::{Label, MetricSample, SampleValue};

/// The exact quantiles exported for every latency histogram.
pub const EXPORT_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 1.0];

fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a label set (plus an optional extra label, used for
/// `quantile`) as `{k="v",...}`, or the empty string when there are no
/// labels at all.
fn render_labels(labels: &[Label], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn histogram_sum(histogram: &Histogram) -> u128 {
    histogram
        .iter()
        .map(|(value, count)| value as u128 * count as u128)
        .sum()
}

/// Renders snapshot samples in the Prometheus text exposition format.
///
/// `# HELP` / `# TYPE` headers are emitted once per metric name (samples
/// arrive sorted by name, so label variants of one metric are
/// consecutive); every value line is `name[{labels}] value`.
pub fn prometheus_text(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for sample in samples {
        if last_name != Some(sample.name.as_str()) {
            let kind = match &sample.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "summary",
            };
            let _ = writeln!(out, "# HELP {} {}", sample.name, escape_help(&sample.help));
            let _ = writeln!(out, "# TYPE {} {kind}", sample.name);
            last_name = Some(sample.name.as_str());
        }
        match &sample.value {
            SampleValue::Counter(value) => {
                let _ = writeln!(
                    out,
                    "{}{} {value}",
                    sample.name,
                    render_labels(&sample.labels, None)
                );
            }
            SampleValue::Gauge(value) => {
                let _ = writeln!(
                    out,
                    "{}{} {value}",
                    sample.name,
                    render_labels(&sample.labels, None)
                );
            }
            SampleValue::Histogram(histogram) => {
                for quantile in EXPORT_QUANTILES {
                    let value = histogram.percentile(quantile * 100.0).unwrap_or(0);
                    let rendered = format!("{quantile}");
                    let _ = writeln!(
                        out,
                        "{}{} {value}",
                        sample.name,
                        render_labels(&sample.labels, Some(("quantile", &rendered)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    sample.name,
                    render_labels(&sample.labels, None),
                    histogram_sum(histogram)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    sample.name,
                    render_labels(&sample.labels, None),
                    histogram.count()
                );
            }
        }
    }
    out
}

/// Renders snapshot samples as one JSON document:
/// `{"metrics": [{"name", "type", "help", "labels", ...value fields}]}`.
///
/// Counter/gauge entries carry `"value"`; histogram entries carry
/// `"count"`, `"sum"`, `"mean"`, `"max"` and `"p50"`/`"p90"`/`"p99"`.
pub fn metrics_json(samples: &[MetricSample]) -> JsonValue {
    let entries: Vec<JsonValue> = samples
        .iter()
        .map(|sample| {
            let labels = JsonValue::object(
                sample
                    .labels
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str()))),
            );
            let mut fields: Vec<(String, JsonValue)> = vec![
                ("name".into(), JsonValue::from(sample.name.as_str())),
                ("help".into(), JsonValue::from(sample.help.as_str())),
                ("labels".into(), labels),
            ];
            match &sample.value {
                SampleValue::Counter(value) => {
                    fields.push(("type".into(), JsonValue::from("counter")));
                    fields.push(("value".into(), JsonValue::from(*value)));
                }
                SampleValue::Gauge(value) => {
                    fields.push(("type".into(), JsonValue::from("gauge")));
                    fields.push(("value".into(), JsonValue::from(*value as f64)));
                }
                SampleValue::Histogram(histogram) => {
                    fields.push(("type".into(), JsonValue::from("histogram")));
                    fields.push(("count".into(), JsonValue::from(histogram.count())));
                    fields.push((
                        "sum".into(),
                        JsonValue::from(histogram_sum(histogram) as f64),
                    ));
                    fields.push((
                        "mean".into(),
                        JsonValue::from(histogram.mean().unwrap_or(0.0)),
                    ));
                    fields.push(("max".into(), JsonValue::from(histogram.max())));
                    for (key, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
                        fields.push((
                            key.into(),
                            JsonValue::from(histogram.percentile(p).unwrap_or(0)),
                        ));
                    }
                }
            }
            JsonValue::object(fields)
        })
        .collect();
    JsonValue::object([("metrics", JsonValue::Array(entries))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry
            .counter("lad_test_events_total", "total events observed")
            .add(42);
        registry
            .counter_with(
                "lad_test_requests_total",
                &[("verb", "stats")],
                "requests by verb",
            )
            .add(7);
        registry
            .counter_with(
                "lad_test_requests_total",
                &[("verb", "submit")],
                "requests by verb",
            )
            .add(3);
        registry.gauge("lad_test_depth", "queue depth").set(-2);
        let h = registry.histogram("lad_test_latency_us", "request latency");
        for v in [1, 2, 2, 3, 5000] {
            h.record(v);
        }
        registry
    }

    /// Line-by-line grammar check of the text exposition: every line is a
    /// comment (`# HELP`/`# TYPE`) or a `name[{k="v",...}] value` sample
    /// whose name was declared by a preceding TYPE line.
    #[test]
    fn prometheus_text_parses_line_by_line() {
        let text = prometheus_text(&sample_registry().snapshot());
        let mut typed: Vec<(String, String)> = Vec::new();
        let mut samples = 0;
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines in the exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                assert!(
                    rest.split_once(' ').is_some(),
                    "HELP needs name + text: {line}"
                );
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE needs name + kind");
                assert!(
                    ["counter", "gauge", "summary"].contains(&kind),
                    "unknown type {kind:?}"
                );
                typed.push((name.to_string(), kind.to_string()));
                continue;
            }
            // Sample line: name[{labels}] value
            let (series, value) = line.rsplit_once(' ').expect("sample needs a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value {value:?}");
            let name = match series.split_once('{') {
                Some((name, labels)) => {
                    assert!(labels.ends_with('}'), "unterminated labels: {line}");
                    let body = &labels[..labels.len() - 1];
                    for pair in body.split(',') {
                        let (k, v) = pair.split_once('=').expect("label needs k=v");
                        assert!(!k.is_empty());
                        assert!(
                            v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                            "label value must be quoted: {pair}"
                        );
                    }
                    name
                }
                None => series,
            };
            let base = name
                .strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"))
                .filter(|base| typed.iter().any(|(n, k)| n == *base && k == "summary"))
                .unwrap_or(name);
            assert!(
                typed.iter().any(|(n, _)| n == base),
                "sample {name:?} has no TYPE declaration"
            );
            samples += 1;
        }
        // 1 counter + 2 labelled counters + 1 gauge + (4 quantiles + sum +
        // count) for the histogram.
        assert_eq!(samples, 10);
        // Exact quantiles from exact data: p50 of [1,2,2,3,5000] is 2.
        assert!(text.contains("lad_test_latency_us{quantile=\"0.5\"} 2"));
        assert!(text.contains("lad_test_latency_us{quantile=\"1\"} 5000"));
        assert!(text.contains("lad_test_latency_us_sum 5008"));
        assert!(text.contains("lad_test_latency_us_count 5"));
        assert!(text.contains("lad_test_requests_total{verb=\"stats\"} 7"));
        assert!(text.contains("lad_test_depth -2"));
    }

    #[test]
    fn prometheus_text_escapes_label_values_and_help() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with(
                "esc_total",
                &[("path", "a\"b\\c\nd")],
                "help with\nnewline and \\ slash",
            )
            .inc();
        let text = prometheus_text(&registry.snapshot());
        assert!(text.contains("# HELP esc_total help with\\nnewline and \\\\ slash"));
        assert!(text.contains("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
        assert_eq!(text.lines().count(), 3);
    }

    /// The JSON form round-trips through the workspace's strict parser and
    /// reports the same readings.
    #[test]
    fn metrics_json_roundtrips_through_strict_parser() {
        let document = metrics_json(&sample_registry().snapshot());
        let reparsed = JsonValue::parse(&document.to_string()).expect("exposition must parse");
        assert_eq!(reparsed, document);
        let metrics = reparsed
            .get("metrics")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(metrics.len(), 5);
        let by_name = |name: &str| {
            metrics
                .iter()
                .find(|m| m.get("name").and_then(JsonValue::as_str) == Some(name))
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        let events = by_name("lad_test_events_total");
        assert_eq!(
            events.get("type").and_then(JsonValue::as_str),
            Some("counter")
        );
        assert_eq!(events.get("value").and_then(JsonValue::as_u64), Some(42));
        let latency = by_name("lad_test_latency_us");
        assert_eq!(latency.get("count").and_then(JsonValue::as_u64), Some(5));
        assert_eq!(latency.get("p50").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(latency.get("p99").and_then(JsonValue::as_u64), Some(5000));
        assert_eq!(latency.get("max").and_then(JsonValue::as_u64), Some(5000));
        let labelled = metrics
            .iter()
            .filter(|m| {
                m.get("name").and_then(JsonValue::as_str) == Some("lad_test_requests_total")
            })
            .count();
        assert_eq!(labelled, 2);
    }
}
