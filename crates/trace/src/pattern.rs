//! Address-space layout and access-pattern primitives used by the trace
//! generators.

use lad_common::types::{Address, CoreId, DataClass};

use crate::error::ProfileError;

/// Byte granularity of one cache line in the generated address space.
pub const LINE_BYTES: u64 = 64;

/// Byte granularity of one page (R-NUCA classifies at this granularity).
pub const PAGE_BYTES: u64 = 4096;

/// Lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// Layout of the synthetic address space for one benchmark.
///
/// Regions are disjoint and page-aligned:
///
/// * instructions — shared by every core;
/// * shared read-only data — shared by every core;
/// * shared read-write data — shared by groups of `sharing_degree` cores;
/// * private data — per core; with `false_sharing` the private lines of
///   different cores are interleaved within pages (so R-NUCA's page-grain
///   classifier sees them as shared), otherwise each core's private lines
///   occupy their own pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressSpace {
    num_cores: usize,
    instruction_lines: u64,
    shared_ro_lines: u64,
    shared_rw_lines: u64,
    private_lines_per_core: u64,
    false_sharing: bool,
    /// Base line index of each region.
    instruction_base: u64,
    shared_ro_base: u64,
    shared_rw_base: u64,
    private_base: u64,
}

impl AddressSpace {
    /// Lays out the regions for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(
        num_cores: usize,
        instruction_lines: u64,
        shared_ro_lines: u64,
        shared_rw_lines: u64,
        private_lines_per_core: u64,
        false_sharing: bool,
    ) -> Self {
        assert!(num_cores > 0, "need at least one core");
        let align = |lines: u64| lines.div_ceil(LINES_PER_PAGE) * LINES_PER_PAGE;
        let instruction_base = 0;
        let shared_ro_base = instruction_base + align(instruction_lines.max(1));
        let shared_rw_base = shared_ro_base + align(shared_ro_lines.max(1));
        let private_base = shared_rw_base + align(shared_rw_lines.max(1));
        AddressSpace {
            num_cores,
            instruction_lines: instruction_lines.max(1),
            shared_ro_lines: shared_ro_lines.max(1),
            shared_rw_lines: shared_rw_lines.max(1),
            private_lines_per_core: private_lines_per_core.max(1),
            false_sharing,
            instruction_base,
            shared_ro_base,
            shared_rw_base,
            private_base,
        }
    }

    /// Number of cores the layout was built for.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Number of instruction lines.
    pub fn instruction_lines(&self) -> u64 {
        self.instruction_lines
    }

    /// Number of shared read-only lines.
    pub fn shared_ro_lines(&self) -> u64 {
        self.shared_ro_lines
    }

    /// Number of shared read-write lines.
    pub fn shared_rw_lines(&self) -> u64 {
        self.shared_rw_lines
    }

    /// Number of private lines per core.
    pub fn private_lines_per_core(&self) -> u64 {
        self.private_lines_per_core
    }

    /// Total distinct lines in the layout.
    pub fn total_lines(&self) -> u64 {
        self.private_base + self.private_footprint_lines()
    }

    fn private_footprint_lines(&self) -> u64 {
        let per_core_aligned =
            self.private_lines_per_core.div_ceil(LINES_PER_PAGE) * LINES_PER_PAGE;
        per_core_aligned * self.num_cores as u64
    }

    /// The byte address of instruction line `index`.
    pub fn instruction_address(&self, index: u64) -> Address {
        Address::new((self.instruction_base + index % self.instruction_lines) * LINE_BYTES)
    }

    /// The byte address of shared read-only line `index`.
    pub fn shared_ro_address(&self, index: u64) -> Address {
        Address::new((self.shared_ro_base + index % self.shared_ro_lines) * LINE_BYTES)
    }

    /// The byte address of shared read-write line `index`.
    pub fn shared_rw_address(&self, index: u64) -> Address {
        Address::new((self.shared_rw_base + index % self.shared_rw_lines) * LINE_BYTES)
    }

    /// The byte address of private line `index` of `core`.
    ///
    /// Without false sharing each core's private lines live in their own
    /// pages; with false sharing consecutive cores' lines are interleaved
    /// within the same pages.
    pub fn private_address(&self, core: CoreId, index: u64) -> Address {
        let index = index % self.private_lines_per_core;
        let line = if self.false_sharing {
            // Interleave: line i of core c sits at slot (i * num_cores + c).
            self.private_base + index * self.num_cores as u64 + core.index() as u64
        } else {
            let per_core_aligned =
                self.private_lines_per_core.div_ceil(LINES_PER_PAGE) * LINES_PER_PAGE;
            self.private_base + core.index() as u64 * per_core_aligned + index
        };
        Address::new(line * LINE_BYTES)
    }

    /// The address of line `index` within the region of `class` for `core`.
    pub fn address_for(&self, class: DataClass, core: CoreId, index: u64) -> Address {
        match class {
            DataClass::Instruction => self.instruction_address(index),
            DataClass::SharedReadOnly => self.shared_ro_address(index),
            DataClass::SharedReadWrite => self.shared_rw_address(index),
            DataClass::Private => self.private_address(core, index),
        }
    }

    /// Number of distinct lines in the region of `class` (per core for
    /// private data).
    pub fn region_lines(&self, class: DataClass) -> u64 {
        match class {
            DataClass::Instruction => self.instruction_lines,
            DataClass::SharedReadOnly => self.shared_ro_lines,
            DataClass::SharedReadWrite => self.shared_rw_lines,
            DataClass::Private => self.private_lines_per_core,
        }
    }
}

/// Relative frequency of LLC-visible accesses per data class
/// (the horizontal composition of one bar of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMix {
    /// Weight of instruction fetches.
    pub instruction: f64,
    /// Weight of private data accesses.
    pub private: f64,
    /// Weight of shared read-only data accesses.
    pub shared_read_only: f64,
    /// Weight of shared read-write data accesses.
    pub shared_read_write: f64,
}

impl ClassMix {
    /// The weights as an array ordered like [`ClassMix::classes`].
    pub fn weights(&self) -> [f64; 4] {
        [
            self.instruction,
            self.private,
            self.shared_read_only,
            self.shared_read_write,
        ]
    }

    /// The classes in the same order as [`ClassMix::weights`].
    pub fn classes() -> [DataClass; 4] {
        [
            DataClass::Instruction,
            DataClass::Private,
            DataClass::SharedReadOnly,
            DataClass::SharedReadWrite,
        ]
    }

    /// Validates that the mix is usable (non-negative, not all zero).
    ///
    /// # Errors
    ///
    /// Returns the violation as a typed [`ProfileError`].
    pub fn validate(&self) -> Result<(), ProfileError> {
        let weights = self.weights();
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ProfileError::NonFiniteClassWeight);
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err(ProfileError::NoPositiveClassWeight);
        }
        Ok(())
    }
}

/// Per-class reuse behaviour: the probability that a core touches the same
/// line again before moving on, and the cap on the burst length.
///
/// A `continue_probability` near 1 produces the long run-lengths (≥ 10) of
/// benchmarks like BARNES; near 0 produces the 1–2 access run-lengths of
/// FLUIDANIMATE or OCEAN-C.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseModel {
    /// Probability of extending the current run by one more access.
    pub continue_probability: f64,
    /// Upper bound on a single run.
    pub max_run: u64,
}

impl ReuseModel {
    /// A reuse model with the given continue probability and a cap of 32.
    pub fn with_probability(continue_probability: f64) -> Self {
        ReuseModel {
            continue_probability: continue_probability.clamp(0.0, 1.0),
            max_run: 32,
        }
    }

    /// Expected run length of the geometric model (ignoring the cap).
    pub fn expected_run_length(&self) -> f64 {
        1.0 / (1.0 - self.continue_probability.min(0.999_999))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(4, 64, 128, 256, 100, false)
    }

    #[test]
    fn regions_are_disjoint() {
        let s = space();
        let mut seen = std::collections::HashSet::new();
        for i in 0..s.instruction_lines() {
            assert!(seen.insert(s.instruction_address(i)));
        }
        for i in 0..s.shared_ro_lines() {
            assert!(seen.insert(s.shared_ro_address(i)));
        }
        for i in 0..s.shared_rw_lines() {
            assert!(seen.insert(s.shared_rw_address(i)));
        }
        for c in 0..4 {
            for i in 0..s.private_lines_per_core() {
                assert!(seen.insert(s.private_address(CoreId::new(c), i)));
            }
        }
    }

    #[test]
    fn regions_are_page_aligned() {
        let s = space();
        assert_eq!(s.instruction_address(0).value() % PAGE_BYTES, 0);
        assert_eq!(s.shared_ro_address(0).value() % PAGE_BYTES, 0);
        assert_eq!(s.shared_rw_address(0).value() % PAGE_BYTES, 0);
        assert_eq!(s.private_address(CoreId::new(0), 0).value() % PAGE_BYTES, 0);
    }

    #[test]
    fn indices_wrap_around_region_sizes() {
        let s = space();
        assert_eq!(s.instruction_address(0), s.instruction_address(64));
        assert_eq!(s.shared_ro_address(1), s.shared_ro_address(129));
        assert_eq!(
            s.private_address(CoreId::new(1), 0),
            s.private_address(CoreId::new(1), 100)
        );
    }

    #[test]
    fn private_pages_are_disjoint_without_false_sharing() {
        let s = space();
        let pages_core0: std::collections::HashSet<u64> = (0..100)
            .map(|i| s.private_address(CoreId::new(0), i).value() / PAGE_BYTES)
            .collect();
        let pages_core1: std::collections::HashSet<u64> = (0..100)
            .map(|i| s.private_address(CoreId::new(1), i).value() / PAGE_BYTES)
            .collect();
        assert!(pages_core0.is_disjoint(&pages_core1));
    }

    #[test]
    fn false_sharing_interleaves_private_lines_within_pages() {
        let s = AddressSpace::new(4, 64, 128, 256, 100, true);
        let page_of =
            |core: usize, i: u64| s.private_address(CoreId::new(core), i).value() / PAGE_BYTES;
        // Line 0 of all four cores lands in the same page.
        let first_pages: std::collections::HashSet<u64> = (0..4).map(|c| page_of(c, 0)).collect();
        assert_eq!(first_pages.len(), 1);
        // But the lines themselves are still distinct.
        let lines: std::collections::HashSet<u64> = (0..4)
            .map(|c| s.private_address(CoreId::new(c), 0).value() / LINE_BYTES)
            .collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn address_for_dispatches_by_class() {
        let s = space();
        assert_eq!(
            s.address_for(DataClass::Instruction, CoreId::new(0), 3),
            s.instruction_address(3)
        );
        assert_eq!(
            s.address_for(DataClass::SharedReadOnly, CoreId::new(0), 3),
            s.shared_ro_address(3)
        );
        assert_eq!(
            s.address_for(DataClass::SharedReadWrite, CoreId::new(0), 3),
            s.shared_rw_address(3)
        );
        assert_eq!(
            s.address_for(DataClass::Private, CoreId::new(2), 3),
            s.private_address(CoreId::new(2), 3)
        );
        assert_eq!(s.region_lines(DataClass::Instruction), 64);
        assert_eq!(s.region_lines(DataClass::Private), 100);
    }

    #[test]
    fn class_mix_validation() {
        let good = ClassMix {
            instruction: 0.1,
            private: 0.4,
            shared_read_only: 0.2,
            shared_read_write: 0.3,
        };
        good.validate().unwrap();
        assert_eq!(ClassMix::classes().len(), 4);
        assert_eq!(good.weights().len(), 4);

        let bad = ClassMix {
            instruction: -0.1,
            ..good
        };
        assert!(bad.validate().is_err());
        let zero = ClassMix {
            instruction: 0.0,
            private: 0.0,
            shared_read_only: 0.0,
            shared_read_write: 0.0,
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn reuse_model_expected_length() {
        let low = ReuseModel::with_probability(0.0);
        assert!((low.expected_run_length() - 1.0).abs() < 1e-9);
        let high = ReuseModel::with_probability(0.9);
        assert!((high.expected_run_length() - 10.0).abs() < 1e-9);
        let clamped = ReuseModel::with_probability(7.0);
        assert_eq!(clamped.continue_probability, 1.0);
    }

    #[test]
    fn total_lines_covers_every_region() {
        let s = space();
        assert!(s.total_lines() >= 64 + 128 + 256 + 4 * 100);
    }
}
