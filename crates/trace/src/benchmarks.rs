//! The 21 benchmarks of the paper's evaluation (Table 2), as synthetic
//! profiles.
//!
//! Each profile is qualitatively matched to the characterization the paper
//! gives in Figure 1 and Section 4.1:
//!
//! * **BARNES, WATER-NSQ** — dominated by shared read-write data with long
//!   reuse run-lengths (≥ 10); working set fits in the LLC.
//! * **LU-NC** — migratory shared data (read-modify-write bursts by one core
//!   at a time).
//! * **FACESIM, BODYTRACK, RAYTRACE** — significant instruction footprints
//!   (the only three with non-trivial L1-I miss rates) plus shared read-only
//!   or mostly-read shared data.
//! * **PATRICIA, STREAMCLUSTER, VOLREND, FERRET** — shared read-only heavy
//!   with good reuse.
//! * **BLACKSCHOLES** — private data with page-level false sharing plus some
//!   shared read-only data.
//! * **DEDUP** — almost exclusively private data without false sharing.
//! * **RADIX, FFT, LU-C, CHOLESKY, SWAPTIONS** — private-data heavy with
//!   modest reuse; R-NUCA's local placement of private data already serves
//!   them well.
//! * **OCEAN-C, OCEAN-NC, FLUIDANIMATE, CONCOMP** — reuse run-lengths of
//!   1–2 and working sets that exceed the LLC, so replication only pollutes.

use crate::generator::BenchmarkProfile;
use crate::pattern::{ClassMix, ReuseModel};

/// The benchmarks of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    Radix,
    Fft,
    LuContiguous,
    LuNonContiguous,
    Cholesky,
    Barnes,
    OceanContiguous,
    OceanNonContiguous,
    WaterNsquared,
    Raytrace,
    Volrend,
    Blackscholes,
    Swaptions,
    Fluidanimate,
    Streamcluster,
    Dedup,
    Ferret,
    Bodytrack,
    Facesim,
    Patricia,
    ConnectedComponents,
}

impl Benchmark {
    /// All 21 benchmarks in the order the paper's figures list them.
    pub const ALL: [Benchmark; 21] = [
        Benchmark::Radix,
        Benchmark::Fft,
        Benchmark::LuContiguous,
        Benchmark::LuNonContiguous,
        Benchmark::Cholesky,
        Benchmark::Barnes,
        Benchmark::OceanContiguous,
        Benchmark::OceanNonContiguous,
        Benchmark::WaterNsquared,
        Benchmark::Raytrace,
        Benchmark::Volrend,
        Benchmark::Blackscholes,
        Benchmark::Swaptions,
        Benchmark::Fluidanimate,
        Benchmark::Streamcluster,
        Benchmark::Dedup,
        Benchmark::Ferret,
        Benchmark::Bodytrack,
        Benchmark::Facesim,
        Benchmark::Patricia,
        Benchmark::ConnectedComponents,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        self.profile().name
    }

    /// The benchmark suite the application comes from.
    pub fn suite_name(self) -> &'static str {
        match self {
            Benchmark::Radix
            | Benchmark::Fft
            | Benchmark::LuContiguous
            | Benchmark::LuNonContiguous
            | Benchmark::Cholesky
            | Benchmark::Barnes
            | Benchmark::OceanContiguous
            | Benchmark::OceanNonContiguous
            | Benchmark::WaterNsquared
            | Benchmark::Raytrace
            | Benchmark::Volrend => "SPLASH-2",
            Benchmark::Blackscholes
            | Benchmark::Swaptions
            | Benchmark::Fluidanimate
            | Benchmark::Streamcluster
            | Benchmark::Dedup
            | Benchmark::Ferret
            | Benchmark::Bodytrack
            | Benchmark::Facesim => "PARSEC",
            Benchmark::Patricia => "Parallel MiBench",
            Benchmark::ConnectedComponents => "UHPC",
        }
    }

    /// The synthetic profile reproducing this benchmark's memory behaviour.
    pub fn profile(self) -> BenchmarkProfile {
        let mix = |instruction, private, shared_read_only, shared_read_write| ClassMix {
            instruction,
            private,
            shared_read_only,
            shared_read_write,
        };
        let reuse = |i: f64, p: f64, ro: f64, rw: f64| {
            [
                ReuseModel::with_probability(i),
                ReuseModel::with_probability(p),
                ReuseModel::with_probability(ro),
                ReuseModel::with_probability(rw),
            ]
        };
        match self {
            Benchmark::Radix => BenchmarkProfile {
                name: "RADIX",
                problem_size: "4M integers, radix 1024",
                class_mix: mix(0.02, 0.73, 0.05, 0.20),
                reuse: reuse(0.5, 0.30, 0.3, 0.20),
                instruction_lines: 128,
                shared_ro_lines: 1024,
                shared_rw_lines: 16_384,
                private_lines_per_core: 2048,
                rw_write_fraction: 0.4,
                private_write_fraction: 0.45,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 8,
                mean_compute_cycles: 6,
            },
            Benchmark::Fft => BenchmarkProfile {
                name: "FFT",
                problem_size: "4M complex data points",
                class_mix: mix(0.02, 0.68, 0.05, 0.25),
                reuse: reuse(0.5, 0.40, 0.3, 0.25),
                instruction_lines: 128,
                shared_ro_lines: 512,
                shared_rw_lines: 24_576,
                private_lines_per_core: 1536,
                rw_write_fraction: 0.35,
                private_write_fraction: 0.4,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 4,
                mean_compute_cycles: 8,
            },
            Benchmark::LuContiguous => BenchmarkProfile {
                name: "LU-C",
                problem_size: "1024 x 1024 matrix",
                class_mix: mix(0.02, 0.70, 0.13, 0.15),
                reuse: reuse(0.6, 0.60, 0.6, 0.4),
                instruction_lines: 128,
                shared_ro_lines: 2048,
                shared_rw_lines: 8192,
                private_lines_per_core: 1024,
                rw_write_fraction: 0.3,
                private_write_fraction: 0.35,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 8,
                mean_compute_cycles: 10,
            },
            Benchmark::LuNonContiguous => BenchmarkProfile {
                name: "LU-NC",
                problem_size: "1024 x 1024 matrix",
                class_mix: mix(0.02, 0.28, 0.05, 0.65),
                reuse: reuse(0.6, 0.55, 0.5, 0.88),
                instruction_lines: 128,
                shared_ro_lines: 512,
                shared_rw_lines: 6144,
                private_lines_per_core: 768,
                rw_write_fraction: 0.3,
                private_write_fraction: 0.3,
                migratory: true,
                private_false_sharing: false,
                sharing_degree: 8,
                mean_compute_cycles: 8,
            },
            Benchmark::Cholesky => BenchmarkProfile {
                name: "CHOLESKY",
                problem_size: "tk29.O",
                class_mix: mix(0.05, 0.50, 0.18, 0.27),
                reuse: reuse(0.6, 0.50, 0.6, 0.5),
                instruction_lines: 256,
                shared_ro_lines: 3072,
                shared_rw_lines: 8192,
                private_lines_per_core: 1024,
                rw_write_fraction: 0.25,
                private_write_fraction: 0.35,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 8,
                mean_compute_cycles: 10,
            },
            Benchmark::Barnes => BenchmarkProfile {
                name: "BARNES",
                problem_size: "64K particles",
                class_mix: mix(0.02, 0.10, 0.05, 0.83),
                reuse: reuse(0.7, 0.6, 0.7, 0.92),
                instruction_lines: 192,
                shared_ro_lines: 1024,
                shared_rw_lines: 12_288,
                private_lines_per_core: 384,
                rw_write_fraction: 0.06,
                private_write_fraction: 0.3,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 64,
                mean_compute_cycles: 8,
            },
            Benchmark::OceanContiguous => BenchmarkProfile {
                name: "OCEAN-C",
                problem_size: "2050 x 2050 ocean",
                class_mix: mix(0.02, 0.56, 0.05, 0.37),
                reuse: reuse(0.4, 0.12, 0.2, 0.10),
                instruction_lines: 128,
                shared_ro_lines: 1024,
                shared_rw_lines: 131_072,
                private_lines_per_core: 6144,
                rw_write_fraction: 0.4,
                private_write_fraction: 0.45,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 4,
                mean_compute_cycles: 5,
            },
            Benchmark::OceanNonContiguous => BenchmarkProfile {
                name: "OCEAN-NC",
                problem_size: "1026 x 1026 ocean",
                class_mix: mix(0.02, 0.48, 0.05, 0.45),
                reuse: reuse(0.4, 0.25, 0.3, 0.25),
                instruction_lines: 128,
                shared_ro_lines: 1024,
                shared_rw_lines: 65_536,
                private_lines_per_core: 3072,
                rw_write_fraction: 0.4,
                private_write_fraction: 0.4,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 4,
                mean_compute_cycles: 5,
            },
            Benchmark::WaterNsquared => BenchmarkProfile {
                name: "WATER-NSQ",
                problem_size: "512 molecules",
                class_mix: mix(0.03, 0.27, 0.10, 0.60),
                reuse: reuse(0.7, 0.6, 0.7, 0.86),
                instruction_lines: 192,
                shared_ro_lines: 1024,
                shared_rw_lines: 4096,
                private_lines_per_core: 512,
                rw_write_fraction: 0.10,
                private_write_fraction: 0.3,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 16,
                mean_compute_cycles: 12,
            },
            Benchmark::Raytrace => BenchmarkProfile {
                name: "RAYTRACE",
                problem_size: "car",
                class_mix: mix(0.25, 0.15, 0.50, 0.10),
                reuse: reuse(0.88, 0.5, 0.72, 0.4),
                instruction_lines: 3072,
                shared_ro_lines: 24_576,
                shared_rw_lines: 2048,
                private_lines_per_core: 512,
                rw_write_fraction: 0.15,
                private_write_fraction: 0.3,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 4,
                mean_compute_cycles: 10,
            },
            Benchmark::Volrend => BenchmarkProfile {
                name: "VOLREND",
                problem_size: "head",
                class_mix: mix(0.18, 0.25, 0.47, 0.10),
                reuse: reuse(0.85, 0.5, 0.80, 0.4),
                instruction_lines: 2048,
                shared_ro_lines: 16_384,
                shared_rw_lines: 2048,
                private_lines_per_core: 512,
                rw_write_fraction: 0.15,
                private_write_fraction: 0.3,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 8,
                mean_compute_cycles: 9,
            },
            Benchmark::Blackscholes => BenchmarkProfile {
                name: "BLACKSCH.",
                problem_size: "65,536 options",
                class_mix: mix(0.04, 0.62, 0.30, 0.04),
                reuse: reuse(0.7, 0.76, 0.80, 0.3),
                instruction_lines: 256,
                shared_ro_lines: 6144,
                shared_rw_lines: 1024,
                private_lines_per_core: 768,
                rw_write_fraction: 0.2,
                private_write_fraction: 0.3,
                migratory: false,
                private_false_sharing: true,
                sharing_degree: 8,
                mean_compute_cycles: 14,
            },
            Benchmark::Swaptions => BenchmarkProfile {
                name: "SWAPTIONS",
                problem_size: "64 swaptions, 20,000 sims.",
                class_mix: mix(0.05, 0.55, 0.33, 0.07),
                reuse: reuse(0.7, 0.62, 0.72, 0.4),
                instruction_lines: 384,
                shared_ro_lines: 4096,
                shared_rw_lines: 1024,
                private_lines_per_core: 640,
                rw_write_fraction: 0.2,
                private_write_fraction: 0.35,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 8,
                mean_compute_cycles: 16,
            },
            Benchmark::Fluidanimate => BenchmarkProfile {
                name: "FLUIDANIM.",
                problem_size: "5 frames, 300,000 particles",
                class_mix: mix(0.03, 0.52, 0.05, 0.40),
                reuse: reuse(0.4, 0.10, 0.2, 0.12),
                instruction_lines: 256,
                shared_ro_lines: 2048,
                shared_rw_lines: 98_304,
                private_lines_per_core: 5120,
                rw_write_fraction: 0.35,
                private_write_fraction: 0.4,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 4,
                mean_compute_cycles: 6,
            },
            Benchmark::Streamcluster => BenchmarkProfile {
                name: "STREAMCLUS.",
                problem_size: "8192 points per block, 1 block",
                class_mix: mix(0.03, 0.15, 0.72, 0.10),
                reuse: reuse(0.7, 0.5, 0.90, 0.4),
                instruction_lines: 256,
                shared_ro_lines: 16_384,
                shared_rw_lines: 2048,
                private_lines_per_core: 384,
                rw_write_fraction: 0.2,
                private_write_fraction: 0.3,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 64,
                mean_compute_cycles: 7,
            },
            Benchmark::Dedup => BenchmarkProfile {
                name: "DEDUP",
                problem_size: "31 MB data",
                class_mix: mix(0.04, 0.84, 0.08, 0.04),
                reuse: reuse(0.6, 0.55, 0.5, 0.3),
                instruction_lines: 384,
                shared_ro_lines: 2048,
                shared_rw_lines: 1024,
                private_lines_per_core: 2560,
                rw_write_fraction: 0.3,
                private_write_fraction: 0.4,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 4,
                mean_compute_cycles: 9,
            },
            Benchmark::Ferret => BenchmarkProfile {
                name: "FERRET",
                problem_size: "256 queries, 34,973 images",
                class_mix: mix(0.14, 0.30, 0.46, 0.10),
                reuse: reuse(0.8, 0.5, 0.75, 0.4),
                instruction_lines: 1536,
                shared_ro_lines: 12_288,
                shared_rw_lines: 2048,
                private_lines_per_core: 768,
                rw_write_fraction: 0.2,
                private_write_fraction: 0.35,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 16,
                mean_compute_cycles: 11,
            },
            Benchmark::Bodytrack => BenchmarkProfile {
                name: "BODYTRACK",
                problem_size: "4 frames, 4000 particles",
                class_mix: mix(0.30, 0.15, 0.38, 0.17),
                reuse: reuse(0.88, 0.5, 0.82, 0.7),
                instruction_lines: 3072,
                shared_ro_lines: 8192,
                shared_rw_lines: 3072,
                private_lines_per_core: 512,
                rw_write_fraction: 0.05,
                private_write_fraction: 0.3,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 32,
                mean_compute_cycles: 9,
            },
            Benchmark::Facesim => BenchmarkProfile {
                name: "FACESIM",
                problem_size: "1 frame, 372,126 tetrahedrons",
                class_mix: mix(0.36, 0.17, 0.12, 0.35),
                reuse: reuse(0.90, 0.5, 0.75, 0.80),
                instruction_lines: 4096,
                shared_ro_lines: 4096,
                shared_rw_lines: 8192,
                private_lines_per_core: 640,
                rw_write_fraction: 0.06,
                private_write_fraction: 0.3,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 32,
                mean_compute_cycles: 8,
            },
            Benchmark::Patricia => BenchmarkProfile {
                name: "PATRICIA",
                problem_size: "5000 IP address queries",
                class_mix: mix(0.10, 0.18, 0.62, 0.10),
                reuse: reuse(0.8, 0.5, 0.86, 0.4),
                instruction_lines: 768,
                shared_ro_lines: 12_288,
                shared_rw_lines: 1536,
                private_lines_per_core: 384,
                rw_write_fraction: 0.15,
                private_write_fraction: 0.3,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 64,
                mean_compute_cycles: 8,
            },
            Benchmark::ConnectedComponents => BenchmarkProfile {
                name: "CONCOMP",
                problem_size: "Graph with 2^18 nodes",
                class_mix: mix(0.02, 0.32, 0.06, 0.60),
                reuse: reuse(0.4, 0.2, 0.3, 0.14),
                instruction_lines: 128,
                shared_ro_lines: 4096,
                shared_rw_lines: 131_072,
                private_lines_per_core: 3072,
                rw_write_fraction: 0.35,
                private_write_fraction: 0.4,
                migratory: false,
                private_false_sharing: false,
                sharing_degree: 8,
                mean_compute_cycles: 5,
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_common::types::DataClass;

    #[test]
    fn there_are_21_benchmarks_with_unique_labels() {
        assert_eq!(Benchmark::ALL.len(), 21);
        let labels: std::collections::HashSet<_> =
            Benchmark::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 21);
    }

    #[test]
    fn every_profile_validates() {
        for b in Benchmark::ALL {
            b.profile()
                .validate()
                .unwrap_or_else(|e| panic!("{b}: {e}"));
        }
    }

    #[test]
    fn suite_names_match_table2() {
        assert_eq!(Benchmark::Barnes.suite_name(), "SPLASH-2");
        assert_eq!(Benchmark::Facesim.suite_name(), "PARSEC");
        assert_eq!(Benchmark::Patricia.suite_name(), "Parallel MiBench");
        assert_eq!(Benchmark::ConnectedComponents.suite_name(), "UHPC");
        let splash = Benchmark::ALL
            .iter()
            .filter(|b| b.suite_name() == "SPLASH-2")
            .count();
        let parsec = Benchmark::ALL
            .iter()
            .filter(|b| b.suite_name() == "PARSEC")
            .count();
        assert_eq!(splash, 11);
        assert_eq!(parsec, 8);
    }

    #[test]
    fn problem_sizes_are_recorded() {
        assert_eq!(Benchmark::Barnes.profile().problem_size, "64K particles");
        assert_eq!(
            Benchmark::Radix.profile().problem_size,
            "4M integers, radix 1024"
        );
        for b in Benchmark::ALL {
            assert!(!b.profile().problem_size.is_empty());
        }
    }

    #[test]
    fn barnes_is_dominated_by_shared_read_write_with_high_reuse() {
        let p = Benchmark::Barnes.profile();
        let w = p.class_mix.weights();
        let total: f64 = w.iter().sum();
        // Figure 1: over 80-90% of BARNES' LLC accesses are shared R/W.
        assert!(p.class_mix.shared_read_write / total > 0.8);
        // ... with run lengths of 10 or more.
        assert!(p.reuse[3].continue_probability >= 0.9);
    }

    #[test]
    fn facesim_and_bodytrack_are_instruction_heavy() {
        for b in [
            Benchmark::Facesim,
            Benchmark::Bodytrack,
            Benchmark::Raytrace,
        ] {
            let p = b.profile();
            assert!(
                p.class_mix.instruction >= 0.25,
                "{b} must have a large I-fetch share"
            );
            assert!(
                p.instruction_lines >= 3072,
                "{b} instruction footprint exceeds the L1-I"
            );
        }
        // Everyone else has a small instruction share (< 0.2), matching the
        // paper's claim that only three benchmarks have notable L1-I misses.
        for b in Benchmark::ALL {
            if ![
                Benchmark::Facesim,
                Benchmark::Bodytrack,
                Benchmark::Raytrace,
            ]
            .contains(&b)
            {
                assert!(b.profile().class_mix.instruction < 0.2, "{b}");
            }
        }
    }

    #[test]
    fn low_reuse_benchmarks_have_short_run_lengths() {
        for b in [
            Benchmark::Fluidanimate,
            Benchmark::OceanContiguous,
            Benchmark::ConnectedComponents,
        ] {
            let p = b.profile();
            // Expected run length of the dominant data classes stays below ~2.
            assert!(
                p.reuse[1].expected_run_length() < 2.0,
                "{b} private reuse too high"
            );
            assert!(
                p.reuse[3].expected_run_length() < 2.0,
                "{b} shared-RW reuse too high"
            );
        }
    }

    #[test]
    fn working_set_classification() {
        // Aggregate LLC of the 64-core target: 16 MB = 262144 lines.
        let llc_lines = 64 * 4096;
        for b in [
            Benchmark::Barnes,
            Benchmark::WaterNsquared,
            Benchmark::Streamcluster,
        ] {
            assert!(
                b.profile().footprint_lines(64) < llc_lines / 2,
                "{b} must fit comfortably in the LLC"
            );
        }
        for b in [
            Benchmark::OceanContiguous,
            Benchmark::Fluidanimate,
            Benchmark::ConnectedComponents,
        ] {
            assert!(
                b.profile().footprint_lines(64) > llc_lines,
                "{b} must exceed the LLC capacity"
            );
        }
    }

    #[test]
    fn special_patterns_are_flagged() {
        assert!(Benchmark::LuNonContiguous.profile().migratory);
        assert!(Benchmark::Blackscholes.profile().private_false_sharing);
        assert!(!Benchmark::Dedup.profile().private_false_sharing);
        assert!(Benchmark::Dedup.profile().class_mix.private > 0.8);
    }

    #[test]
    fn mostly_read_shared_data_where_the_paper_says_so() {
        // BARNES/BODYTRACK/FACESIM: accesses to shared R/W data are mostly
        // reads with only a few writes.
        for b in [Benchmark::Barnes, Benchmark::Bodytrack, Benchmark::Facesim] {
            assert!(b.profile().rw_write_fraction <= 0.1, "{b}");
        }
        assert_eq!(DataClass::ALL.len(), 4);
    }
}
