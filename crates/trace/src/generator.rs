//! Profile-driven trace generation.

use lad_common::rng::DeterministicRng;
use lad_common::types::{CoreId, DataClass, MemOp, MemoryAccess};

use crate::error::ProfileError;
use crate::pattern::{AddressSpace, ClassMix, ReuseModel};

/// Everything that characterizes one benchmark's memory behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (matches the paper's label, e.g. `"BARNES"`).
    pub name: &'static str,
    /// Problem-size description reproduced from Table 2.
    pub problem_size: &'static str,
    /// Relative frequency of each data class at the LLC.
    pub class_mix: ClassMix,
    /// Reuse run-length model per class, in the order
    /// instruction / private / shared-RO / shared-RW.
    pub reuse: [ReuseModel; 4],
    /// Instruction footprint in cache lines.
    pub instruction_lines: u64,
    /// Shared read-only footprint in cache lines.
    pub shared_ro_lines: u64,
    /// Shared read-write footprint in cache lines.
    pub shared_rw_lines: u64,
    /// Private footprint per core, in cache lines.
    pub private_lines_per_core: u64,
    /// Fraction of shared read-write accesses that are writes.
    pub rw_write_fraction: f64,
    /// Fraction of private accesses that are writes.
    pub private_write_fraction: f64,
    /// Migratory sharing: shared read-write lines are used in
    /// read-then-write bursts by one core at a time (the LU-NC pattern).
    pub migratory: bool,
    /// Page-level false sharing of private data (the BLACKSCHOLES pattern):
    /// different cores' private lines share pages.
    pub private_false_sharing: bool,
    /// Number of cores that actively share each shared read-write line
    /// (small values model low-degree sharing such as RAYTRACE).
    pub sharing_degree: usize,
    /// Mean compute cycles between consecutive memory accesses.
    pub mean_compute_cycles: u32,
}

impl BenchmarkProfile {
    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns the first invalid field as a typed [`ProfileError`].
    pub fn validate(&self) -> Result<(), ProfileError> {
        self.class_mix.validate()?;
        for (i, r) in self.reuse.iter().enumerate() {
            if !(0.0..=1.0).contains(&r.continue_probability) || r.max_run == 0 {
                return Err(ProfileError::InvalidReuseModel { index: i });
            }
        }
        for (name, f) in [
            ("rw_write_fraction", self.rw_write_fraction),
            ("private_write_fraction", self.private_write_fraction),
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(ProfileError::FractionOutOfRange { field: name });
            }
        }
        if self.sharing_degree == 0 {
            return Err(ProfileError::ZeroSharingDegree);
        }
        Ok(())
    }

    fn reuse_for(&self, class: DataClass) -> ReuseModel {
        match class {
            DataClass::Instruction => self.reuse[0],
            DataClass::Private => self.reuse[1],
            DataClass::SharedReadOnly => self.reuse[2],
            DataClass::SharedReadWrite => self.reuse[3],
        }
    }

    /// Builds the address-space layout for `num_cores` cores.
    pub fn address_space(&self, num_cores: usize) -> AddressSpace {
        AddressSpace::new(
            num_cores,
            self.instruction_lines,
            self.shared_ro_lines,
            self.shared_rw_lines,
            self.private_lines_per_core,
            self.private_false_sharing,
        )
    }

    /// Total data footprint in cache lines for `num_cores` cores (used to
    /// judge whether the working set fits in the aggregate LLC).
    pub fn footprint_lines(&self, num_cores: usize) -> u64 {
        self.instruction_lines
            + self.shared_ro_lines
            + self.shared_rw_lines
            + self.private_lines_per_core * num_cores as u64
    }
}

/// A generated multi-threaded trace: one access stream per core.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    name: String,
    per_core: Vec<Vec<MemoryAccess>>,
}

impl WorkloadTrace {
    /// Builds a trace from per-core access streams.
    pub fn new(name: impl Into<String>, per_core: Vec<Vec<MemoryAccess>>) -> Self {
        WorkloadTrace {
            name: name.into(),
            per_core,
        }
    }

    /// Benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores with a stream (some may be empty).
    pub fn num_cores(&self) -> usize {
        self.per_core.len()
    }

    /// The access stream of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_stream(&self, core: CoreId) -> &[MemoryAccess] {
        &self.per_core[core.index()]
    }

    /// Total number of accesses across all cores.
    pub fn total_accesses(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// Iterates over all accesses of all cores (core-major order).
    pub fn iter(&self) -> impl Iterator<Item = &MemoryAccess> {
        self.per_core.iter().flatten()
    }
}

/// Generates [`WorkloadTrace`]s from a [`BenchmarkProfile`].
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
}

impl TraceGenerator {
    /// Creates a generator for one profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn new(profile: BenchmarkProfile) -> Self {
        if let Err(error) = profile.validate() {
            panic!("benchmark profile must be valid: {error}");
        }
        TraceGenerator { profile }
    }

    /// The profile being generated.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Generates a trace for `num_cores` cores with roughly
    /// `accesses_per_core` accesses each, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn generate(&self, num_cores: usize, accesses_per_core: usize, seed: u64) -> WorkloadTrace {
        assert!(num_cores > 0, "need at least one core");
        let space = self.profile.address_space(num_cores);
        let root = DeterministicRng::seed_from(seed);
        let per_core: Vec<Vec<MemoryAccess>> = (0..num_cores)
            .map(|core| {
                let mut rng = root.derive(core as u64);
                self.generate_core(
                    CoreId::new(core),
                    num_cores,
                    accesses_per_core,
                    &space,
                    &mut rng,
                )
            })
            .collect();
        WorkloadTrace::new(self.profile.name, per_core)
    }

    /// Target number of lines a core keeps "live" per data class.
    ///
    /// Reuse is spread across the live set rather than issued back-to-back,
    /// so it is *not* filtered by the (much smaller) L1 cache and genuinely
    /// reaches the LLC — which is where the paper measures run-lengths
    /// (Figure 1) and where the locality classifier observes them.
    fn live_set_target(&self, class: DataClass) -> usize {
        let region = self.profile.address_space(1).region_lines(class).max(1) as usize;
        let target = match class {
            DataClass::Instruction => 320,
            _ => 640,
        };
        target.min(region)
    }

    fn generate_core(
        &self,
        core: CoreId,
        num_cores: usize,
        accesses: usize,
        space: &AddressSpace,
        rng: &mut DeterministicRng,
    ) -> Vec<MemoryAccess> {
        let profile = &self.profile;
        let weights = profile.class_mix.weights();
        let classes = ClassMix::classes();
        let mut stream = Vec::with_capacity(accesses + 16);

        // Per-class live sets: (line index, remaining accesses in this run).
        let mut live: [Vec<(u64, u64)>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];

        while stream.len() < accesses {
            let class_slot = rng.weighted_index(&weights);
            let class = classes[class_slot];
            let reuse = profile.reuse_for(class);
            let pool = &mut live[class_slot];

            // Keep the live set topped up with fresh lines and their drawn
            // run-lengths.  The live set is capped relative to the trace
            // length so that runs actually complete within the trace.
            let target = self.live_set_target(class).min((accesses / 6).max(8));
            while pool.len() < target {
                let index = self.pick_line_index(class, core, num_cores, space, rng);
                let run = rng.run_length(reuse.continue_probability, reuse.max_run);
                pool.push((index, run));
            }

            // Touch a random live line once; retire it when its run is spent.
            let slot = rng.index(pool.len());
            let (index, remaining) = pool[slot];
            let is_last = remaining <= 1;
            let op = self.pick_op(class, is_last, rng);
            let compute = self.pick_compute(rng);
            let address = space.address_for(class, core, index);
            stream.push(MemoryAccess {
                core,
                address,
                op,
                compute_cycles: compute,
                class,
            });
            if is_last {
                pool.swap_remove(slot);
            } else {
                pool[slot].1 = remaining - 1;
            }
        }
        stream
    }

    /// Picks which line of the class's region to access.
    ///
    /// Shared read-write lines are partitioned among groups of
    /// `sharing_degree` cores so that the degree of sharing (and therefore
    /// the invalidation fan-out) is controlled; all other regions are
    /// uniformly shared.
    fn pick_line_index(
        &self,
        class: DataClass,
        core: CoreId,
        num_cores: usize,
        space: &AddressSpace,
        rng: &mut DeterministicRng,
    ) -> u64 {
        let region = space.region_lines(class);
        match class {
            DataClass::SharedReadWrite => {
                let degree = self.profile.sharing_degree.clamp(1, num_cores);
                let num_groups = (num_cores / degree).max(1) as u64;
                let group = (core.index() / degree) as u64 % num_groups;
                let lines_per_group = (region / num_groups).max(1);
                let offset = rng.below(lines_per_group);
                (group * lines_per_group + offset) % region
            }
            _ => rng.below(region),
        }
    }

    fn pick_op(&self, class: DataClass, last_of_run: bool, rng: &mut DeterministicRng) -> MemOp {
        match class {
            DataClass::Instruction => MemOp::InstructionFetch,
            DataClass::SharedReadOnly => MemOp::Read,
            DataClass::Private => {
                if rng.chance(self.profile.private_write_fraction) {
                    MemOp::Write
                } else {
                    MemOp::Read
                }
            }
            DataClass::SharedReadWrite => {
                if self.profile.migratory {
                    // Migratory pattern: a read-mostly burst that ends with a
                    // write before the line moves to its next user.
                    if last_of_run {
                        MemOp::Write
                    } else {
                        MemOp::Read
                    }
                } else if rng.chance(self.profile.rw_write_fraction) {
                    MemOp::Write
                } else {
                    MemOp::Read
                }
            }
        }
    }

    fn pick_compute(&self, rng: &mut DeterministicRng) -> u32 {
        let mean = self.profile.mean_compute_cycles;
        if mean == 0 {
            0
        } else {
            // Uniform in [mean/2, 3*mean/2] keeps the mean while adding jitter.
            let low = (mean / 2).max(1) as u64;
            let high = (mean as u64 * 3) / 2;
            rng.range_inclusive(low, high.max(low)) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;

    fn profile() -> BenchmarkProfile {
        Benchmark::Barnes.profile()
    }

    #[test]
    fn generation_is_deterministic() {
        let generator = TraceGenerator::new(profile());
        let a = generator.generate(8, 100, 7);
        let b = generator.generate(8, 100, 7);
        assert_eq!(a, b);
        let c = generator.generate(8, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn per_core_streams_have_requested_length() {
        let generator = TraceGenerator::new(profile());
        let trace = generator.generate(4, 250, 1);
        assert_eq!(trace.num_cores(), 4);
        for core in 0..4 {
            let stream = trace.core_stream(CoreId::new(core));
            assert!(stream.len() >= 250);
            assert!(
                stream.len() < 250 + 64,
                "streams should not wildly overshoot"
            );
            assert!(stream.iter().all(|a| a.core.index() == core));
        }
        assert_eq!(trace.total_accesses(), trace.iter().count());
        assert_eq!(trace.name(), "BARNES");
    }

    #[test]
    fn class_mix_is_respected() {
        let generator = TraceGenerator::new(profile());
        let trace = generator.generate(8, 2000, 3);
        let total = trace.total_accesses() as f64;
        let rw = trace
            .iter()
            .filter(|a| a.class == DataClass::SharedReadWrite)
            .count() as f64;
        // BARNES is dominated by shared read-write accesses.
        assert!(rw / total > 0.6, "shared-RW fraction was {}", rw / total);
    }

    #[test]
    fn instruction_accesses_are_fetches_and_ro_lines_never_written() {
        let generator = TraceGenerator::new(Benchmark::Facesim.profile());
        let trace = generator.generate(8, 1500, 11);
        for access in trace.iter() {
            match access.class {
                DataClass::Instruction => assert_eq!(access.op, MemOp::InstructionFetch),
                DataClass::SharedReadOnly => assert_eq!(access.op, MemOp::Read),
                _ => {}
            }
        }
    }

    #[test]
    fn migratory_runs_end_with_a_write() {
        let generator = TraceGenerator::new(Benchmark::LuNonContiguous.profile());
        assert!(generator.profile().migratory);
        let trace = generator.generate(4, 800, 5);
        let has_rw_writes = trace
            .iter()
            .any(|a| a.class == DataClass::SharedReadWrite && a.op == MemOp::Write);
        assert!(has_rw_writes, "migratory benchmarks must write shared data");
    }

    #[test]
    fn sharing_degree_partitions_rw_lines() {
        // With sharing degree 2, cores 0 and 1 must never touch the shared-RW
        // lines of cores 2 and 3.
        let mut profile = Benchmark::Barnes.profile();
        profile.sharing_degree = 2;
        let generator = TraceGenerator::new(profile);
        let trace = generator.generate(4, 1500, 9);
        let lines_of = |cores: [usize; 2]| -> std::collections::HashSet<u64> {
            trace
                .iter()
                .filter(|a| {
                    a.class == DataClass::SharedReadWrite && cores.contains(&a.core.index())
                })
                .map(|a| a.address.value() / 64)
                .collect()
        };
        let group_a = lines_of([0, 1]);
        let group_b = lines_of([2, 3]);
        assert!(!group_a.is_empty() && !group_b.is_empty());
        assert!(group_a.is_disjoint(&group_b));
    }

    #[test]
    fn compute_cycles_track_profile_mean() {
        let mut profile = profile();
        profile.mean_compute_cycles = 20;
        let generator = TraceGenerator::new(profile);
        let trace = generator.generate(2, 2000, 2);
        let mean = trace.iter().map(|a| a.compute_cycles as f64).sum::<f64>()
            / trace.total_accesses() as f64;
        assert!((15.0..25.0).contains(&mean), "mean compute {mean}");
        // Zero mean yields zero compute.
        let mut profile = Benchmark::Barnes.profile();
        profile.mean_compute_cycles = 0;
        let trace = TraceGenerator::new(profile).generate(2, 100, 2);
        assert!(trace.iter().all(|a| a.compute_cycles == 0));
    }

    #[test]
    fn footprint_accounts_all_regions() {
        let p = profile();
        let footprint = p.footprint_lines(64);
        assert_eq!(
            footprint,
            p.instruction_lines
                + p.shared_ro_lines
                + p.shared_rw_lines
                + 64 * p.private_lines_per_core
        );
    }

    #[test]
    fn invalid_profiles_are_rejected_with_typed_errors() {
        use crate::error::ProfileError;

        let mut p = profile();
        p.rw_write_fraction = 2.0;
        assert_eq!(
            p.validate(),
            Err(ProfileError::FractionOutOfRange {
                field: "rw_write_fraction"
            })
        );
        let mut p = profile();
        p.private_write_fraction = -0.1;
        assert_eq!(
            p.validate(),
            Err(ProfileError::FractionOutOfRange {
                field: "private_write_fraction"
            })
        );
        let mut p = profile();
        p.sharing_degree = 0;
        assert_eq!(p.validate(), Err(ProfileError::ZeroSharingDegree));
        let mut p = profile();
        p.reuse[0] = ReuseModel {
            continue_probability: 1.5,
            max_run: 8,
        };
        assert_eq!(
            p.validate(),
            Err(ProfileError::InvalidReuseModel { index: 0 })
        );
        let mut p = profile();
        p.reuse[2] = ReuseModel {
            continue_probability: 0.5,
            max_run: 0,
        };
        assert_eq!(
            p.validate(),
            Err(ProfileError::InvalidReuseModel { index: 2 })
        );
        // Class-mix violations propagate through the profile validator.
        let mut p = profile();
        p.class_mix.instruction = f64::NAN;
        assert_eq!(p.validate(), Err(ProfileError::NonFiniteClassWeight));
    }
}
