//! Benchmark-suite helpers for the experiment harness.

use crate::benchmarks::Benchmark;
use crate::generator::{TraceGenerator, WorkloadTrace};

/// A set of benchmarks plus the generation parameters used for a run of the
/// experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSuite {
    benchmarks: Vec<Benchmark>,
    accesses_per_core: usize,
    seed: u64,
}

impl BenchmarkSuite {
    /// The full 21-benchmark suite with a default trace length suitable for
    /// regenerating the paper's figures on a laptop.
    pub fn full() -> Self {
        BenchmarkSuite {
            benchmarks: Benchmark::ALL.to_vec(),
            accesses_per_core: 3000,
            seed: 0x1ad,
        }
    }

    /// A small, fast subset used by integration tests and examples: one
    /// benchmark from each behavioural family.
    pub fn quick() -> Self {
        BenchmarkSuite {
            benchmarks: vec![
                Benchmark::Barnes,          // shared read-write, high reuse
                Benchmark::Facesim,         // instruction heavy
                Benchmark::Blackscholes,    // private with false sharing
                Benchmark::Fluidanimate,    // low reuse, large working set
                Benchmark::LuNonContiguous, // migratory
            ],
            accesses_per_core: 1200,
            seed: 0x1ad,
        }
    }

    /// The subset plotted in Figure 9 (classifier sensitivity).
    pub fn figure9() -> Self {
        BenchmarkSuite {
            benchmarks: vec![
                Benchmark::Radix,
                Benchmark::LuNonContiguous,
                Benchmark::Cholesky,
                Benchmark::Barnes,
                Benchmark::OceanNonContiguous,
                Benchmark::WaterNsquared,
                Benchmark::Raytrace,
                Benchmark::Volrend,
                Benchmark::Streamcluster,
                Benchmark::Dedup,
                Benchmark::Ferret,
                Benchmark::Facesim,
                Benchmark::ConnectedComponents,
            ],
            accesses_per_core: 3000,
            seed: 0x1ad,
        }
    }

    /// The subset plotted in Figure 10 (cluster-size sensitivity).
    pub fn figure10() -> Self {
        BenchmarkSuite {
            benchmarks: vec![
                Benchmark::Radix,
                Benchmark::LuNonContiguous,
                Benchmark::Barnes,
                Benchmark::WaterNsquared,
                Benchmark::Raytrace,
                Benchmark::Volrend,
                Benchmark::Blackscholes,
                Benchmark::Swaptions,
                Benchmark::Fluidanimate,
                Benchmark::Streamcluster,
                Benchmark::Ferret,
                Benchmark::Bodytrack,
                Benchmark::Facesim,
                Benchmark::Patricia,
                Benchmark::ConnectedComponents,
            ],
            accesses_per_core: 3000,
            seed: 0x1ad,
        }
    }

    /// A custom suite.
    pub fn custom(benchmarks: Vec<Benchmark>, accesses_per_core: usize, seed: u64) -> Self {
        BenchmarkSuite {
            benchmarks,
            accesses_per_core,
            seed,
        }
    }

    /// Overrides the per-core trace length (builder style).
    pub fn with_accesses_per_core(mut self, accesses_per_core: usize) -> Self {
        self.accesses_per_core = accesses_per_core.max(1);
        self
    }

    /// Overrides the generation seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The benchmarks in this suite.
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Per-core trace length used by [`BenchmarkSuite::trace_for`].
    pub fn accesses_per_core(&self) -> usize {
        self.accesses_per_core
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the trace of one benchmark for a machine of `num_cores`
    /// cores.
    pub fn trace_for(&self, benchmark: Benchmark, num_cores: usize) -> WorkloadTrace {
        TraceGenerator::new(benchmark.profile()).generate(
            num_cores,
            self.accesses_per_core,
            self.seed ^ benchmark as u64,
        )
    }
}

impl Default for BenchmarkSuite {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_has_all_benchmarks() {
        let suite = BenchmarkSuite::full();
        assert_eq!(suite.benchmarks().len(), 21);
        assert_eq!(BenchmarkSuite::default(), suite);
    }

    #[test]
    fn figure_subsets_match_paper_plots() {
        assert_eq!(BenchmarkSuite::figure9().benchmarks().len(), 13);
        assert_eq!(BenchmarkSuite::figure10().benchmarks().len(), 15);
        assert!(BenchmarkSuite::quick().benchmarks().len() >= 4);
    }

    #[test]
    fn builders_adjust_parameters() {
        let suite = BenchmarkSuite::quick()
            .with_accesses_per_core(100)
            .with_seed(9);
        assert_eq!(suite.accesses_per_core(), 100);
        assert_eq!(suite.seed(), 9);
        assert_eq!(
            BenchmarkSuite::quick()
                .with_accesses_per_core(0)
                .accesses_per_core(),
            1
        );
        let custom = BenchmarkSuite::custom(vec![Benchmark::Dedup], 10, 3);
        assert_eq!(custom.benchmarks(), &[Benchmark::Dedup]);
    }

    #[test]
    fn trace_for_uses_distinct_seeds_per_benchmark() {
        let suite = BenchmarkSuite::quick().with_accesses_per_core(50);
        let a = suite.trace_for(Benchmark::Barnes, 4);
        let b = suite.trace_for(Benchmark::Facesim, 4);
        assert_eq!(a.num_cores(), 4);
        assert_eq!(b.num_cores(), 4);
        assert_ne!(a, b);
        // Same call twice is deterministic.
        assert_eq!(suite.trace_for(Benchmark::Barnes, 4), a);
    }
}
