//! Typed errors for the trace layer.
//!
//! [`ProfileError`] replaces the stringly `Result<(), String>` the profile
//! validators used to return, so callers can match on the exact violation.
//! The trace-I/O layer (`lad-traceio`) embeds it in its own `TraceError`, so
//! every trace-layer failure — generation *and* serialization — is matchable
//! through one error tree.

use std::error::Error;
use std::fmt;

/// A validation failure in a [`BenchmarkProfile`](crate::BenchmarkProfile)
/// or one of its components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// A class-mix weight is negative, NaN or infinite.
    NonFiniteClassWeight,
    /// Every class-mix weight is zero: no class can ever be drawn.
    NoPositiveClassWeight,
    /// A reuse model has a continue probability outside `[0, 1]` or a zero
    /// maximum run length.  The index follows the profile's `reuse` array
    /// order (instruction / private / shared-RO / shared-RW).
    InvalidReuseModel {
        /// Index into `BenchmarkProfile::reuse`.
        index: usize,
    },
    /// A fraction field lies outside `[0, 1]`.
    FractionOutOfRange {
        /// Name of the offending field.
        field: &'static str,
    },
    /// `sharing_degree` is zero; every shared line needs at least one user.
    ZeroSharingDegree,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::NonFiniteClassWeight => {
                f.write_str("class weights must be finite and non-negative")
            }
            ProfileError::NoPositiveClassWeight => {
                f.write_str("at least one class weight must be positive")
            }
            ProfileError::InvalidReuseModel { index } => {
                write!(f, "reuse model {index} is invalid")
            }
            ProfileError::FractionOutOfRange { field } => {
                write!(f, "{field} must lie in [0, 1]")
            }
            ProfileError::ZeroSharingDegree => f.write_str("sharing degree must be at least 1"),
        }
    }
}

impl Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_violation() {
        assert_eq!(
            ProfileError::FractionOutOfRange {
                field: "rw_write_fraction"
            }
            .to_string(),
            "rw_write_fraction must lie in [0, 1]"
        );
        assert_eq!(
            ProfileError::InvalidReuseModel { index: 2 }.to_string(),
            "reuse model 2 is invalid"
        );
        assert_eq!(
            ProfileError::ZeroSharingDegree.to_string(),
            "sharing degree must be at least 1"
        );
    }

    #[test]
    fn variants_are_matchable_and_comparable() {
        let err = ProfileError::InvalidReuseModel { index: 1 };
        assert_eq!(err, ProfileError::InvalidReuseModel { index: 1 });
        assert_ne!(err, ProfileError::InvalidReuseModel { index: 2 });
        // It is a std error, so it can ride in error trees.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.source().is_none());
    }
}
