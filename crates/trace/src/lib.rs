//! Synthetic multi-threaded memory-access traces.
//!
//! The paper evaluates 21 benchmarks from SPLASH-2, PARSEC, Parallel
//! MiBench and the UHPC graph suite (Table 2).  Those applications and their
//! inputs are not available here, so this crate substitutes *profile-driven
//! synthetic traces*: each benchmark is described by a
//! [`generator::BenchmarkProfile`] giving
//!
//! * the mix of LLC accesses by data class (instructions, private data,
//!   shared read-only, shared read-write), matching the characterization of
//!   Figure 1;
//! * the reuse *run-length* distribution per class (how many times a core
//!   re-touches a line before a conflicting access or eviction), which is
//!   the quantity the locality classifier keys on;
//! * working-set sizes (whether the benchmark fits in the LLC), sharing
//!   degree, write fraction, migratory behaviour and page-level false
//!   sharing.
//!
//! The generators are fully deterministic from a seed, so every experiment
//! is reproducible.
//!
//! # Example
//!
//! ```
//! use lad_trace::benchmarks::Benchmark;
//! use lad_trace::generator::TraceGenerator;
//!
//! let profile = Benchmark::Barnes.profile();
//! let trace = TraceGenerator::new(profile).generate(4, 200, 42);
//! assert_eq!(trace.num_cores(), 4);
//! assert!(trace.total_accesses() >= 4 * 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod error;
pub mod generator;
pub mod pattern;
pub mod suite;

pub use benchmarks::Benchmark;
pub use error::ProfileError;
pub use generator::{BenchmarkProfile, TraceGenerator, WorkloadTrace};
pub use suite::BenchmarkSuite;
