//! Value-generation strategies: the sampled subset of proptest's
//! `Strategy` ecosystem (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (mirrors `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of one value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Chooses uniformly between type-erased variants (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `variants`; must be non-empty.
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.variants.len() as u64) as usize;
        self.variants[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy (mirrors
/// `proptest::arbitrary::Arbitrary`, generation only).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                ((*self.start() as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_impls {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_impls! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
