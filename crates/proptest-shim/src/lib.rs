//! A minimal, fully offline stand-in for the [`proptest`] crate.
//!
//! The build environment of this workspace has no access to a crates.io
//! registry, so the real `proptest` cannot be fetched.  This crate implements
//! the (small) subset of the proptest 1.x API that the workspace's property
//! tests use, with the same surface syntax:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute,
//! * `arg in strategy` argument binding,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * integer-range / `any::<T>()` / tuple / `prop::collection::vec`
//!   strategies, [`Strategy::prop_map`] and [`prop_oneof!`].
//!
//! Unlike the real proptest there is no shrinking and no persisted failure
//! regression file: cases are generated from a deterministic per-test seed so
//! failures reproduce bit-for-bit on every run, and the failing case index is
//! reported in the panic message.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements are drawn from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirror of the real crate's `prop` prelude module path
/// (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// The names the real `proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests.  Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            while let ::std::option::Option::Some((case, mut rng)) = runner.next_case() {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "proptest case {case} of {} failed: {err}\n(cases are deterministic; re-run to reproduce)",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Chooses uniformly between several strategies producing the same value
/// type.  Mirrors `proptest::prop_oneof!` (without weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!` but aborts only the current generated case, reporting the
/// condition (and optional formatted message) through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}
