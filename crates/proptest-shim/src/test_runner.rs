//! The deterministic case runner behind the [`proptest!`](crate::proptest)
//! macro.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (carries the rendered message).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Iterates the generated cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    next: u32,
    seed: u64,
}

impl TestRunner {
    /// Builds a runner whose case seeds are derived deterministically from
    /// the test name, so every run generates the identical case sequence.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name gives each test its own stream.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            cases: config.cases,
            next: 0,
            seed,
        }
    }

    /// Returns the next `(case_index, rng)` pair, or `None` when done.
    pub fn next_case(&mut self) -> Option<(u32, TestRng)> {
        if self.next >= self.cases {
            return None;
        }
        let case = self.next;
        self.next += 1;
        Some((
            case,
            TestRng::new(self.seed ^ (u64::from(case) << 32 | u64::from(case))),
        ))
    }
}

/// The value generator handed to strategies: SplitMix64, seeded per case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
