//! A minimal, fully offline stand-in for the [`criterion`] benchmark crate.
//!
//! The build environment of this workspace has no access to a crates.io
//! registry, so the real `criterion` cannot be fetched.  This crate keeps the
//! workspace's `benches/` compiling and *running* with the same source: each
//! registered benchmark executes a small fixed number of timed iterations and
//! prints the mean wall-clock time per iteration.  There is no statistical
//! analysis, warm-up tuning, or HTML report — it is a smoke-and-sanity
//! harness, not a measurement instrument.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility and
/// otherwise ignored by this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Medium per-iteration inputs.
    MediumInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Work performed per benchmark iteration, used to derive a rate from the
/// mean iteration time (mirroring `criterion::Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The iteration processes this many logical elements (e.g. memory
    /// accesses); the report adds an elements-per-second rate.
    Elements(u64),
    /// The iteration processes this many bytes; the report adds a
    /// bytes-per-second rate.
    Bytes(u64),
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    total_nanos: u128,
    throughput: Option<Throughput>,
}

impl Bencher {
    fn new(iterations: u64, throughput: Option<Throughput>) -> Self {
        Bencher {
            iterations,
            total_nanos: 0,
            throughput,
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
    }

    /// Times `routine` over fresh inputs built by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_nanos += start.elapsed().as_nanos();
        }
    }

    fn report(&self, name: &str) {
        let mean = self.total_nanos / u128::from(self.iterations.max(1));
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0 => {
                format!(", {:.0} elem/s", n as f64 * 1e9 / mean as f64)
            }
            Some(Throughput::Bytes(n)) if mean > 0 => {
                format!(", {:.0} bytes/s", n as f64 * 1e9 / mean as f64)
            }
            _ => String::new(),
        };
        println!(
            "bench {name:<45} {} iters, mean {mean} ns/iter{rate}",
            self.iterations
        );
    }
}

/// The top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // A handful of iterations: enough to exercise the code path and catch
        // order-of-magnitude regressions by eye, cheap enough for CI.
        Criterion { iterations: 5 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.iterations, None);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stand-in keeps its own fixed
    /// iteration count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Declares the work per iteration for subsequent benchmarks of this
    /// group, so reports include a derived rate (e.g. accesses per second).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Registers and immediately runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let mut bencher = Bencher::new(self.criterion.iterations, self.throughput);
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
