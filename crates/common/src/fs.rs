//! Crash-consistent filesystem helpers.
//!
//! Every durable write in the workspace goes through [`atomic_write`]:
//! write to a unique temp file in the destination directory, `fsync` the
//! file, atomically `rename` over the destination, then `fsync` the
//! directory so the rename itself survives a crash.  A reader can then
//! never observe a half-written destination — it sees either the old bytes
//! or the new bytes, which is the property the serve durability layer's
//! digest verification builds on.
//!
//! [`atomic_write_faulty`] is the same operation with a fault-injection
//! checkpoint in front (see [`crate::fault`]): a scheduled
//! [`FaultKind::Torn`] deliberately bypasses the temp-file protocol and
//! leaves a torn prefix at the *final* path, simulating the crash mode the
//! protocol exists to prevent — so tests can prove the quarantine-on-load
//! path actually runs.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::fault::{FaultInjector, FaultKind, FaultSite};

/// Monotonic per-process counter making temp names unique across threads.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_path_for(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = match path.file_name() {
        Some(name) => name.to_string_lossy().into_owned(),
        None => "file".to_string(),
    };
    path.with_file_name(format!(".{name}.{pid}.{seq}.tmp"))
}

/// Durably replaces the file at `path` with `bytes`.
///
/// The sequence is temp-file write → file `fsync` → atomic `rename` →
/// directory `fsync`.  On any error the temp file is removed and `path` is
/// left untouched (old content intact).  Directory `fsync` failures are
/// ignored — not every filesystem supports opening directories, and the
/// rename has already landed.
///
/// # Errors
///
/// Propagates the underlying I/O error (create, write, sync, or rename).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path_for(path);
    let result = (|| -> io::Result<()> {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_write`] for streaming producers: runs `write` against a temp
/// file in `path`'s directory, then `fsync`s, atomically renames over
/// `path`, and `fsync`s the directory.  On any error (the closure's or the
/// protocol's) the temp file is removed and `path` is left untouched.
///
/// The closure gets the bare [`File`]; wrap it in a `BufWriter` (and
/// remember to flush any wrapper before returning — the file itself is
/// synced here, but a wrapper's buffer is the closure's own).
///
/// # Errors
///
/// Whatever `write` reports, or the underlying I/O error of the atomic
/// protocol (create, sync, or rename).
pub fn atomic_stream<T>(
    path: &Path,
    write: impl FnOnce(&mut File) -> io::Result<T>,
) -> io::Result<T> {
    let tmp = tmp_path_for(path);
    let result = (|| -> io::Result<T> {
        let mut file = File::create(&tmp)?;
        let value = write(&mut file)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(value)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_write`] with a fault-injection checkpoint consulted once per
/// call at `site`.
///
/// Injected behaviour:
///
/// * [`FaultKind::Torn`]`{ at }` — writes the first `at` bytes **directly
///   to `path`** (the torn file a crash leaves behind when the atomic
///   protocol is violated by the storage layer itself) and fails;
/// * [`FaultKind::Enospc`] — fails with
///   [`io::ErrorKind::StorageFull`] without touching `path`;
/// * any other scheduled kind — fails with an injected error without
///   touching `path`;
/// * no scheduled fault (or a disarmed injector) — plain [`atomic_write`].
///
/// # Errors
///
/// The injected error, or whatever [`atomic_write`] reports.
pub fn atomic_write_faulty(
    path: &Path,
    bytes: &[u8],
    injector: &FaultInjector,
    site: FaultSite,
) -> io::Result<()> {
    match injector.fire(site) {
        None => atomic_write(path, bytes),
        Some(FaultKind::Torn { at }) => {
            let n = at.min(bytes.len());
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            file.write_all(&bytes[..n])?;
            let _ = file.sync_all();
            Err(io::Error::other(format!(
                "injected fault: torn@{at} at {site} (wrote {n} of {} bytes)",
                bytes.len()
            )))
        }
        Some(FaultKind::Enospc) => Err(io::Error::new(
            io::ErrorKind::StorageFull,
            format!("injected fault: enospc at {site}"),
        )),
        Some(kind) => Err(io::Error::other(format!(
            "injected fault: {kind} at {site}"
        ))),
    }
}

/// Best-effort `fsync` of `path`'s parent directory so a just-completed
/// rename survives a crash.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "lad-common-fs-{tag}-{}-{}",
                std::process::id(),
                TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp_files() {
        let dir = TempDir::new("replace");
        let path = dir.0.join("state.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer content").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer content");
        let leftovers: Vec<_> = fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn atomic_write_into_missing_directory_fails_cleanly() {
        let dir = TempDir::new("missing");
        let path = dir.0.join("no-such-subdir").join("state.json");
        assert!(atomic_write(&path, b"x").is_err());
        assert!(!path.exists());
    }

    #[test]
    fn injected_torn_write_leaves_prefix_at_final_path() {
        let dir = TempDir::new("torn");
        let path = dir.0.join("entry.json");
        atomic_write(&path, b"old good content").unwrap();
        let injector = FaultInjector::armed(FaultPlan::parse("cache-spill:1:torn@4").unwrap());
        let err = atomic_write_faulty(&path, b"new content", &injector, FaultSite::CacheSpill)
            .unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        // The destination is the torn prefix — exactly what a crash leaves.
        assert_eq!(fs::read(&path).unwrap(), b"new ");
        // Subsequent writes (fault exhausted) restore atomicity.
        atomic_write_faulty(&path, b"new content", &injector, FaultSite::CacheSpill).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new content");
    }

    #[test]
    fn injected_enospc_leaves_destination_untouched() {
        let dir = TempDir::new("enospc");
        let path = dir.0.join("entry.json");
        atomic_write(&path, b"old good content").unwrap();
        let injector = FaultInjector::armed(FaultPlan::parse("checkpoint-spill:1:enospc").unwrap());
        let err = atomic_write_faulty(&path, b"new content", &injector, FaultSite::CheckpointSpill)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(fs::read(&path).unwrap(), b"old good content");
    }
}
