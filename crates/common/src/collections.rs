//! Deterministic fast hash maps for simulator hot paths.
//!
//! `std`'s default `SipHash` is robust against adversarial keys but costs
//! tens of cycles per lookup; the simulator hashes its own trusted keys
//! (cache-line indices, page numbers) millions of times per run.  This
//! module provides a fixed-seed multiply-rotate hasher (the `FxHash`
//! construction used by rustc, reimplemented here because the workspace is
//! dependency-free) and a [`FastMap`] alias over it.
//!
//! Determinism: the hasher has no per-process random state, so a `FastMap`
//! built by the same key sequence iterates identically on every run of the
//! same build.  Reports must still never depend on map iteration order —
//! the repo-wide rule (see `lad-lint`) is that anything rendered into a
//! report goes through an ordered structure or a commutative reduction.
//
// lad-lint: allow(hashmap) — this module exists to wrap HashMap with a
// deterministic hasher; consumers are still linted.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fixed multiplier from the FxHash construction (a large prime-ish odd
/// constant with well-mixed bits).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher for trusted keys.
///
/// Mixes each 8-byte word of input as `hash = (rotl5(hash) ^ word) * SEED`.
/// Do not use for keys an adversary controls.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Zero-sized, fixed-seed `BuildHasher` for [`FxHasher`].
pub type FastBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed by the deterministic [`FxHasher`].
pub type FastSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FastBuildHasher::default().hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&0xdead_beefu64), hash_of(&0xdead_beefu64));
        assert_eq!(hash_of(&"cache line"), hash_of(&"cache line"));
        assert_eq!(hash_of(&(3u32, 7u64)), hash_of(&(3u32, 7u64)));
    }

    #[test]
    fn nearby_keys_hash_differently() {
        // Not a statistical test — just a guard against a degenerate
        // implementation (e.g. returning the key itself untouched by byte
        // length, or dropping high bits).
        let hashes: Vec<u64> = (0..64u64).map(|k| hash_of(&k)).collect();
        let distinct: std::collections::BTreeSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), hashes.len());
        // Byte strings of different lengths with a shared prefix differ.
        assert_ne!(hash_of(&b"abc".as_slice()), hash_of(&b"abcd".as_slice()));
    }

    #[test]
    fn fast_map_basics() {
        let mut map: FastMap<u64, u64> = FastMap::default();
        for k in 0..100 {
            map.insert(k, k * 2);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&42), Some(&84));
        let mut set: FastSet<u64> = FastSet::default();
        set.insert(7);
        assert!(set.contains(&7));
    }
}
