//! Architectural configuration of the simulated multicore.
//!
//! [`SystemConfig::paper_default`] reproduces Table 1 of the paper:
//! 64 in-order cores at 1 GHz, 16 KB L1-I / 32 KB L1-D (4-way, 1 cycle),
//! a 256 KB 8-way inclusive LLC slice per core (2-cycle tag, 4-cycle data),
//! MESI with the ACKwise₄ limited directory, 8 DRAM controllers (5 GBps each,
//! 75 ns), and an electrical 2-D mesh with XY routing, 2-cycle hops and
//! 64-bit flits.

use std::fmt;

use crate::types::CoreId;

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Access latency for the tag array, in cycles.
    pub tag_latency: u32,
    /// Access latency for the data array, in cycles (total access latency is
    /// `tag_latency + data_latency` for a serial lookup).
    pub data_latency: u32,
}

impl CacheConfig {
    /// Number of sets for a given cache-line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly (capacity must be a
    /// multiple of `associativity * line_bytes`).
    pub fn num_sets(&self, line_bytes: usize) -> usize {
        let lines = self.capacity_bytes / line_bytes;
        assert_eq!(
            lines % self.associativity,
            0,
            "cache capacity must be a whole number of sets"
        );
        lines / self.associativity
    }

    /// Total number of cache lines this cache can hold.
    pub fn num_lines(&self, line_bytes: usize) -> usize {
        self.capacity_bytes / line_bytes
    }

    /// Total (tag + data) access latency in cycles.
    pub fn access_latency(&self) -> u32 {
        self.tag_latency + self.data_latency
    }
}

/// Configuration of the on-chip interconnection network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Mesh width (number of columns). The mesh is `width x height`.
    pub mesh_width: usize,
    /// Mesh height (number of rows).
    pub mesh_height: usize,
    /// Fixed latency per hop (router + link), in cycles.
    pub hop_latency: u32,
    /// Flit width in bits.
    pub flit_width_bits: usize,
    /// Number of flits in a message header (source, destination, address,
    /// message type).
    pub header_flits: usize,
}

impl NetworkConfig {
    /// Number of flits needed to carry a full cache line plus header.
    pub fn data_message_flits(&self, line_bytes: usize) -> usize {
        self.header_flits + (line_bytes * 8).div_ceil(self.flit_width_bits)
    }

    /// Number of flits in a control message (header only).
    pub fn control_message_flits(&self) -> usize {
        self.header_flits
    }
}

/// Configuration of the off-chip memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of on-chip memory controllers.
    pub num_controllers: usize,
    /// Peak bandwidth per controller in bytes per cycle (5 GBps at 1 GHz is
    /// 5 bytes/cycle).
    pub bandwidth_bytes_per_cycle: f64,
    /// Fixed DRAM access latency in cycles (75 ns at 1 GHz = 75 cycles).
    pub access_latency: u32,
}

/// Full architectural configuration of the simulated system.
///
/// The default (via [`SystemConfig::paper_default`] or [`Default`])
/// reproduces Table 1.  Use the `with_*` builder methods to derive scaled
/// configurations (e.g. a 16-core system for fast tests).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (= number of LLC slices = number of tiles).
    pub num_cores: usize,
    /// Cache line size in bytes.
    pub cache_line_bytes: usize,
    /// Page size in bytes (used by Reactive-NUCA's page-grain classification).
    pub page_bytes: usize,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// One LLC (L2) slice; the full LLC is `num_cores` such slices.
    pub llc_slice: CacheConfig,
    /// Number of ACKwise hardware sharer pointers per directory entry.
    pub ackwise_pointers: usize,
    /// On-chip network.
    pub network: NetworkConfig,
    /// Off-chip memory.
    pub dram: DramConfig,
}

impl SystemConfig {
    /// The configuration used throughout the paper's evaluation (Table 1).
    pub fn paper_default() -> Self {
        SystemConfig {
            num_cores: 64,
            cache_line_bytes: 64,
            page_bytes: 4096,
            l1i: CacheConfig {
                capacity_bytes: 16 * 1024,
                associativity: 4,
                tag_latency: 0,
                data_latency: 1,
            },
            l1d: CacheConfig {
                capacity_bytes: 32 * 1024,
                associativity: 4,
                tag_latency: 0,
                data_latency: 1,
            },
            llc_slice: CacheConfig {
                capacity_bytes: 256 * 1024,
                associativity: 8,
                tag_latency: 2,
                data_latency: 4,
            },
            ackwise_pointers: 4,
            network: NetworkConfig {
                mesh_width: 8,
                mesh_height: 8,
                hop_latency: 2,
                flit_width_bits: 64,
                header_flits: 1,
            },
            dram: DramConfig {
                num_controllers: 8,
                bandwidth_bytes_per_cycle: 5.0,
                access_latency: 75,
            },
        }
    }

    /// A scaled-down configuration for fast unit and integration tests:
    /// 16 cores (4×4 mesh), 4 KB L1s, 128 KB LLC slices, 4 DRAM controllers.
    ///
    /// The *relative* structure (inclusive LLC larger than L1, multi-hop
    /// mesh, limited directory) is preserved so protocol behaviour is
    /// representative.
    pub fn small_test() -> Self {
        SystemConfig {
            num_cores: 16,
            cache_line_bytes: 64,
            page_bytes: 4096,
            l1i: CacheConfig {
                capacity_bytes: 4 * 1024,
                associativity: 2,
                tag_latency: 0,
                data_latency: 1,
            },
            l1d: CacheConfig {
                capacity_bytes: 4 * 1024,
                associativity: 4,
                tag_latency: 0,
                data_latency: 1,
            },
            llc_slice: CacheConfig {
                capacity_bytes: 128 * 1024,
                associativity: 8,
                tag_latency: 2,
                data_latency: 4,
            },
            ackwise_pointers: 4,
            network: NetworkConfig {
                mesh_width: 4,
                mesh_height: 4,
                hop_latency: 2,
                flit_width_bits: 64,
                header_flits: 1,
            },
            dram: DramConfig {
                num_controllers: 4,
                bandwidth_bytes_per_cycle: 5.0,
                access_latency: 75,
            },
        }
    }

    /// Returns a copy with a different core count, adjusting the mesh to the
    /// squarest possible rectangle and keeping per-core cache sizes.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn with_num_cores(mut self, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        self.num_cores = num_cores;
        let (w, h) = squarest_mesh(num_cores);
        self.network.mesh_width = w;
        self.network.mesh_height = h;
        self.dram.num_controllers = self.dram.num_controllers.min(num_cores).max(1);
        self
    }

    /// Returns a copy with a different LLC slice capacity (bytes).
    pub fn with_llc_slice_capacity(mut self, capacity_bytes: usize) -> Self {
        self.llc_slice.capacity_bytes = capacity_bytes;
        self
    }

    /// Validates internal consistency (mesh covers all cores, cache
    /// geometries divide evenly, at least one DRAM controller).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_cores == 0 {
            return Err(ConfigError::new("number of cores must be non-zero"));
        }
        if self.network.mesh_width * self.network.mesh_height < self.num_cores {
            return Err(ConfigError::new(
                "mesh dimensions are too small for the number of cores",
            ));
        }
        if !self.cache_line_bytes.is_power_of_two() {
            return Err(ConfigError::new("cache line size must be a power of two"));
        }
        if self.page_bytes < self.cache_line_bytes || !self.page_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                "page size must be a power of two and at least one cache line",
            ));
        }
        for (name, cache) in [
            ("l1i", &self.l1i),
            ("l1d", &self.l1d),
            ("llc", &self.llc_slice),
        ] {
            let lines = cache.capacity_bytes / self.cache_line_bytes;
            if lines == 0 || !lines.is_multiple_of(cache.associativity) {
                return Err(ConfigError::new(format!(
                    "{name} geometry invalid: {} bytes / {}-way does not form whole sets",
                    cache.capacity_bytes, cache.associativity
                )));
            }
        }
        if self.dram.num_controllers == 0 {
            return Err(ConfigError::new("need at least one DRAM controller"));
        }
        if self.ackwise_pointers == 0 {
            return Err(ConfigError::new("ACKwise needs at least one pointer"));
        }
        Ok(())
    }

    /// The LLC home slice of a cache line under plain address interleaving
    /// (Static-NUCA): line index modulo the number of cores.
    pub fn address_interleaved_home(&self, line_index: u64) -> CoreId {
        CoreId::new((line_index % self.num_cores as u64) as usize)
    }

    /// The DRAM controller responsible for a cache line (address
    /// interleaved across controllers).
    pub fn dram_controller_for(&self, line_index: u64) -> usize {
        (line_index % self.dram.num_controllers as u64) as usize
    }

    /// Core of the tile hosting DRAM controller `ctrl`.
    ///
    /// Controllers are spread evenly across the mesh; this gives the core
    /// index whose router the controller is attached to.
    pub fn dram_controller_core(&self, ctrl: usize) -> CoreId {
        let step = (self.num_cores / self.dram.num_controllers).max(1);
        CoreId::new((ctrl * step) % self.num_cores)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Finds mesh dimensions `(width, height)` with `width * height >= n` and the
/// smallest perimeter (i.e. as square as possible).
fn squarest_mesh(n: usize) -> (usize, usize) {
    let mut best = (n, 1);
    let mut best_cost = n + 1;
    let mut w = 1usize;
    while w * w <= n || w <= n {
        if w > n {
            break;
        }
        let h = n.div_ceil(w);
        let cost = w + h;
        if cost < best_cost {
            best_cost = cost;
            best = (w.max(h), w.min(h));
        }
        w += 1;
    }
    best
}

/// Error returned by [`SystemConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// Human-readable description of the constraint violation.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid system configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.num_cores, 64);
        assert_eq!(c.cache_line_bytes, 64);
        assert_eq!(c.l1i.capacity_bytes, 16 * 1024);
        assert_eq!(c.l1i.associativity, 4);
        assert_eq!(c.l1d.capacity_bytes, 32 * 1024);
        assert_eq!(c.l1d.associativity, 4);
        assert_eq!(c.llc_slice.capacity_bytes, 256 * 1024);
        assert_eq!(c.llc_slice.associativity, 8);
        assert_eq!(c.llc_slice.tag_latency, 2);
        assert_eq!(c.llc_slice.data_latency, 4);
        assert_eq!(c.ackwise_pointers, 4);
        assert_eq!(c.network.mesh_width * c.network.mesh_height, 64);
        assert_eq!(c.network.hop_latency, 2);
        assert_eq!(c.network.flit_width_bits, 64);
        assert_eq!(c.dram.num_controllers, 8);
        assert_eq!(c.dram.access_latency, 75);
        c.validate().expect("paper default must validate");
    }

    #[test]
    fn small_test_config_validates() {
        SystemConfig::small_test().validate().unwrap();
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(SystemConfig::default(), SystemConfig::paper_default());
    }

    #[test]
    fn cache_geometry() {
        let c = SystemConfig::paper_default();
        // 256 KB / 64 B = 4096 lines; 8-way -> 512 sets.
        assert_eq!(c.llc_slice.num_sets(c.cache_line_bytes), 512);
        assert_eq!(c.llc_slice.num_lines(c.cache_line_bytes), 4096);
        // 32 KB / 64 B = 512 lines; 4-way -> 128 sets.
        assert_eq!(c.l1d.num_sets(c.cache_line_bytes), 128);
        assert_eq!(c.llc_slice.access_latency(), 6);
    }

    #[test]
    fn data_message_is_nine_flits() {
        // Table 1: header = 1 flit, cache line = 8 flits of 64 bits.
        let c = SystemConfig::paper_default();
        assert_eq!(c.network.data_message_flits(c.cache_line_bytes), 9);
        assert_eq!(c.network.control_message_flits(), 1);
    }

    #[test]
    fn with_num_cores_adjusts_mesh() {
        let c = SystemConfig::paper_default().with_num_cores(16);
        assert_eq!(c.num_cores, 16);
        assert!(c.network.mesh_width * c.network.mesh_height >= 16);
        c.validate().unwrap();
        let c = SystemConfig::paper_default().with_num_cores(36);
        assert_eq!(c.network.mesh_width * c.network.mesh_height, 36);
    }

    #[test]
    fn squarest_mesh_examples() {
        assert_eq!(squarest_mesh(64), (8, 8));
        assert_eq!(squarest_mesh(16), (4, 4));
        assert_eq!(squarest_mesh(1), (1, 1));
        let (w, h) = squarest_mesh(12);
        assert!(w * h >= 12);
        assert_eq!((w, h), (4, 3));
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = SystemConfig::paper_default();
        c.num_cores = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.cache_line_bytes = 48;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.network.mesh_width = 2;
        c.network.mesh_height = 2;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.dram.num_controllers = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.page_bytes = 32;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.l1d.capacity_bytes = 100;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("l1d"));
    }

    #[test]
    fn home_and_dram_mapping_are_stable() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.address_interleaved_home(0).index(), 0);
        assert_eq!(c.address_interleaved_home(65).index(), 1);
        assert_eq!(c.dram_controller_for(9), 1);
        assert!(c.dram_controller_core(7).index() < c.num_cores);
        // All controllers map to distinct cores in the default config.
        let cores: std::collections::HashSet<_> = (0..c.dram.num_controllers)
            .map(|i| c.dram_controller_core(i))
            .collect();
        assert_eq!(cores.len(), c.dram.num_controllers);
    }
}
