//! A small, dependency-free JSON document model with a serializer and a
//! strict parser.
//!
//! The experiment harness emits machine-readable reports (`--json` on every
//! figure binary) and CI round-trips them through this parser, so the format
//! must be produced and consumed without any external crate.  The model is
//! deliberately minimal:
//!
//! * objects preserve insertion order (serialization is byte-stable),
//! * numbers are `f64` (every counter the harness emits fits losslessly in
//!   the 53-bit mantissa; values are printed with Rust's shortest
//!   round-trippable rendering),
//! * parsing is strict RFC 8259: no trailing commas, no comments, no `NaN`.
//!
//! # Example
//!
//! ```
//! use lad_common::json::JsonValue;
//!
//! let value = JsonValue::Object(vec![
//!     ("scheme".to_string(), JsonValue::from("RT-3")),
//!     ("normalized_energy".to_string(), JsonValue::from(0.85)),
//! ]);
//! let text = value.to_string();
//! assert_eq!(text, r#"{"scheme":"RT-3","normalized_energy":0.85}"#);
//! assert_eq!(JsonValue::parse(&text).unwrap(), value);
//! ```

use std::fmt;

/// A parsed or constructed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.  Must be finite; serializing a non-finite number
    /// panics in debug builds and renders `null` in release builds.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.  Pairs keep their insertion order so output is stable.
    Object(Vec<(String, JsonValue)>),
}

/// Error produced by [`JsonValue::parse`], with the byte offset of the
/// failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl From<bool> for JsonValue {
    fn from(value: bool) -> Self {
        JsonValue::Bool(value)
    }
}

impl From<f64> for JsonValue {
    fn from(value: f64) -> Self {
        JsonValue::Number(value)
    }
}

impl From<u64> for JsonValue {
    fn from(value: u64) -> Self {
        JsonValue::Number(value as f64)
    }
}

impl From<u32> for JsonValue {
    fn from(value: u32) -> Self {
        JsonValue::Number(f64::from(value))
    }
}

impl From<usize> for JsonValue {
    fn from(value: usize) -> Self {
        JsonValue::Number(value as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(value: &str) -> Self {
        JsonValue::String(value.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(value: String) -> Self {
        JsonValue::String(value)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(values: Vec<T>) -> Self {
        JsonValue::Array(values.into_iter().map(Into::into).collect())
    }
}

impl JsonValue {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, V: Into<JsonValue>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        JsonValue::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Looks a key up in an object (`None` for other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Strictly below 2^64: `u64::MAX as f64` rounds *up* to 2^64,
            // so an inclusive bound would accept 2^64 and saturate.
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    // ----- serialization --------------------------------------------------

    /// Serializes with two-space indentation and a trailing newline —
    /// the format the `--json` flag writes to disk.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => {
                debug_assert!(n.is_finite(), "JSON numbers must be finite, got {n}");
                if n.is_finite() {
                    // Rust's Display for f64 is the shortest representation
                    // that parses back to the same value, so serialization
                    // round-trips exactly.
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        newline_indent(out, level + 1);
                        item.write(out, Some(level + 1));
                    } else {
                        item.write(out, None);
                    }
                }
                if let Some(level) = indent {
                    newline_indent(out, level);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        newline_indent(out, level + 1);
                        write_escaped(out, key);
                        out.push_str(": ");
                        value.write(out, Some(level + 1));
                    } else {
                        write_escaped(out, key);
                        out.push(':');
                        value.write(out, None);
                    }
                }
                if let Some(level) = indent {
                    newline_indent(out, level);
                }
                out.push('}');
            }
        }
    }

    // ----- parsing --------------------------------------------------------

    /// Parses a complete JSON document (trailing whitespace allowed, any
    /// other trailing content is an error).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first offending
    /// character.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing content after the document"));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parser nesting limit — far beyond anything the harness writes, but keeps
/// a corrupt or adversarial file from overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{literal}'")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain UTF-8 without quotes or escapes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and the run ends on
                // an ASCII boundary byte, so the slice is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 inside string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: must be followed by \uXXXX
                                // with the low surrogate.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000
                                    + ((u32::from(unit) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(u32::from(unit))
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.error("control character inside string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    /// Parses exactly four hex digits (after `\u`); leaves `pos` past them.
    fn parse_hex4(&mut self) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u16::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap_or_else(|_| unreachable!("number characters are ASCII"));
        let value: f64 = text
            .parse()
            .map_err(|_| self.error("number out of range"))?;
        if !value.is_finite() {
            return Err(self.error("number out of range"));
        }
        Ok(JsonValue::Number(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &JsonValue) {
        let compact = value.to_string();
        assert_eq!(
            &JsonValue::parse(&compact).unwrap(),
            value,
            "compact: {compact}"
        );
        let pretty = value.pretty();
        assert_eq!(
            &JsonValue::parse(&pretty).unwrap(),
            value,
            "pretty: {pretty}"
        );
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&JsonValue::Null);
        roundtrip(&JsonValue::Bool(true));
        roundtrip(&JsonValue::Bool(false));
        roundtrip(&JsonValue::Number(0.0));
        roundtrip(&JsonValue::Number(-17.0));
        roundtrip(&JsonValue::Number(0.1 + 0.2)); // 0.30000000000000004
        roundtrip(&JsonValue::Number(1.0e-12));
        roundtrip(&JsonValue::Number((1u64 << 53) as f64));
        roundtrip(&JsonValue::String(String::new()));
        roundtrip(&JsonValue::String("plain".to_string()));
        roundtrip(&JsonValue::String(
            "quo\"te \\ back\nslash\ttab \u{1F980} ünï".to_string(),
        ));
        roundtrip(&JsonValue::String("\u{01}control".to_string()));
    }

    #[test]
    fn containers_roundtrip_and_preserve_order() {
        let value = JsonValue::object([
            ("zebra", JsonValue::from(1.0)),
            ("alpha", JsonValue::from(vec![1.0, 2.5, -3.0])),
            (
                "nested",
                JsonValue::object([
                    (
                        "list",
                        JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)]),
                    ),
                    ("empty_obj", JsonValue::Object(vec![])),
                    ("empty_arr", JsonValue::Array(vec![])),
                ]),
            ),
        ]);
        roundtrip(&value);
        // Keys stay in insertion order, not sorted.
        let text = value.to_string();
        assert!(text.find("zebra").unwrap() < text.find("alpha").unwrap());
    }

    #[test]
    fn accessors() {
        let value = JsonValue::object([
            ("n", JsonValue::from(42u64)),
            ("s", JsonValue::from("hi")),
            ("b", JsonValue::from(true)),
            ("a", JsonValue::from(vec![1.0])),
        ]);
        assert_eq!(value.get("n").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(value.get("n").and_then(JsonValue::as_f64), Some(42.0));
        assert_eq!(value.get("s").and_then(JsonValue::as_str), Some("hi"));
        assert_eq!(value.get("b").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            value.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(value.get("missing"), None);
        assert_eq!(value.as_object().map(<[_]>::len), Some(4));
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        // 2^64 is not representable as a u64 and must be rejected, not
        // saturated; the largest f64 below 2^64 still converts.
        assert_eq!(JsonValue::Number((u64::MAX as f64) * 1.0).as_u64(), None);
        let below = f64::from_bits((u64::MAX as f64).to_bits() - 1);
        assert_eq!(JsonValue::Number(below).as_u64(), Some(below as u64));
    }

    #[test]
    fn parses_standard_syntax() {
        let parsed = JsonValue::parse(
            r#" { "a" : [ 1 , 2.5e2 , -0.5 , true , false , null ] , "b" : "x\u0041\ud83e\udd80" } "#,
        )
        .unwrap();
        assert_eq!(
            parsed.get("a").unwrap(),
            &JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(250.0),
                JsonValue::Number(-0.5),
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null,
            ])
        );
        assert_eq!(
            parsed.get("b").and_then(JsonValue::as_str),
            Some("xA\u{1F980}")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "[1 2]",
            "01",
            "1.",
            "1e",
            "tru",
            "nul",
            "\"\\q\"",
            "\"\\ud800\"",
            "{\"a\":1} trailing",
            "nan",
            "--1",
            "\u{7}",
        ] {
            assert!(
                JsonValue::parse(bad).is_err(),
                "{bad:?} should fail to parse"
            );
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = JsonValue::parse("{\"ok\": 1, \"bad\": tru}").unwrap_err();
        assert_eq!(err.offset, 17);
        assert!(err.to_string().contains("byte 17"));
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_crash() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(JsonValue::Number(3.0).to_string(), "3");
        assert_eq!(JsonValue::Number(-3.0).to_string(), "-3");
        assert_eq!(
            JsonValue::from(1234567890123u64).to_string(),
            "1234567890123"
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let value = JsonValue::object([("k", JsonValue::from(vec![1.0, 2.0]))]);
        let pretty = value.pretty();
        assert!(pretty.contains("\n  \"k\": [\n    1,\n    2\n  ]\n"));
        assert!(pretty.ends_with('\n'));
    }
}
