//! Deterministic fault injection for the I/O and network layers.
//!
//! A [`FaultPlan`] schedules faults **by site and occurrence count**: the
//! plan entry `cache-spill:3:torn@64` fires the third time any code path
//! consults the injector at the [`FaultSite::CacheSpill`] site, and then
//! never again.  Because scheduling depends only on (site, per-site
//! operation counter), a plan replays identically however threads
//! interleave on *other* sites — the same philosophy as the seeded
//! protocol mutants in `lad-check`: adversarial, but reproducible.
//!
//! The delivery mechanism is the [`FaultInjector`] handle threaded through
//! the seams that can fail in production:
//!
//! * [`FaultyRead`] / [`FaultyWrite`] wrap any `Read`/`Write` (trace files,
//!   TCP connections) and surface short transfers, `Interrupted`,
//!   `WouldBlock`, dropped and half-closed connections, and stalled
//!   (slow-loris) peers;
//! * durable-write paths ([`crate::fs::atomic_write_faulty`]) consult the
//!   injector once per write and can observe `ENOSPC` or a **torn write** —
//!   a crash that leaves only the first *N* bytes of the payload on disk;
//! * worker cells call [`FaultInjector::maybe_panic`] so a seeded plan can
//!   prove panic isolation.
//!
//! A disarmed injector (the default everywhere) is one `Option` check per
//! operation — release builds with no plan pay nothing.  Plans are armed
//! explicitly (server config, `lad-serve --fault-plan`, the
//! `LAD_FAULT_PLAN` environment variable) and **never** implicitly.

use std::fmt;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::rng::DeterministicRng;

/// A code location class where faults can be injected.
///
/// Sites are deliberately coarse — "the cache spill path", not "line 412" —
/// so plans stay valid as the code moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Reads of a `.ladt` trace stream feeding a simulation.
    TraceRead,
    /// Writes recording a `.ladt` trace stream.
    TraceWrite,
    /// Durable spill of one result-cache entry.
    CacheSpill,
    /// Durable spill of one engine checkpoint.
    CheckpointSpill,
    /// Durable store of one uploaded trace.
    TraceStore,
    /// Reads on a server-side client connection.
    ConnRead,
    /// Writes on a server-side client connection.
    ConnWrite,
    /// Start of one worker-cell execution (panic injection).
    Cell,
}

impl FaultSite {
    /// Every site, in wire-name order.
    pub const ALL: [FaultSite; 8] = [
        FaultSite::TraceRead,
        FaultSite::TraceWrite,
        FaultSite::CacheSpill,
        FaultSite::CheckpointSpill,
        FaultSite::TraceStore,
        FaultSite::ConnRead,
        FaultSite::ConnWrite,
        FaultSite::Cell,
    ];

    /// The stable wire name used in plan specs.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::TraceRead => "trace-read",
            FaultSite::TraceWrite => "trace-write",
            FaultSite::CacheSpill => "cache-spill",
            FaultSite::CheckpointSpill => "checkpoint-spill",
            FaultSite::TraceStore => "trace-store",
            FaultSite::ConnRead => "conn-read",
            FaultSite::ConnWrite => "conn-write",
            FaultSite::Cell => "cell",
        }
    }

    /// Parses a wire name back into a site.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError`] naming the unknown site.
    pub fn parse(label: &str) -> Result<FaultSite, FaultPlanError> {
        FaultSite::ALL
            .into_iter()
            .find(|site| site.label() == label)
            .ok_or_else(|| FaultPlanError(format!("unknown fault site {label:?}")))
    }

    fn index(self) -> usize {
        match self {
            FaultSite::TraceRead => 0,
            FaultSite::TraceWrite => 1,
            FaultSite::CacheSpill => 2,
            FaultSite::CheckpointSpill => 3,
            FaultSite::TraceStore => 4,
            FaultSite::ConnRead => 5,
            FaultSite::ConnWrite => 6,
            FaultSite::Cell => 7,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happens when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A read or write transfers fewer bytes than asked (legal per the
    /// `Read`/`Write` contracts; exercises retry loops).
    Short,
    /// The operation fails with [`std::io::ErrorKind::Interrupted`]
    /// (`EINTR`); well-behaved callers retry transparently.
    Interrupt,
    /// The operation fails with [`std::io::ErrorKind::WouldBlock`] — what a
    /// socket read timeout surfaces as.
    WouldBlock,
    /// A durable write fails with [`std::io::ErrorKind::StorageFull`]
    /// (`ENOSPC`).
    Enospc,
    /// A durable write crashes mid-write: only the first `at` bytes of the
    /// payload land on disk (at the *final* path — the torn result a
    /// non-atomic writer or a dying disk leaves behind).
    Torn {
        /// How many payload bytes survive the crash.
        at: usize,
    },
    /// The connection fails with [`std::io::ErrorKind::ConnectionReset`].
    Drop,
    /// The peer half-closed: reads see EOF, writes see `BrokenPipe`.
    HalfClose,
    /// A slow-loris peer: the operation stalls for `millis` before
    /// proceeding normally.
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// The code path panics (worker-cell isolation testing).
    Panic,
}

impl FaultKind {
    /// The stable wire name used in plan specs (`torn@N` / `stall@MS`
    /// carry their argument after an `@`).
    pub fn label(self) -> String {
        match self {
            FaultKind::Short => "short".to_string(),
            FaultKind::Interrupt => "interrupt".to_string(),
            FaultKind::WouldBlock => "wouldblock".to_string(),
            FaultKind::Enospc => "enospc".to_string(),
            FaultKind::Torn { at } => format!("torn@{at}"),
            FaultKind::Drop => "drop".to_string(),
            FaultKind::HalfClose => "halfclose".to_string(),
            FaultKind::Stall { millis } => format!("stall@{millis}"),
            FaultKind::Panic => "panic".to_string(),
        }
    }

    /// Parses a wire name (with optional `@` argument) back into a kind.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError`] for unknown kinds or malformed arguments.
    pub fn parse(text: &str) -> Result<FaultKind, FaultPlanError> {
        let (name, arg) = match text.split_once('@') {
            Some((name, arg)) => (name, Some(arg)),
            None => (text, None),
        };
        let number = || -> Result<u64, FaultPlanError> {
            arg.ok_or_else(|| {
                FaultPlanError(format!("fault kind {name:?} needs an @<n> argument"))
            })?
            .parse()
            .map_err(|_| FaultPlanError(format!("bad argument in fault kind {text:?}")))
        };
        let bare = |kind: FaultKind| -> Result<FaultKind, FaultPlanError> {
            match arg {
                None => Ok(kind),
                Some(_) => Err(FaultPlanError(format!(
                    "fault kind {name:?} takes no argument"
                ))),
            }
        };
        match name {
            "short" => bare(FaultKind::Short),
            "interrupt" => bare(FaultKind::Interrupt),
            "wouldblock" => bare(FaultKind::WouldBlock),
            "enospc" => bare(FaultKind::Enospc),
            "torn" => Ok(FaultKind::Torn {
                at: number()? as usize,
            }),
            "drop" => bare(FaultKind::Drop),
            "halfclose" => bare(FaultKind::HalfClose),
            "stall" => Ok(FaultKind::Stall { millis: number()? }),
            "panic" => bare(FaultKind::Panic),
            other => Err(FaultPlanError(format!("unknown fault kind {other:?}"))),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One scheduled fault: fire `kind` the `occurrence`-th time (1-based) the
/// injector is consulted at `site`, then never again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Where the fault fires.
    pub site: FaultSite,
    /// The 1-based operation count at that site on which it fires.
    pub occurrence: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.site, self.occurrence, self.kind)
    }
}

/// A parse error in a fault-plan spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError(String);

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic schedule of faults.
///
/// The textual form is `;`-separated `site:occurrence:kind` entries
/// (`"conn-write:1:drop;cache-spill:2:torn@64"`), or `random:<seed>` for a
/// seeded pseudo-random plan ([`FaultPlan::random`]).  [`fmt::Display`]
/// round-trips the explicit form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan from explicit specs.
    pub fn new(specs: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan { specs }
    }

    /// The scheduled faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Parses the textual form (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// [`FaultPlanError`] naming the offending entry.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let text = text.trim();
        if let Some(seed) = text.strip_prefix("random:") {
            let seed: u64 = seed
                .trim()
                .parse()
                .map_err(|_| FaultPlanError(format!("bad random-plan seed {seed:?}")))?;
            return Ok(FaultPlan::random(seed));
        }
        let mut specs = Vec::new();
        for entry in text.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let mut parts = entry.splitn(3, ':');
            let (site, occurrence, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(site), Some(occurrence), Some(kind)) => (site, occurrence, kind),
                _ => {
                    return Err(FaultPlanError(format!(
                        "entry {entry:?} is not site:occurrence:kind"
                    )))
                }
            };
            let occurrence: u64 = occurrence
                .trim()
                .parse()
                .map_err(|_| FaultPlanError(format!("bad occurrence count in entry {entry:?}")))?;
            if occurrence == 0 {
                return Err(FaultPlanError(format!(
                    "occurrence counts are 1-based; entry {entry:?} has 0"
                )));
            }
            specs.push(FaultSpec {
                site: FaultSite::parse(site.trim())?,
                occurrence,
                kind: FaultKind::parse(kind.trim())?,
            });
        }
        if specs.is_empty() {
            return Err(FaultPlanError("plan schedules no faults".to_string()));
        }
        Ok(FaultPlan { specs })
    }

    /// A seeded pseudo-random plan: 3–6 faults spread across sites, with
    /// kinds appropriate to each site (connections get drops and stalls,
    /// durable writes get torn writes and `ENOSPC`, ...).  Identical seeds
    /// produce identical plans forever — the torture suite's contract.
    pub fn random(seed: u64) -> FaultPlan {
        let mut rng = DeterministicRng::seed_from(seed ^ 0xfa17_a57e_0bad_5eed);
        let count = 3 + rng.index(4);
        let mut specs = Vec::with_capacity(count);
        for _ in 0..count {
            let site = FaultSite::ALL[rng.index(FaultSite::ALL.len())];
            let kind = match site {
                FaultSite::TraceRead => *pick(
                    &mut rng,
                    &[
                        FaultKind::Short,
                        FaultKind::Interrupt,
                        FaultKind::Drop,
                        FaultKind::HalfClose,
                    ],
                ),
                FaultSite::TraceWrite => *pick(&mut rng, &[FaultKind::Short, FaultKind::Interrupt]),
                FaultSite::CacheSpill | FaultSite::CheckpointSpill | FaultSite::TraceStore => {
                    match rng.index(3) {
                        0 => FaultKind::Enospc,
                        1 => FaultKind::Torn { at: rng.index(200) },
                        _ => FaultKind::Drop,
                    }
                }
                FaultSite::ConnRead => *pick(
                    &mut rng,
                    &[
                        FaultKind::Drop,
                        FaultKind::HalfClose,
                        FaultKind::Short,
                        FaultKind::Interrupt,
                        FaultKind::Stall { millis: 0 },
                    ],
                ),
                FaultSite::ConnWrite => *pick(
                    &mut rng,
                    &[
                        FaultKind::Drop,
                        FaultKind::Short,
                        FaultKind::Interrupt,
                        FaultKind::Stall { millis: 0 },
                    ],
                ),
                FaultSite::Cell => FaultKind::Panic,
            };
            let kind = match kind {
                // Stalls drew a placeholder duration; keep them short enough
                // for CI but long enough to exercise deadline code.
                FaultKind::Stall { .. } => FaultKind::Stall {
                    millis: 5 + rng.below(45),
                },
                other => other,
            };
            specs.push(FaultSpec {
                site,
                occurrence: 1 + rng.below(12),
                kind,
            });
        }
        FaultPlan { specs }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{spec}")?;
        }
        Ok(())
    }
}

/// One fault that fired: where, on which operation count, and what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// The site that fired.
    pub site: FaultSite,
    /// The per-site operation count it fired on.
    pub occurrence: u64,
    /// The injected kind.
    pub kind: FaultKind,
}

#[derive(Debug)]
struct InjectorState {
    specs: Vec<FaultSpec>,
    /// Per-site operation counters (indexed by `FaultSite::index`).
    counters: [AtomicU64; 8],
    fired: Mutex<Vec<FiredFault>>,
}

/// The handle code paths consult to learn whether a fault is scheduled for
/// the operation they are about to perform.
///
/// Cloning shares the underlying counters, so one injector threaded through
/// a whole server (and across server restarts in a test harness) keeps a
/// single consistent occurrence count per site — each scheduled fault fires
/// exactly once per process-family.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    state: Option<Arc<InjectorState>>,
}

impl FaultInjector {
    /// The no-op injector: every check is a single `Option` branch.
    pub const fn disarmed() -> FaultInjector {
        FaultInjector { state: None }
    }

    /// An injector executing `plan`.
    pub fn armed(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            state: Some(Arc::new(InjectorState {
                specs: plan.specs,
                counters: Default::default(),
                fired: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether a plan is armed.
    pub fn is_armed(&self) -> bool {
        self.state.is_some()
    }

    /// Counts one operation at `site` and returns the fault scheduled for
    /// exactly this occurrence, if any.
    #[inline]
    pub fn fire(&self, site: FaultSite) -> Option<FaultKind> {
        let state = self.state.as_ref()?;
        let occurrence = state.counters[site.index()].fetch_add(1, Ordering::SeqCst) + 1;
        let spec = state
            .specs
            .iter()
            .find(|spec| spec.site == site && spec.occurrence == occurrence)?;
        state
            .fired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(FiredFault {
                site,
                occurrence,
                kind: spec.kind,
            });
        Some(spec.kind)
    }

    /// Counts one operation at `site` and panics if a
    /// [`FaultKind::Panic`] is scheduled for it (other kinds at a panic
    /// checkpoint are ignored).
    #[inline]
    pub fn maybe_panic(&self, site: FaultSite) {
        if self.state.is_none() {
            return;
        }
        if let Some(FaultKind::Panic) = self.fire(site) {
            panic!("injected fault: panic at {site}");
        }
    }

    /// Every fault fired so far, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        match &self.state {
            Some(state) => state
                .fired
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
            None => Vec::new(),
        }
    }

    /// How many faults have fired at `site`.
    pub fn fired_at(&self, site: FaultSite) -> usize {
        self.fired().iter().filter(|f| f.site == site).count()
    }

    /// Whether every scheduled fault has fired (a torture harness can stop
    /// restarting once the plan is exhausted).
    pub fn exhausted(&self) -> bool {
        match &self.state {
            Some(state) => {
                state
                    .fired
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len()
                    >= state.specs.len()
            }
            None => true,
        }
    }
}

fn pick<'a, T>(rng: &mut DeterministicRng, options: &'a [T]) -> &'a T {
    &options[rng.index(options.len())]
}

fn injected(kind: FaultKind, site: FaultSite) -> std::io::Error {
    use std::io::{Error, ErrorKind};
    let message = format!("injected fault: {kind} at {site}");
    match kind {
        FaultKind::Interrupt => Error::new(ErrorKind::Interrupted, message),
        FaultKind::WouldBlock => Error::new(ErrorKind::WouldBlock, message),
        FaultKind::Enospc => Error::new(ErrorKind::StorageFull, message),
        FaultKind::Drop => Error::new(ErrorKind::ConnectionReset, message),
        FaultKind::HalfClose => Error::new(ErrorKind::BrokenPipe, message),
        _ => Error::other(message),
    }
}

/// A `Read` wrapper that injects the faults scheduled for `site`.
///
/// Disarmed, every call is one branch on an `Option` before delegating.
#[derive(Debug)]
pub struct FaultyRead<R> {
    inner: R,
    site: FaultSite,
    injector: FaultInjector,
}

impl<R> FaultyRead<R> {
    /// Wraps `inner`, consulting `injector` at `site` on every read.
    pub fn new(inner: R, site: FaultSite, injector: FaultInjector) -> FaultyRead<R> {
        FaultyRead {
            inner,
            site,
            injector,
        }
    }

    /// The wrapped reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let Some(kind) = self.injector.fire(self.site) else {
            return self.inner.read(buf);
        };
        match kind {
            FaultKind::Short => {
                let n = (buf.len() / 2).max(1).min(buf.len());
                self.inner.read(&mut buf[..n])
            }
            FaultKind::HalfClose => Ok(0),
            FaultKind::Stall { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                self.inner.read(buf)
            }
            other => Err(injected(other, self.site)),
        }
    }
}

impl<R: Seek> Seek for FaultyRead<R> {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.inner.seek(pos)
    }
}

/// A `Write` wrapper that injects the faults scheduled for `site`.
///
/// Disarmed, every call is one branch on an `Option` before delegating.
#[derive(Debug)]
pub struct FaultyWrite<W> {
    inner: W,
    site: FaultSite,
    injector: FaultInjector,
}

impl<W> FaultyWrite<W> {
    /// Wraps `inner`, consulting `injector` at `site` on every write.
    pub fn new(inner: W, site: FaultSite, injector: FaultInjector) -> FaultyWrite<W> {
        FaultyWrite {
            inner,
            site,
            injector,
        }
    }

    /// The wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let Some(kind) = self.injector.fire(self.site) else {
            return self.inner.write(buf);
        };
        match kind {
            FaultKind::Short => {
                let n = (buf.len() / 2).max(1).min(buf.len());
                self.inner.write(&buf[..n])
            }
            FaultKind::Torn { at } => {
                // Flush whatever prefix "hit the disk", then crash the op.
                let n = at.min(buf.len());
                if n > 0 {
                    let _ = self.inner.write(&buf[..n]);
                    let _ = self.inner.flush();
                }
                Err(injected(kind, self.site))
            }
            FaultKind::Stall { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                self.inner.write(buf)
            }
            other => Err(injected(other, self.site)),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn plan_round_trips_through_text() {
        let text = "conn-write:1:drop;cache-spill:2:torn@64;conn-read:3:stall@25;cell:1:panic";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.specs().len(), 4);
        assert_eq!(plan.to_string(), text);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn plan_parse_rejects_garbage() {
        for bad in [
            "",
            "conn-write",
            "conn-write:0:drop",
            "conn-write:x:drop",
            "mars:1:drop",
            "conn-write:1:melt",
            "conn-write:1:torn",
            "conn-write:1:drop@3",
            "random:x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn random_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::random(7);
        let b = FaultPlan::random(7);
        let c = FaultPlan::random(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!((3..=6).contains(&a.specs().len()));
        assert_eq!(FaultPlan::parse("random:7").unwrap(), a);
        // The textual form of a random plan round-trips like any other.
        assert_eq!(FaultPlan::parse(&a.to_string()).unwrap(), a);
    }

    #[test]
    fn faults_fire_on_the_scheduled_occurrence_exactly_once() {
        let plan = FaultPlan::parse("conn-read:3:drop").unwrap();
        let injector = FaultInjector::armed(plan);
        assert_eq!(injector.fire(FaultSite::ConnRead), None);
        // Other sites do not advance this site's counter.
        assert_eq!(injector.fire(FaultSite::ConnWrite), None);
        assert_eq!(injector.fire(FaultSite::ConnRead), None);
        assert_eq!(injector.fire(FaultSite::ConnRead), Some(FaultKind::Drop));
        assert_eq!(injector.fire(FaultSite::ConnRead), None);
        assert_eq!(injector.fired_at(FaultSite::ConnRead), 1);
        assert!(injector.exhausted());
    }

    #[test]
    fn clones_share_counters() {
        let injector = FaultInjector::armed(FaultPlan::parse("cell:2:panic").unwrap());
        let clone = injector.clone();
        assert_eq!(clone.fire(FaultSite::Cell), None);
        assert_eq!(injector.fire(FaultSite::Cell), Some(FaultKind::Panic));
        assert!(clone.exhausted());
    }

    #[test]
    fn disarmed_injector_is_inert() {
        let injector = FaultInjector::disarmed();
        assert!(!injector.is_armed());
        for site in FaultSite::ALL {
            assert_eq!(injector.fire(site), None);
            injector.maybe_panic(site);
        }
        assert!(injector.exhausted());
        assert!(injector.fired().is_empty());
    }

    #[test]
    #[should_panic(expected = "injected fault: panic at cell")]
    fn maybe_panic_panics_on_schedule() {
        let injector = FaultInjector::armed(FaultPlan::parse("cell:1:panic").unwrap());
        injector.maybe_panic(FaultSite::Cell);
    }

    #[test]
    fn faulty_read_injects_and_then_recovers() {
        let plan =
            FaultPlan::parse("trace-read:1:interrupt;trace-read:2:short;trace-read:4:halfclose")
                .unwrap();
        let injector = FaultInjector::armed(plan);
        let data: Vec<u8> = (0..64).collect();
        let mut reader = FaultyRead::new(
            std::io::Cursor::new(data.clone()),
            FaultSite::TraceRead,
            injector,
        );
        let mut buf = [0u8; 64];
        // 1st: EINTR.
        let err = reader.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        // 2nd: short read (at most half the buffer).
        let n = reader.read(&mut buf).unwrap();
        assert!(n > 0 && n <= 32, "short read returned {n}");
        // 3rd: clean.
        let m = reader.read(&mut buf[n..]).unwrap();
        assert!(m > 0);
        // 4th: spurious EOF.
        assert_eq!(reader.read(&mut buf).unwrap(), 0);
        assert_eq!(&buf[..n + m], &data[..n + m]);
    }

    #[test]
    fn faulty_write_torn_leaves_exactly_the_prefix() {
        let injector = FaultInjector::armed(FaultPlan::parse("cache-spill:1:torn@5").unwrap());
        let mut sink = Vec::new();
        let mut writer = FaultyWrite::new(&mut sink, FaultSite::CacheSpill, injector);
        let err = writer.write(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn"));
        assert_eq!(sink, b"01234");
    }

    #[test]
    fn read_write_interrupts_are_absorbed_by_std_retry_loops() {
        // `write_all` and `read_to_end` retry `Interrupted`, so a plan made
        // only of EINTRs must be invisible at the payload level.
        let plan = FaultPlan::parse("trace-write:1:interrupt;trace-write:3:short").unwrap();
        let injector = FaultInjector::armed(plan.clone());
        let mut sink = Vec::new();
        let mut writer = FaultyWrite::new(&mut sink, FaultSite::TraceWrite, injector);
        writer.write_all(b"payload bytes").unwrap();
        assert_eq!(sink, b"payload bytes");

        let injector = FaultInjector::armed(
            FaultPlan::parse("trace-read:1:interrupt;trace-read:2:short").unwrap(),
        );
        let mut reader = FaultyRead::new(
            std::io::Cursor::new(b"payload bytes".to_vec()),
            FaultSite::TraceRead,
            injector,
        );
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"payload bytes");
    }
}
