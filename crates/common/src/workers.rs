//! Worker-count selection shared by every parallel entry point.
//!
//! The experiment matrix (`run_matrix` / `replay_file_matrix`), the
//! throughput report binary and the experiment service all shard work across
//! `std::thread::scope` workers.  They resolve how many workers to spawn
//! through one precedence chain instead of per-binary ad-hoc logic:
//!
//! 1. an explicit override (a `--threads` flag, a builder call),
//! 2. the `LAD_THREADS` environment variable,
//! 3. a caller-supplied default — usually
//!    [`std::thread::available_parallelism`].
//!
//! Every resolved count is clamped to at least one worker, and unparsable
//! `LAD_THREADS` values fall through to the default rather than erroring: a
//! worker count is a tuning knob, not a correctness input (all matrix
//! results are byte-identical at any thread count).

/// Environment variable consulted when no explicit override is given.
pub const THREADS_ENV: &str = "LAD_THREADS";

/// Resolves a worker count: `flag` if given, else `LAD_THREADS`, else the
/// machine's available parallelism (1 when that cannot be determined).
/// Always at least 1.
pub fn worker_count(flag: Option<usize>) -> usize {
    worker_count_or(
        flag,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
}

/// Like [`worker_count`], but falling back to `default` instead of the
/// machine's parallelism — for entry points whose natural default is not
/// "all cores" (e.g. the timing-sensitive benchmark report defaults to one
/// worker so wall-clock measurements do not contend).
pub fn worker_count_or(flag: Option<usize>, default: usize) -> usize {
    flag.or_else(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|value| value.trim().parse().ok())
    })
    .unwrap_or(default)
    .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The LAD_THREADS-reading paths are exercised in a single test because
    // `cargo test` runs tests concurrently and the environment is
    // process-global.
    #[test]
    fn precedence_is_flag_then_env_then_default() {
        // Explicit overrides win outright and are clamped to >= 1.
        assert_eq!(worker_count_or(Some(6), 2), 6);
        assert_eq!(worker_count_or(Some(0), 2), 1);
        assert_eq!(worker_count(Some(3)), 3);

        std::env::remove_var(THREADS_ENV);
        assert_eq!(worker_count_or(None, 5), 5);
        assert_eq!(worker_count_or(None, 0), 1);
        assert!(worker_count(None) >= 1);

        std::env::set_var(THREADS_ENV, "4");
        assert_eq!(worker_count_or(None, 9), 4);
        assert_eq!(worker_count(None), 4);
        // The flag still beats the environment.
        assert_eq!(worker_count_or(Some(2), 9), 2);

        // Garbage and zero env values fall back safely.
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(worker_count_or(None, 7), 7);
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(worker_count_or(None, 7), 1);

        std::env::remove_var(THREADS_ENV);
    }
}
