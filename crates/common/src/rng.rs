//! Deterministic random-number utilities.
//!
//! All stochastic decisions in the reproduction (synthetic workload
//! generation, ASR's probabilistic replication, tie-breaking) flow through
//! [`DeterministicRng`], a small self-contained xoshiro256++ generator seeded
//! explicitly, so any experiment can be re-run bit-for-bit from its seed.
//! The generator is implemented inline (rather than depending on the `rand`
//! crate) so the workspace builds fully offline and the byte-exact streams
//! every determinism test relies on can never shift under a dependency
//! upgrade.

/// A seeded, reproducible random number generator (xoshiro256++).
///
/// # Example
///
/// ```
/// use lad_common::rng::DeterministicRng;
/// let mut a = DeterministicRng::seed_from(42);
/// let mut b = DeterministicRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: [u64; 4],
}

/// One SplitMix64 step, used for seed expansion and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // Expand the seed through SplitMix64, the seeding procedure the
        // xoshiro authors recommend: it guarantees a non-zero state and
        // decorrelates consecutive seeds.
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DeterministicRng { state }
    }

    /// Derives an independent child generator; `stream` distinguishes the
    /// children of the same parent seed (e.g. one stream per core).
    pub fn derive(&self, stream: u64) -> Self {
        // Mix the stream index with a SplitMix64 step so children differ even
        // for small consecutive stream ids.
        let mut z = stream;
        let z = splitmix64(&mut z);
        DeterministicRng::seed_from(self.base_entropy() ^ z)
    }

    fn base_entropy(&self) -> u64 {
        // Drawing from a clone leaves the parent's own sequence unaffected.
        let mut probe = self.clone();
        probe.next_u64()
    }

    /// The raw xoshiro256++ state, for checkpointing a generator mid-stream.
    ///
    /// Restoring via [`DeterministicRng::from_state`] continues the exact
    /// sequence: the next draw after a save/restore round trip equals the
    /// next draw of the original generator.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds a generator from a [`DeterministicRng::state`] snapshot.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which is not a valid xoshiro256++ state
    /// (the generator would emit zeros forever) and cannot be produced by
    /// [`DeterministicRng::seed_from`].
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&word| word != 0),
            "the all-zero state is not a valid xoshiro256++ state"
        );
        DeterministicRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        self.state = [s0, s1, s2, s3.rotate_left(45)];
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Debiased via rejection sampling: retry draws that land in the
        // incomplete final copy of `[0, bound)` within the u64 range.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let draw = self.next_u64();
            if draw <= zone {
                return draw % bound;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        self.below(bound as u64) as usize
    }

    /// Uniform value in `[low, high]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn range_inclusive(&mut self, low: u64, high: u64) -> u64 {
        assert!(low <= high, "low must not exceed high");
        let span = high - low;
        if span == u64::MAX {
            self.next_u64()
        } else {
            low + self.below(span + 1)
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // The top 53 bits fill the double's mantissa exactly.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks an index according to a slice of non-negative weights.
    ///
    /// Returns the index of the chosen weight.  Zero-weight entries are never
    /// chosen unless all weights are zero, in which case index 0 is returned.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains a negative or non-finite
    /// weight.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must not be empty");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return 0;
        }
        let mut draw = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }

    /// Geometric-like run length: returns `1 + k` where `k` is the number of
    /// successes of probability `continue_p`, capped at `max`.
    ///
    /// Used by the workload generators to draw reuse run-lengths with a
    /// controllable mean.
    pub fn run_length(&mut self, continue_p: f64, max: u64) -> u64 {
        let mut len = 1u64;
        while len < max && self.chance(continue_p) {
            len += 1;
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip_continues_the_sequence() {
        let mut rng = DeterministicRng::seed_from(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut restored = DeterministicRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn all_zero_state_is_rejected() {
        DeterministicRng::from_state([0; 4]);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DeterministicRng::seed_from(7);
        let mut b = DeterministicRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::seed_from(1);
        let mut b = DeterministicRng::seed_from(2);
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let parent = DeterministicRng::seed_from(99);
        let mut c0a = parent.derive(0);
        let mut c0b = parent.derive(0);
        let mut c1 = parent.derive(1);
        let v0a: Vec<u64> = (0..8).map(|_| c0a.next_u64()).collect();
        let v0b: Vec<u64> = (0..8).map(|_| c0b.next_u64()).collect();
        let v1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        assert_eq!(v0a, v0b);
        assert_ne!(v0a, v1);
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = DeterministicRng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            assert!(rng.index(5) < 5);
            let v = rng.range_inclusive(3, 7);
            assert!((3..=7).contains(&v));
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DeterministicRng::seed_from(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-3.0));
        assert!(rng.chance(7.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = DeterministicRng::seed_from(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = DeterministicRng::seed_from(6);
        let mut counts = [0usize; 3];
        for _ in 0..9000 {
            counts[rng.weighted_index(&[1.0, 0.0, 2.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0]);
        // All-zero weights fall back to index 0.
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), 0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn weighted_index_rejects_empty() {
        DeterministicRng::seed_from(1).weighted_index(&[]);
    }

    #[test]
    fn run_length_bounds() {
        let mut rng = DeterministicRng::seed_from(8);
        for _ in 0..1000 {
            let r = rng.run_length(0.9, 16);
            assert!((1..=16).contains(&r));
        }
        assert_eq!(rng.run_length(0.0, 16), 1);
        assert_eq!(rng.run_length(1.0, 5), 5);
    }

    #[test]
    fn run_length_mean_tracks_probability() {
        let mut rng = DeterministicRng::seed_from(9);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.run_length(0.5, 1000)).sum();
        let mean = sum as f64 / n as f64;
        // Expected mean of geometric with p_continue=0.5 is 2.
        assert!((1.8..2.2).contains(&mean), "mean={mean}");
    }
}
