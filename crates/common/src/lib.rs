//! Core types and utilities shared by every crate of the locality-aware LLC
//! replication reproduction.
//!
//! This crate deliberately has no knowledge of caches, coherence or the
//! replication protocol itself.  It provides:
//!
//! * [`types`] — strongly-typed identifiers (cores, cache lines, addresses),
//!   memory operations and data-class labels used throughout the system.
//! * [`config`] — the architectural configuration mirroring Table 1 of the
//!   paper (64 cores, 256 KB LLC slices, ACKwise₄, 2-cycle mesh hops, ...).
//! * [`stats`] — counters, histograms and summary statistics used by the
//!   metric collection of the simulator and the experiment harness.
//! * [`rng`] — a small deterministic random-number facade so that every
//!   simulation and workload generator is reproducible from a seed.
//! * [`collections`] — fixed-seed fast hash maps ([`collections::FastMap`])
//!   for simulator hot paths where `SipHash` is too slow.
//! * [`json`] — a dependency-free JSON document model (serializer + strict
//!   parser) used for the machine-readable experiment reports.
//! * [`workers`] — the one worker-count resolution chain (explicit override,
//!   then `LAD_THREADS`, then a default) shared by every parallel entry
//!   point.
//! * [`fault`] — deterministic, seeded fault injection ([`fault::FaultPlan`],
//!   [`fault::FaultInjector`], [`fault::FaultyRead`]/[`fault::FaultyWrite`])
//!   used by the robustness torture suites; disarmed it costs one branch.
//! * [`fs`] — crash-consistent durable writes ([`fs::atomic_write`]: temp
//!   file + `fsync` + atomic rename + directory `fsync`).
//!
//! # Example
//!
//! ```
//! use lad_common::config::SystemConfig;
//! use lad_common::types::{Address, CoreId};
//!
//! let config = SystemConfig::paper_default();
//! assert_eq!(config.num_cores, 64);
//!
//! let addr = Address::new(0xdead_beef);
//! let line = addr.line(config.cache_line_bytes);
//! assert_eq!(line.byte_address(config.cache_line_bytes) % config.cache_line_bytes as u64, 0);
//! let home = CoreId::new(5);
//! assert_eq!(home.index(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collections;
pub mod config;
pub mod fault;
pub mod fs;
pub mod json;
pub mod rng;
pub mod stats;
pub mod types;
pub mod workers;

pub use config::SystemConfig;
pub use json::JsonValue;
pub use types::{Address, CacheLine, CoreId, Cycle, DataClass, MemOp};
