//! Counters, histograms and summary statistics.
//!
//! The experiment harness reports the same aggregates the paper does:
//! per-component sums (energy breakdowns), normalized ratios, arithmetic
//! means (Figures 6–8 plot the *average*, as the captions note) and
//! geometric means (Figures 9 and 10).

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use lad_common::stats::Counter;
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.increment();
/// assert_eq!(hits.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Rebuilds a counter from a checkpointed [`Counter::value`].
    pub fn from_value(value: u64) -> Self {
        Counter(value)
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one event.
    pub fn increment(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Fraction of this counter relative to a total (0 if the total is 0).
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A histogram over `u64` sample values with exact buckets.
///
/// Used for run-length distributions (Figure 1) and queueing-delay
/// diagnostics.
///
/// Values below [`Histogram::DENSE_LIMIT`] are counted in a flat array
/// (recording is one bounds check and an increment — this sits on the
/// network-latency hot path, one sample per message); the rare large
/// values spill into a sparse tree map.  The split is invisible to the
/// API: iteration, equality and `Debug` output are defined over the
/// logical `(value, count)` contents.
#[derive(Clone, Default)]
pub struct Histogram {
    dense: Vec<u64>,
    sparse: BTreeMap<u64, u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Values strictly below this are stored in the dense array.
    pub const DENSE_LIMIT: u64 = 1024;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_weighted(value, 1);
    }

    /// Records `weight` occurrences of `value`.
    pub fn record_weighted(&mut self, value: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        if value < Self::DENSE_LIMIT {
            let idx = value as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0);
            }
            self.dense[idx] += weight;
        } else {
            *self.sparse.entry(value).or_insert(0) += weight;
        }
        self.count += weight;
        self.sum += value as u128 * weight as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Total number of samples whose value lies in `[low, high]` (inclusive).
    pub fn count_in(&self, low: u64, high: u64) -> u64 {
        if low > high {
            return 0;
        }
        let mut total = 0;
        if low < Self::DENSE_LIMIT && !self.dense.is_empty() {
            let hi = high.min(self.dense.len() as u64 - 1);
            if low <= hi {
                total += self.dense[low as usize..=hi as usize].iter().sum::<u64>();
            }
        }
        if high >= Self::DENSE_LIMIT {
            let lo = low.max(Self::DENSE_LIMIT);
            total += self.sparse.range(lo..=high).map(|(_, c)| *c).sum::<u64>();
        }
        total
    }

    /// Total number of samples whose value is `>= low`.
    pub fn count_at_least(&self, low: u64) -> u64 {
        self.count_in(low, u64::MAX)
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(v, c)| (v as u64, *c))
            .chain(self.sparse.iter().map(|(v, c)| (*v, *c)))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (value, count) in other.iter() {
            self.record_weighted(value, count);
        }
    }

    /// Exact percentile of the recorded samples, or `None` if empty.
    ///
    /// `p` is clamped to `[0, 100]`.  The result is the smallest recorded
    /// value `v` such that at least `ceil(p/100 * count)` samples are
    /// `<= v` (the nearest-rank definition), so `percentile(0.0)` is the
    /// minimum, `percentile(100.0)` the maximum, and every returned value
    /// is one that was actually recorded — no interpolation.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0;
        for (value, count) in self.iter() {
            seen += count;
            if seen >= rank {
                return Some(value);
            }
        }
        Some(self.max)
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.max == other.max
            && self.iter().eq(other.iter())
    }
}

impl Eq for Histogram {}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct Buckets<'a>(&'a Histogram);
        impl fmt::Debug for Buckets<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_map().entries(self.0.iter()).finish()
            }
        }
        f.debug_struct("Histogram")
            .field("buckets", &Buckets(self))
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish()
    }
}

/// Online mean/min/max/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance (`None` if empty).
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Arithmetic mean of a slice (`None` if empty).
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric mean of a slice (`None` if empty or any value is non-positive).
///
/// The paper uses the geometric mean for the normalized results of
/// Figures 9 and 10.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Ratio `value / baseline`, returning 1.0 when the baseline is zero (both
/// are zero in practice in that case — e.g. a benchmark with no off-chip
/// accesses under either scheme).
pub fn normalized(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        1.0
    } else {
        value / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.value(), 0);
        c.increment();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert!((c.fraction_of(40) - 0.25).abs() < 1e-12);
        assert_eq!(c.fraction_of(0), 0.0);
        assert_eq!(c.to_string(), "10");
        assert_eq!(Counter::from_value(c.value()), c);
    }

    #[test]
    fn histogram_counts_and_ranges() {
        let mut h = Histogram::new();
        for v in [1, 1, 2, 3, 9, 10, 12] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 12);
        // Paper's Figure 1 buckets: [1-2], [3-9], [>=10].
        assert_eq!(h.count_in(1, 2), 3);
        assert_eq!(h.count_in(3, 9), 2);
        assert_eq!(h.count_at_least(10), 2);
        assert!((h.mean().unwrap() - 38.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_weighted_and_merge() {
        let mut a = Histogram::new();
        a.record_weighted(5, 3);
        a.record_weighted(7, 0);
        let mut b = Histogram::new();
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.count_in(5, 5), 4);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn histogram_empty_mean_is_none() {
        assert_eq!(Histogram::new().mean(), None);
    }

    #[test]
    fn histogram_dense_sparse_boundary() {
        let mut h = Histogram::new();
        let lim = Histogram::DENSE_LIMIT;
        for v in [0, 1, lim - 1, lim, lim + 5, 1 << 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1 << 40);
        assert_eq!(h.count_in(0, lim - 1), 3);
        assert_eq!(h.count_in(lim, lim + 5), 2);
        assert_eq!(h.count_at_least(lim), 3);
        assert_eq!(h.count_at_least(0), 6);
        assert_eq!(h.count_in(5, 4), 0);
        // Iteration crosses the dense/sparse boundary in value order.
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(
            pairs,
            vec![
                (0, 1),
                (1, 1),
                (lim - 1, 1),
                (lim, 1),
                (lim + 5, 1),
                (1 << 40, 1)
            ]
        );
    }

    #[test]
    fn histogram_percentiles_are_exact_nearest_rank() {
        assert_eq!(Histogram::new().percentile(50.0), None);
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(50.0), Some(50));
        assert_eq!(h.percentile(99.0), Some(99));
        assert_eq!(h.percentile(100.0), Some(100));
        // Out-of-range values clamp instead of panicking.
        assert_eq!(h.percentile(-5.0), Some(1));
        assert_eq!(h.percentile(500.0), Some(100));
        // Every answer is a recorded value, even across the sparse split.
        let mut skewed = Histogram::new();
        skewed.record_weighted(2, 99);
        skewed.record(1 << 30);
        assert_eq!(skewed.percentile(50.0), Some(2));
        assert_eq!(skewed.percentile(100.0), Some(1 << 30));
    }

    #[test]
    fn histogram_equality_is_logical() {
        // Same logical contents recorded in different orders compare equal,
        // and the Debug form (used by determinism tests) matches too.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3, 2000, 3, 7] {
            a.record(v);
        }
        for v in [7, 3, 3, 2000] {
            b.record(v);
        }
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        b.record(9);
        assert_ne!(a, b);
    }

    #[test]
    fn running_stats() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        for v in [2.0, 4.0, 6.0, 8.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(8.0));
    }

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[]), None);
        assert!((mean(&[1.0, 2.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        assert!((normalized(3.0, 4.0) - 0.75).abs() < 1e-12);
        assert_eq!(normalized(0.0, 0.0), 1.0);
    }
}
