//! Strongly-typed identifiers and enums used across the simulator.
//!
//! Newtypes are used for core identifiers, byte addresses, cache-line
//! addresses and cycle counts so that the different integer domains cannot be
//! confused (see C-NEWTYPE in the Rust API guidelines).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Identifier of a core / tile in the multicore.
///
/// Cores are numbered `0..num_cores` in row-major order of the 2-D mesh
/// (core `i` sits at mesh coordinates `(i % width, i / width)`).
///
/// # Example
///
/// ```
/// use lad_common::types::CoreId;
/// let c = CoreId::new(9);
/// assert_eq!(c.index(), 9);
/// assert_eq!(format!("{c}"), "core9");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 16 bits (the paper's design targets
    /// up to 1024 cores; 65 536 is a comfortable margin).
    pub fn new(index: usize) -> Self {
        assert!(
            index <= u16::MAX as usize,
            "core index {index} out of range"
        );
        CoreId(index as u16)
    }

    /// Returns the numeric index of this core.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(value: u16) -> Self {
        CoreId(value)
    }
}

/// A byte address in the simulated 48-bit physical address space.
///
/// # Example
///
/// ```
/// use lad_common::types::Address;
/// let a = Address::new(0x1040);
/// assert_eq!(a.value(), 0x1040);
/// assert_eq!(a.line(64).index(), 0x41);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte address.
    pub fn new(value: u64) -> Self {
        Address(value)
    }

    /// Returns the raw byte address.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address, for a given line size
    /// in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn line(self, line_bytes: usize) -> CacheLine {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        CacheLine(self.0 >> line_bytes.trailing_zeros())
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Address {
    fn from(value: u64) -> Self {
        Address(value)
    }
}

/// A cache-line address (byte address divided by the line size).
///
/// All coherence, placement and replication decisions in the system operate
/// at this granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheLine(u64);

impl CacheLine {
    /// Creates a cache line from its index (byte address / line size).
    pub fn from_index(index: u64) -> Self {
        CacheLine(index)
    }

    /// Returns the line index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this line.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn byte_address(self, line_bytes: usize) -> u64 {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        self.0 << line_bytes.trailing_zeros()
    }

    /// Returns the page containing this line for a given page size.
    ///
    /// Used by the Reactive-NUCA baseline, whose private/shared
    /// classification operates at page granularity.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is smaller than `line_bytes` or either is not a
    /// power of two.
    pub fn page(self, line_bytes: usize, page_bytes: usize) -> u64 {
        assert!(line_bytes.is_power_of_two() && page_bytes.is_power_of_two());
        assert!(page_bytes >= line_bytes, "page must be at least one line");
        let lines_per_page = (page_bytes / line_bytes) as u64;
        self.0 / lines_per_page
    }
}

impl fmt::Display for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:0x{:x}", self.0)
    }
}

/// A simulation time stamp or duration, measured in core clock cycles.
///
/// `Cycle` supports saturating-free addition (simulations never get close to
/// `u64::MAX`) and subtraction that panics on underflow in debug builds.
///
/// # Example
///
/// ```
/// use lad_common::types::Cycle;
/// let t = Cycle::new(10) + Cycle::new(5);
/// assert_eq!(t.value(), 15);
/// assert_eq!((t - Cycle::new(3)).value(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero timestamp.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count.
    pub fn new(value: u64) -> Self {
        Cycle(value)
    }

    /// Returns the raw cycle count.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns the maximum of two timestamps.
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the duration from `earlier` to `self`, saturating at zero if
    /// `earlier` is in the future.
    pub fn since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl From<u64> for Cycle {
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

/// The kind of memory operation issued by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Data load.
    Read,
    /// Data store (requires exclusive ownership).
    Write,
    /// Instruction fetch (read-only, served by the L1-I cache).
    InstructionFetch,
}

impl MemOp {
    /// Returns `true` for operations that require exclusive (writable)
    /// ownership of the cache line.
    pub fn is_write(self) -> bool {
        matches!(self, MemOp::Write)
    }

    /// Returns `true` for instruction fetches.
    pub fn is_instruction(self) -> bool {
        matches!(self, MemOp::InstructionFetch)
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemOp::Read => "read",
            MemOp::Write => "write",
            MemOp::InstructionFetch => "ifetch",
        };
        f.write_str(s)
    }
}

/// Classification of a cache line by how it is shared, following Figure 1 of
/// the paper.
///
/// The classification is a property of the workload (and is used by the
/// synthetic trace generators and by the characterization experiment in
/// Figure 1); the locality-aware protocol itself never looks at it — its
/// replication decisions depend purely on observed reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataClass {
    /// Lines accessed by exactly one core.
    Private,
    /// Instruction lines (read-only, fetched through the L1-I cache).
    Instruction,
    /// Data lines read by several cores but never written after
    /// initialization.
    SharedReadOnly,
    /// Data lines read and written by several cores.
    SharedReadWrite,
}

impl DataClass {
    /// All data classes, in the order used by the Figure 1 plot.
    pub const ALL: [DataClass; 4] = [
        DataClass::Private,
        DataClass::Instruction,
        DataClass::SharedReadOnly,
        DataClass::SharedReadWrite,
    ];

    /// Short label used in reports (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            DataClass::Private => "Private",
            DataClass::Instruction => "Instruction",
            DataClass::SharedReadOnly => "Shared Read-Only",
            DataClass::SharedReadWrite => "Shared Read-Write",
        }
    }
}

impl fmt::Display for DataClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single memory reference issued by a core, as produced by the workload
/// generators and consumed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// The issuing core.
    pub core: CoreId,
    /// The referenced byte address.
    pub address: Address,
    /// The operation kind.
    pub op: MemOp,
    /// Number of compute (non-memory) cycles the core spends before issuing
    /// this access.  Models the "Compute" component of the paper's
    /// completion-time breakdown.
    pub compute_cycles: u32,
    /// Data class of the referenced line (workload ground truth, used for
    /// characterization only).
    pub class: DataClass,
}

impl MemoryAccess {
    /// Convenience constructor for a data read with no preceding compute.
    pub fn read(core: CoreId, address: Address) -> Self {
        MemoryAccess {
            core,
            address,
            op: MemOp::Read,
            compute_cycles: 0,
            class: DataClass::Private,
        }
    }

    /// Convenience constructor for a data write with no preceding compute.
    pub fn write(core: CoreId, address: Address) -> Self {
        MemoryAccess {
            core,
            address,
            op: MemOp::Write,
            compute_cycles: 0,
            class: DataClass::Private,
        }
    }

    /// Sets the workload data class (builder style).
    pub fn with_class(mut self, class: DataClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the compute cycles preceding the access (builder style).
    pub fn with_compute(mut self, cycles: u32) -> Self {
        self.compute_cycles = cycles;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_roundtrip() {
        for i in [0usize, 1, 63, 1023] {
            assert_eq!(CoreId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_id_rejects_huge_index() {
        let _ = CoreId::new(usize::MAX);
    }

    #[test]
    fn core_id_display() {
        assert_eq!(CoreId::new(7).to_string(), "core7");
    }

    #[test]
    fn address_to_line() {
        let a = Address::new(0x1234);
        assert_eq!(a.line(64).index(), 0x48);
        assert_eq!(a.line(64).byte_address(64), 0x1200);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn address_line_requires_power_of_two() {
        let _ = Address::new(100).line(48);
    }

    #[test]
    fn line_page_mapping() {
        // 64-byte lines, 4 KB pages -> 64 lines per page.
        let line = CacheLine::from_index(130);
        assert_eq!(line.page(64, 4096), 2);
        let line = CacheLine::from_index(63);
        assert_eq!(line.page(64, 4096), 0);
    }

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle::new(100);
        let b = Cycle::new(40);
        assert_eq!((a + b).value(), 140);
        assert_eq!((a - b).value(), 60);
        assert_eq!(a.max(b), a);
        assert_eq!(b.since(a), Cycle::ZERO);
        assert_eq!(a.since(b).value(), 60);
        let mut c = a;
        c += b;
        assert_eq!(c.value(), 140);
        assert_eq!((a + 5u64).value(), 105);
    }

    #[test]
    fn memop_predicates() {
        assert!(MemOp::Write.is_write());
        assert!(!MemOp::Read.is_write());
        assert!(MemOp::InstructionFetch.is_instruction());
        assert!(!MemOp::Read.is_instruction());
    }

    #[test]
    fn data_class_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            DataClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), DataClass::ALL.len());
    }

    #[test]
    fn memory_access_builders() {
        let a = MemoryAccess::read(CoreId::new(3), Address::new(64))
            .with_class(DataClass::SharedReadOnly)
            .with_compute(12);
        assert_eq!(a.core.index(), 3);
        assert_eq!(a.op, MemOp::Read);
        assert_eq!(a.class, DataClass::SharedReadOnly);
        assert_eq!(a.compute_cycles, 12);
        let w = MemoryAccess::write(CoreId::new(1), Address::new(0));
        assert!(w.op.is_write());
    }
}
