//! A uniform, read-only view of protocol state, and the catalog checks
//! that run over it.
//!
//! Both enforcement layers — the abstract model ([`crate::model`]) and the
//! live timing engine (`lad-sim`, under `debug_assertions`) — implement
//! [`ProtocolView`] and are checked by the *same* [`check_view`] function,
//! so exploration and trace replay enforce identical invariants.
//!
//! A view is organized around coherence *domains*: the slice where a core's
//! requests for a line are served ([`ProtocolView::home_slice`]).  For
//! address-interleaved and data placement this is one domain per line; for
//! R-NUCA's cluster-replicated instruction lines each cluster is its own
//! domain with its own home entry, and the invariants hold per domain.

use std::collections::BTreeMap;

use lad_coherence::mesi::MesiState;
use lad_common::types::{CacheLine, CoreId};
use lad_replication::classifier::TrackedCore;
use lad_replication::entry::{HomeEntry, ReplicaEntry};

use crate::catalog::{Invariant, Violation};

/// An owned summary of one home entry (directory + classifier), decoupled
/// from the borrow of the cache that holds it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomeSummary {
    /// `true` if no core holds a copy.
    pub uncached: bool,
    /// `true` if exactly one core owns the line in M/E.
    pub exclusive: bool,
    /// The exclusive owner, if any.
    pub owner: Option<CoreId>,
    /// The directory's exact sharer count.
    pub sharer_count: usize,
    /// The tracked ACKwise pointers.
    pub tracked: Vec<CoreId>,
    /// `true` if the sharer list overflowed into global (broadcast) mode.
    pub global: bool,
    /// The hardware pointer budget.
    pub max_pointers: usize,
    /// The classifier's per-core state, in tracking order.
    pub classifier: Vec<TrackedCore>,
    /// The classifier capacity (`None` = Complete).
    pub classifier_capacity: Option<usize>,
    /// The replication threshold the classifier saturates at.
    pub rt: u32,
    /// The entry-local invariant check performed by `lad-coherence` itself,
    /// surfaced so a drift between this summary and the real entry cannot
    /// hide a violation.
    pub local_error: Option<(&'static str, String)>,
}

impl HomeSummary {
    /// Summarizes a live [`HomeEntry`].
    pub fn from_entry(entry: &HomeEntry) -> Self {
        let directory = &entry.directory;
        let sharers = directory.sharers();
        HomeSummary {
            uncached: directory.is_uncached(),
            exclusive: directory.has_exclusive_owner(),
            owner: directory.owner(),
            sharer_count: directory.sharer_count(),
            tracked: sharers.tracked().to_vec(),
            global: sharers.is_global(),
            max_pointers: sharers.max_pointers(),
            classifier: entry.classifier.snapshot(),
            classifier_capacity: entry.classifier.capacity(),
            rt: entry.classifier.replication_threshold(),
            local_error: directory.local_invariant_error(),
        }
    }
}

/// Read-only access to the protocol state of a system (abstract or live).
pub trait ProtocolView {
    /// Number of cores.
    fn num_cores(&self) -> usize;

    /// Every line with any residency anywhere (L1s, replicas, home
    /// entries).
    fn lines(&self) -> Vec<CacheLine>;

    /// The MESI states of `core`'s private L1 copies of `line` (one per L1
    /// cache that holds it; the abstract model has a single unified L1).
    fn l1_states(&self, core: CoreId, line: CacheLine) -> Vec<MesiState>;

    /// The LLC replica `core`'s slice holds for `line`, if any.
    fn replica(&self, core: CoreId, line: CacheLine) -> Option<ReplicaEntry>;

    /// The slice where `core`'s requests for `line` are served.
    fn home_slice(&self, line: CacheLine, core: CoreId) -> CoreId;

    /// The home entry resident at `slice` for `line`, if any.
    fn home_at(&self, line: CacheLine, slice: CoreId) -> Option<HomeSummary>;
}

/// What one core's hierarchy holds of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Holding {
    valid: bool,
    writable: bool,
    dirty: bool,
}

fn holding(view: &dyn ProtocolView, core: CoreId, line: CacheLine) -> Holding {
    let mut h = Holding {
        valid: false,
        writable: false,
        dirty: false,
    };
    for state in view.l1_states(core, line) {
        h.valid |= state.is_valid();
        h.writable |= state.can_write_locally();
        h.dirty |= state.is_dirty();
    }
    if let Some(rep) = view.replica(core, line) {
        if rep.state.is_valid() {
            h.valid = true;
            h.writable |= rep.state.can_write_locally();
            h.dirty |= rep.state.is_dirty() || rep.dirty;
        }
    }
    h
}

/// Runs every catalog invariant over the view and collects the violations.
///
/// An empty result means the state satisfies the whole catalog.
pub fn check_view(view: &dyn ProtocolView) -> Vec<Violation> {
    let mut violations = Vec::new();
    for line in view.lines() {
        check_line(view, line, &mut violations);
    }
    violations
}

fn check_line(view: &dyn ProtocolView, line: CacheLine, out: &mut Vec<Violation>) {
    // Group the cores into coherence domains by the slice that serves them.
    let mut domains: BTreeMap<CoreId, Vec<CoreId>> = BTreeMap::new();
    for c in 0..view.num_cores() {
        let core = CoreId::new(c);
        domains
            .entry(view.home_slice(line, core))
            .or_default()
            .push(core);
    }

    for (slice, cores) in &domains {
        let summary = view.home_at(line, *slice);
        check_domain(view, line, *slice, cores, summary.as_ref(), out);
    }
}

fn check_domain(
    view: &dyn ProtocolView,
    line: CacheLine,
    slice: CoreId,
    cores: &[CoreId],
    summary: Option<&HomeSummary>,
    out: &mut Vec<Violation>,
) {
    let idx = line.index();
    let holdings: Vec<(CoreId, Holding)> =
        cores.iter().map(|&c| (c, holding(view, c, line))).collect();
    let holders: Vec<CoreId> = holdings
        .iter()
        .filter(|(_, h)| h.valid)
        .map(|(c, _)| *c)
        .collect();
    let writers: Vec<CoreId> = holdings
        .iter()
        .filter(|(_, h)| h.writable || h.dirty)
        .map(|(c, _)| *c)
        .collect();

    // --- swmr: at most one writer, and a writer excludes all other holders.
    if writers.len() > 1 {
        out.push(Violation::new(
            Invariant::SingleWriterMultipleReader,
            format!("line {idx}: multiple writable/dirty holders {writers:?}"),
        ));
    } else if let Some(&writer) = writers.first() {
        if holders.iter().any(|&h| h != writer) {
            out.push(Violation::new(
                Invariant::SingleWriterMultipleReader,
                format!(
                    "line {idx}: core {writer:?} holds a writable/dirty copy while \
                     {holders:?} also hold valid copies"
                ),
            ));
        }
        match summary {
            Some(s) if s.exclusive && s.owner == Some(writer) => {}
            _ => out.push(Violation::new(
                Invariant::SingleWriterMultipleReader,
                format!(
                    "line {idx}: core {writer:?} holds a writable/dirty copy but the \
                     home at {slice:?} does not record it as exclusive owner"
                ),
            )),
        }
    }

    let Some(s) = summary else {
        // --- directory-inclusion: copies cannot outlive their home entry
        // (the LLC is inclusive).
        if !holders.is_empty() {
            out.push(Violation::new(
                Invariant::DirectoryInclusion,
                format!("line {idx}: holders {holders:?} but no home entry at {slice:?}"),
            ));
        }
        for (c, _) in holdings.iter().filter(|(_, h)| h.valid) {
            if view.replica(*c, line).is_some() {
                out.push(Violation::new(
                    Invariant::ReplicaConsistentWithHome,
                    format!("line {idx}: core {c:?} holds a replica but no home entry exists"),
                ));
            }
        }
        return;
    };

    // --- the entry-local check `lad-coherence` performs on its own state.
    if let Some((name, details)) = &s.local_error {
        let invariant = Invariant::from_name(name).unwrap_or(Invariant::HomeStateConsistent);
        out.push(Violation::new(
            invariant,
            format!("line {idx} at {slice:?}: {details}"),
        ));
    }

    // --- ackwise-pointer-capacity, re-derived from the summary fields so a
    // hand-built (or drifted) summary is checked too.
    if s.tracked.len() > s.max_pointers {
        out.push(Violation::new(
            Invariant::AckwisePointerCapacity,
            format!(
                "line {idx} at {slice:?}: {} pointers tracked, budget {}",
                s.tracked.len(),
                s.max_pointers
            ),
        ));
    }
    if !s.global && s.sharer_count != s.tracked.len() {
        out.push(Violation::new(
            Invariant::AckwisePointerCapacity,
            format!(
                "line {idx} at {slice:?}: exact mode count {} != tracked {}",
                s.sharer_count,
                s.tracked.len()
            ),
        ));
    }
    if s.global && s.sharer_count <= s.tracked.len() {
        out.push(Violation::new(
            Invariant::AckwisePointerCapacity,
            format!(
                "line {idx} at {slice:?}: global mode count {} fits tracked {}",
                s.sharer_count,
                s.tracked.len()
            ),
        ));
    }

    // --- home-state-consistent, from the summary fields.
    let shape_error = if s.uncached {
        (s.sharer_count != 0 || s.owner.is_some())
            .then(|| format!("Uncached with count {} owner {:?}", s.sharer_count, s.owner))
    } else if s.exclusive {
        match s.owner {
            None => Some("Exclusive with no owner".to_string()),
            Some(owner) => (s.sharer_count != 1 || !s.tracked.contains(&owner))
                .then(|| format!("Exclusive owner {owner:?} with count {}", s.sharer_count)),
        }
    } else {
        (s.sharer_count == 0 || s.owner.is_some())
            .then(|| format!("Shared with count {} owner {:?}", s.sharer_count, s.owner))
    };
    if let Some(details) = shape_error {
        out.push(Violation::new(
            Invariant::HomeStateConsistent,
            format!("line {idx} at {slice:?}: {details}"),
        ));
    }

    // --- directory-inclusion: the exact count equals the holder count, and
    // outside global mode the tracked set IS the holder set.
    if s.sharer_count != holders.len() {
        out.push(Violation::new(
            Invariant::DirectoryInclusion,
            format!(
                "line {idx} at {slice:?}: directory counts {} sharers but {} cores hold \
                 copies ({holders:?})",
                s.sharer_count,
                holders.len()
            ),
        ));
    }
    if !s.global {
        for t in &s.tracked {
            if !holders.contains(t) {
                out.push(Violation::new(
                    Invariant::DirectoryInclusion,
                    format!("line {idx} at {slice:?}: tracked core {t:?} holds no copy"),
                ));
            }
        }
        for h in &holders {
            if !s.tracked.contains(h) {
                out.push(Violation::new(
                    Invariant::DirectoryInclusion,
                    format!("line {idx} at {slice:?}: holder {h:?} is not tracked"),
                ));
            }
        }
    } else {
        // Global mode: pointers are best-effort, but a tracked core that
        // holds nothing would send no eviction acknowledgement and the
        // count would never converge.
        for t in &s.tracked {
            if !holders.contains(t) {
                out.push(Violation::new(
                    Invariant::DirectoryInclusion,
                    format!("line {idx} at {slice:?}: global-mode pointer {t:?} holds no copy"),
                ));
            }
        }
    }
    if let Some(owner) = s.owner {
        if !holders.contains(&owner) {
            out.push(Violation::new(
                Invariant::DirectoryInclusion,
                format!("line {idx} at {slice:?}: exclusive owner {owner:?} holds no copy"),
            ));
        }
    }

    // --- replica-consistent-with-home.
    for &core in cores {
        let Some(rep) = view.replica(core, line) else {
            continue;
        };
        if !rep.state.is_valid() {
            continue;
        }
        if (rep.state.can_write_locally() || rep.dirty) && !(s.exclusive && s.owner == Some(core)) {
            out.push(Violation::new(
                Invariant::ReplicaConsistentWithHome,
                format!(
                    "line {idx}: core {core:?} holds a {}{} replica but the home at \
                     {slice:?} is not Exclusive with it as owner",
                    rep.state,
                    if rep.dirty { " (dirty)" } else { "" }
                ),
            ));
        }
        if !s.global && !s.tracked.contains(&core) {
            out.push(Violation::new(
                Invariant::ReplicaConsistentWithHome,
                format!(
                    "line {idx}: core {core:?} holds a replica untracked by the home at \
                     {slice:?}"
                ),
            ));
        }
        // --- classifier-counter-bound: replica reuse saturates at RT.
        if rep.reuse.value() > s.rt {
            out.push(Violation::new(
                Invariant::ClassifierCounterBound,
                format!(
                    "line {idx}: core {core:?} replica reuse {} exceeds RT {}",
                    rep.reuse.value(),
                    s.rt
                ),
            ));
        }
    }

    // --- classifier-counter-bound.
    if let Some(k) = s.classifier_capacity {
        if s.classifier.len() > k {
            out.push(Violation::new(
                Invariant::ClassifierCounterBound,
                format!(
                    "line {idx} at {slice:?}: classifier tracks {} cores, capacity {k}",
                    s.classifier.len()
                ),
            ));
        }
    }
    for entry in &s.classifier {
        if entry.home_reuse > s.rt {
            out.push(Violation::new(
                Invariant::ClassifierCounterBound,
                format!(
                    "line {idx} at {slice:?}: core {:?} home reuse {} exceeds RT {}",
                    entry.core, entry.home_reuse, s.rt
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_replication::classifier::ClassifierKind;

    /// A hand-built single-line view for exercising the checks.
    struct FakeView {
        cores: usize,
        l1: Vec<MesiState>,
        replica: Vec<Option<ReplicaEntry>>,
        home: Option<HomeSummary>,
        home_slice: CoreId,
    }

    impl FakeView {
        fn new(cores: usize) -> Self {
            FakeView {
                cores,
                l1: vec![MesiState::Invalid; cores],
                replica: vec![None; cores],
                home: None,
                home_slice: CoreId::new(0),
            }
        }

        fn consistent_summary() -> HomeSummary {
            HomeSummary {
                uncached: true,
                exclusive: false,
                owner: None,
                sharer_count: 0,
                tracked: Vec::new(),
                global: false,
                max_pointers: 2,
                classifier: Vec::new(),
                classifier_capacity: Some(3),
                rt: 3,
                local_error: None,
            }
        }
    }

    impl ProtocolView for FakeView {
        fn num_cores(&self) -> usize {
            self.cores
        }
        fn lines(&self) -> Vec<CacheLine> {
            vec![CacheLine::from_index(0)]
        }
        fn l1_states(&self, core: CoreId, _line: CacheLine) -> Vec<MesiState> {
            vec![self.l1[core.index()]]
        }
        fn replica(&self, core: CoreId, _line: CacheLine) -> Option<ReplicaEntry> {
            self.replica[core.index()]
        }
        fn home_slice(&self, _line: CacheLine, _core: CoreId) -> CoreId {
            self.home_slice
        }
        fn home_at(&self, _line: CacheLine, slice: CoreId) -> Option<HomeSummary> {
            if slice == self.home_slice {
                self.home.clone()
            } else {
                None
            }
        }
    }

    fn kinds(violations: &[Violation]) -> Vec<Invariant> {
        violations.iter().map(|v| v.invariant).collect()
    }

    #[test]
    fn empty_system_is_clean() {
        let view = FakeView::new(4);
        assert!(check_view(&view).is_empty());
    }

    #[test]
    fn consistent_shared_state_is_clean() {
        let mut view = FakeView::new(2);
        view.l1[0] = MesiState::Shared;
        view.l1[1] = MesiState::Shared;
        let mut s = FakeView::consistent_summary();
        s.uncached = false;
        s.sharer_count = 2;
        s.tracked = vec![CoreId::new(0), CoreId::new(1)];
        view.home = Some(s);
        assert!(check_view(&view).is_empty());
    }

    #[test]
    fn two_writers_violate_swmr() {
        let mut view = FakeView::new(2);
        view.l1[0] = MesiState::Modified;
        view.l1[1] = MesiState::Exclusive;
        let mut s = FakeView::consistent_summary();
        s.uncached = false;
        s.exclusive = true;
        s.owner = Some(CoreId::new(0));
        s.sharer_count = 2;
        s.tracked = vec![CoreId::new(0), CoreId::new(1)];
        view.home = Some(s);
        assert!(kinds(&check_view(&view)).contains(&Invariant::SingleWriterMultipleReader));
    }

    #[test]
    fn writer_plus_reader_violate_swmr() {
        let mut view = FakeView::new(2);
        view.l1[0] = MesiState::Modified;
        view.l1[1] = MesiState::Shared;
        let mut s = FakeView::consistent_summary();
        s.uncached = false;
        s.exclusive = true;
        s.owner = Some(CoreId::new(0));
        s.sharer_count = 2;
        s.tracked = vec![CoreId::new(0), CoreId::new(1)];
        view.home = Some(s);
        assert!(kinds(&check_view(&view)).contains(&Invariant::SingleWriterMultipleReader));
    }

    #[test]
    fn same_core_l1_exclusive_with_shared_replica_is_legal() {
        // The engine legitimately creates a Shared replica alongside an
        // Exclusive L1 grant for the same core (read fills), and a local
        // write then upgrades the L1 to M while the replica stays S.
        let mut view = FakeView::new(2);
        view.home_slice = CoreId::new(1);
        view.l1[0] = MesiState::Modified;
        view.replica[0] = Some(ReplicaEntry::new(MesiState::Shared, 3));
        let mut s = FakeView::consistent_summary();
        s.uncached = false;
        s.exclusive = true;
        s.owner = Some(CoreId::new(0));
        s.sharer_count = 1;
        s.tracked = vec![CoreId::new(0)];
        view.home = Some(s);
        let violations = check_view(&view);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn holder_without_home_entry_violates_inclusion() {
        let mut view = FakeView::new(2);
        view.l1[1] = MesiState::Shared;
        assert!(kinds(&check_view(&view)).contains(&Invariant::DirectoryInclusion));
    }

    #[test]
    fn untracked_holder_and_phantom_sharer_violate_inclusion() {
        let mut view = FakeView::new(2);
        view.l1[0] = MesiState::Shared;
        let mut s = FakeView::consistent_summary();
        s.uncached = false;
        s.sharer_count = 1;
        s.tracked = vec![CoreId::new(1)]; // tracks the wrong core
        view.home = Some(s);
        let violations = check_view(&view);
        // Tracked-but-not-holding and holding-but-not-tracked both fire.
        assert!(
            violations
                .iter()
                .filter(|v| v.invariant == Invariant::DirectoryInclusion)
                .count()
                >= 2,
            "{violations:?}"
        );
    }

    #[test]
    fn replica_without_home_entry_is_flagged() {
        let mut view = FakeView::new(2);
        view.home_slice = CoreId::new(1);
        view.replica[0] = Some(ReplicaEntry::new(MesiState::Shared, 3));
        assert!(kinds(&check_view(&view)).contains(&Invariant::ReplicaConsistentWithHome));
    }

    #[test]
    fn modified_replica_needs_exclusive_home() {
        let mut view = FakeView::new(2);
        view.home_slice = CoreId::new(1);
        view.replica[0] = Some(ReplicaEntry::new(MesiState::Modified, 3));
        let mut s = FakeView::consistent_summary();
        s.uncached = false;
        s.sharer_count = 1;
        s.tracked = vec![CoreId::new(0)];
        view.home = Some(s);
        assert!(kinds(&check_view(&view)).contains(&Invariant::ReplicaConsistentWithHome));
    }

    #[test]
    fn ackwise_capacity_checks_fire_on_bad_summaries() {
        let mut view = FakeView::new(3);
        view.l1[0] = MesiState::Shared;
        view.l1[1] = MesiState::Shared;
        view.l1[2] = MesiState::Shared;
        let mut s = FakeView::consistent_summary();
        s.uncached = false;
        s.max_pointers = 2;
        s.sharer_count = 3;
        s.tracked = vec![CoreId::new(0), CoreId::new(1), CoreId::new(2)];
        s.global = false;
        view.home = Some(s);
        assert!(kinds(&check_view(&view)).contains(&Invariant::AckwisePointerCapacity));
    }

    #[test]
    fn home_state_shape_checks_fire() {
        let mut view = FakeView::new(2);
        let mut s = FakeView::consistent_summary();
        s.uncached = true;
        s.owner = Some(CoreId::new(0)); // Uncached with an owner
        view.home = Some(s);
        let violations = check_view(&view);
        assert!(kinds(&violations).contains(&Invariant::HomeStateConsistent));
        // The owner also holds no copy.
        assert!(kinds(&violations).contains(&Invariant::DirectoryInclusion));
    }

    #[test]
    fn classifier_bounds_fire() {
        let mut view = FakeView::new(2);
        let mut s = FakeView::consistent_summary();
        s.classifier_capacity = Some(1);
        s.rt = 3;
        s.classifier = vec![
            TrackedCore {
                core: CoreId::new(0),
                mode: lad_replication::classifier::ReplicationMode::NonReplica,
                home_reuse: 9,
                active: true,
            },
            TrackedCore {
                core: CoreId::new(1),
                mode: lad_replication::classifier::ReplicationMode::NonReplica,
                home_reuse: 0,
                active: false,
            },
        ];
        view.home = Some(s);
        let violations = check_view(&view);
        assert_eq!(
            kinds(&violations)
                .iter()
                .filter(|i| **i == Invariant::ClassifierCounterBound)
                .count(),
            2,
            "capacity overflow and counter overflow both fire: {violations:?}"
        );
    }

    #[test]
    fn local_error_from_the_real_entry_is_surfaced() {
        let entry = HomeEntry::new(2, ClassifierKind::Limited(3), 3);
        let summary = HomeSummary::from_entry(&entry);
        assert_eq!(summary.local_error, None);
        assert!(summary.uncached);
        assert_eq!(summary.max_pointers, 2);
        assert_eq!(summary.rt, 3);
    }
}
