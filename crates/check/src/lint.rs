//! Source lints for the workspace's library crates.
//!
//! Two heuristic, text-level rules backed by project conventions:
//!
//! * **`hashmap`** — library code must not use `std::collections::HashMap`.
//!   Its iteration order is randomized per process, so a `HashMap` that
//!   feeds a `SimulationReport`, a JSON serialization or any ordered output
//!   makes runs byte-unstable (the repo's reports are diffed byte-for-byte
//!   in tests and CI).  `BTreeMap` is the default; pure point-lookup state
//!   may keep `HashMap` behind an explicit annotation.
//! * **`panic`** — library code must not call `.unwrap()` / `.expect("…")`:
//!   user-supplied input (configs, traces, CLI values) must flow through
//!   the typed error trees instead.  Deliberate invariant checks are
//!   annotated, or phrased as named protocol-invariant panics.
//!
//! A file opts out of a rule with a comment anywhere in it:
//! `// lad-lint: allow(hashmap)` or `// lad-lint: allow(panic)` — the
//! annotation is file-scoped and should sit next to the justification.
//! Test modules (`#[cfg(test)] mod …` to end of file), `src/bin/`
//! directories, `tests/` trees and the vendored `*-shim` crates are out of
//! scope.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules.
pub const RULES: [&str; 2] = ["hashmap", "panic"];

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// File the finding is in (workspace-relative when produced by
    /// [`lint_workspace`]).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (`"hashmap"` or `"panic"`).
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub text: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.text
        )
    }
}

fn allow_marker(rule: &str) -> String {
    format!("lad-lint: allow({rule})")
}

/// The line index (0-based) where the file's trailing `#[cfg(test)] mod`
/// block starts, if any.  By repo convention test modules sit at the end of
/// the file, so everything from the attribute on is out of scope.
fn test_module_start(lines: &[&str]) -> Option<usize> {
    for (i, line) in lines.iter().enumerate() {
        if line.trim() == "#[cfg(test)]" {
            let opens_module = lines
                .iter()
                .skip(i + 1)
                .map(|l| l.trim())
                .find(|l| !l.is_empty())
                .is_some_and(|l| l.starts_with("mod ") || l.starts_with("pub mod "));
            if opens_module {
                return Some(i);
            }
        }
    }
    None
}

/// Lints one library source file's content.  Pure (testable without a
/// filesystem); `file` is only used to label the findings.
pub fn lint_source(file: &Path, content: &str) -> Vec<LintFinding> {
    let lines: Vec<&str> = content.lines().collect();
    let end = test_module_start(&lines).unwrap_or(lines.len());
    let allow_hashmap = content.contains(&allow_marker("hashmap"));
    let allow_panic = content.contains(&allow_marker("panic"));

    let mut findings = Vec::new();
    for (i, line) in lines.iter().take(end).enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with("//") {
            continue;
        }
        if !allow_hashmap && trimmed.contains("HashMap") {
            findings.push(LintFinding {
                file: file.to_path_buf(),
                line: i + 1,
                rule: "hashmap",
                text: trimmed.to_string(),
            });
        }
        if !allow_panic && (trimmed.contains(".unwrap()") || trimmed.contains(".expect(\"")) {
            findings.push(LintFinding {
                file: file.to_path_buf(),
                line: i + 1,
                rule: "panic",
                text: trimmed.to_string(),
            });
        }
    }
    findings
}

fn is_library_source(path: &Path) -> bool {
    if path.extension().and_then(|e| e.to_str()) != Some("rs") {
        return false;
    }
    let parts: Vec<&str> = path
        .iter()
        .filter_map(|component| component.to_str())
        .collect();
    parts.contains(&"src") && !parts.contains(&"bin") && !parts.contains(&"tests")
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if name.ends_with("-shim") || name == "bin" || name == "tests" || name == "target" {
                continue;
            }
            collect_sources(&path, out)?;
        } else if is_library_source(&path) {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every library source under `<root>/crates`.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<LintFinding>> {
    let crates = root.join("crates");
    let mut sources = Vec::new();
    collect_sources(&crates, &mut sources)?;
    let mut findings = Vec::new();
    for path in sources {
        let content = fs::read_to_string(&path)?;
        let label = path.strip_prefix(root).unwrap_or(&path);
        findings.extend(lint_source(label, &content));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(content: &str) -> Vec<LintFinding> {
        lint_source(Path::new("lib.rs"), content)
    }

    #[test]
    fn hashmap_use_is_flagged() {
        let findings = lint("use std::collections::HashMap;\nfn f() {}\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "hashmap");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn allow_annotation_silences_a_rule_file_wide() {
        let findings = lint(
            "// iteration never ordered here\n// lad-lint: allow(hashmap)\nuse std::collections::HashMap;\n",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn unwrap_and_expect_are_flagged_but_not_lookalikes() {
        let content = "\
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"present\");
    let c = x.unwrap_or(0);
    let d = x.unwrap_or_else(|| 0);
    self.expect(b'{');
    a + b + c + d
}
";
        let findings = lint(content);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3]);
        assert!(findings.iter().all(|f| f.rule == "panic"));
    }

    #[test]
    fn trailing_test_module_is_out_of_scope() {
        let content = "\
pub fn f() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
";
        assert!(lint(content).is_empty());
    }

    #[test]
    fn comment_lines_are_skipped() {
        let findings = lint("// HashMap would be wrong here\n/// so would .unwrap()\nfn f() {}\n");
        assert!(findings.is_empty());
    }

    #[test]
    fn findings_render_with_location_and_rule() {
        let findings = lint("use std::collections::HashMap;\n");
        assert_eq!(
            findings[0].to_string(),
            "lib.rs:1: [hashmap] use std::collections::HashMap;"
        );
    }

    #[test]
    fn bin_and_test_paths_are_not_library_sources() {
        assert!(is_library_source(Path::new("crates/sim/src/engine.rs")));
        assert!(!is_library_source(Path::new(
            "crates/check/src/bin/lad_check.rs"
        )));
        assert!(!is_library_source(Path::new("crates/sim/tests/smoke.rs")));
        assert!(!is_library_source(Path::new("crates/sim/src/engine.txt")));
    }
}
