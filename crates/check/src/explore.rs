//! Exhaustive breadth-first exploration of the model's reachable states.
//!
//! Every reachable state (for a small configuration) is checked against the
//! full invariant catalog via [`check_view`]; because the search is
//! breadth-first, the event path attached to a violation is a *shortest*
//! counterexample trace.

// The visited set is pure lookup state that never feeds a report or JSON
// serialization, so iteration-order instability is harmless here.
// lad-lint: allow(hashmap)
use std::collections::HashMap;

use crate::catalog::Violation;
use crate::model::{Event, Model};
use crate::view::check_view;

/// Knobs for one exploration run.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Stop at the first violating state instead of exploring on.
    pub stop_on_violation: bool,
    /// Hard cap on the number of distinct states visited (a safety net for
    /// misconfigured large models, not a limit any small config reaches).
    pub max_states: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            stop_on_violation: false,
            max_states: 2_000_000,
        }
    }
}

/// A catalog violation together with the shortest event path that reaches
/// the violating state from the initial (all-invalid) state.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// The violated invariants in the reached state.
    pub violations: Vec<Violation>,
    /// The events leading from the initial state to the violating state.
    pub trace: Vec<Event>,
}

impl FoundViolation {
    /// Renders the counterexample as a numbered event list followed by the
    /// violations.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("counterexample trace:\n");
        for (i, event) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {}. {event}\n", i + 1));
        }
        for violation in &self.violations {
            out.push_str(&format!("  => {violation}\n"));
        }
        out
    }
}

/// The result of an exploration.
#[derive(Debug)]
pub struct Exploration {
    /// Number of distinct states visited (including the initial state).
    pub states: usize,
    /// Number of transitions applied.
    pub transitions: usize,
    /// `true` if the run stopped at [`ExploreOptions::max_states`] before
    /// exhausting the reachable set.
    pub truncated: bool,
    /// Every violating state found (first occurrence per state; shortest
    /// trace each).
    pub violations: Vec<FoundViolation>,
}

impl Exploration {
    /// `true` when the whole reachable set satisfied the catalog.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

struct Node {
    parent: Option<(usize, Event)>,
}

fn trace_to(nodes: &[Node], mut index: usize) -> Vec<Event> {
    let mut trace = Vec::new();
    while let Some((parent, event)) = nodes[index].parent {
        trace.push(event);
        index = parent;
    }
    trace.reverse();
    trace
}

/// Explores every state of `model` reachable from the initial state.
pub fn explore(model: &Model, options: ExploreOptions) -> Exploration {
    let initial = model.initial();
    let mut nodes = vec![Node { parent: None }];
    let mut states = vec![initial.clone()];
    let mut seen: HashMap<Vec<u8>, usize> = HashMap::new();
    seen.insert(model.encode(&initial), 0);

    let mut transitions = 0usize;
    let mut truncated = false;
    let mut violations = Vec::new();

    let initial_violations = check_view(&model.view(&initial));
    if !initial_violations.is_empty() {
        violations.push(FoundViolation {
            violations: initial_violations,
            trace: Vec::new(),
        });
        if options.stop_on_violation {
            return Exploration {
                states: 1,
                transitions: 0,
                truncated: false,
                violations,
            };
        }
    }

    let mut frontier = 0usize;
    'bfs: while frontier < states.len() {
        let events = model.enabled_events(&states[frontier]);
        for event in events {
            let mut next = states[frontier].clone();
            model.apply(&mut next, event);
            transitions += 1;
            let key = model.encode(&next);
            if seen.contains_key(&key) {
                continue;
            }
            let index = states.len();
            seen.insert(key, index);
            nodes.push(Node {
                parent: Some((frontier, event)),
            });

            let state_violations = check_view(&model.view(&next));
            states.push(next);
            if !state_violations.is_empty() {
                violations.push(FoundViolation {
                    violations: state_violations,
                    trace: trace_to(&nodes, index),
                });
                if options.stop_on_violation {
                    break 'bfs;
                }
            }
            if states.len() >= options.max_states {
                truncated = true;
                break 'bfs;
            }
        }
        frontier += 1;
    }

    Exploration {
        states: states.len(),
        transitions,
        truncated,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ModelConfig, Mutant};
    use lad_replication::policy::SchemeRegistry;
    use lad_replication::scheme::SchemeId;

    fn explore_scheme(
        id: SchemeId,
        config: ModelConfig,
        mutant: Option<Mutant>,
        options: ExploreOptions,
    ) -> Exploration {
        let registry = SchemeRegistry::builtin();
        let scheme = registry.get(id).expect("builtin scheme");
        explore(&Model::new(scheme, config, mutant), options)
    }

    #[test]
    fn two_core_static_nuca_is_clean_and_small() {
        let exploration = explore_scheme(
            SchemeId::StaticNuca,
            ModelConfig {
                cores: 2,
                lines: 1,
                ackwise_pointers: 2,
            },
            None,
            ExploreOptions::default(),
        );
        assert!(exploration.is_clean(), "{:?}", exploration.violations);
        assert!(exploration.states > 1);
        assert!(exploration.transitions >= exploration.states - 1);
    }

    #[test]
    fn three_core_locality_aware_is_clean_through_global_mode() {
        // Two ACKwise pointers and three cores force global (broadcast)
        // mode, exercising the overflow paths.
        let exploration = explore_scheme(
            SchemeId::Rt(1),
            ModelConfig {
                cores: 3,
                lines: 1,
                ackwise_pointers: 2,
            },
            None,
            ExploreOptions::default(),
        );
        assert!(exploration.is_clean(), "{:?}", exploration.violations);
    }

    #[test]
    fn dropped_invalidation_is_caught_with_a_short_trace() {
        let exploration = explore_scheme(
            SchemeId::StaticNuca,
            ModelConfig::default(),
            Some(Mutant::DropInvalidation),
            ExploreOptions {
                stop_on_violation: true,
                ..ExploreOptions::default()
            },
        );
        assert!(!exploration.violations.is_empty());
        let found = &exploration.violations[0];
        assert!(!found.trace.is_empty(), "a violation needs a cause");
        let rendered = found.render();
        assert!(rendered.contains("counterexample trace"));
        assert!(rendered.contains("=> ["));
    }

    #[test]
    fn max_states_truncates() {
        let exploration = explore_scheme(
            SchemeId::Rt(3),
            ModelConfig::default(),
            None,
            ExploreOptions {
                stop_on_violation: false,
                max_states: 10,
            },
        );
        assert!(exploration.truncated);
        assert!(!exploration.is_clean());
        assert_eq!(exploration.states, 10);
    }
}
