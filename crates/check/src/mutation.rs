//! The mutation harness: seeded protocol bugs the checker must catch.
//!
//! A checker that reports "no violations" is only trustworthy if it can be
//! shown to report violations when they exist.  Each [`SeededMutant`] pairs
//! a [`Mutant`] with the scheme that exposes it and the catalog invariants
//! its exploration must flag; [`run_mutant`] explores the sabotaged model
//! and [`MutantOutcome::verdict`] checks the expectation.

use lad_replication::policy::SchemeRegistry;
use lad_replication::scheme::SchemeId;

use crate::catalog::Invariant;
use crate::explore::{explore, Exploration, ExploreOptions};
use crate::model::{Model, ModelConfig, Mutant};

/// A seeded bug, the scheme that exposes it, and what the checker must say.
#[derive(Debug, Clone, Copy)]
pub struct SeededMutant {
    /// The protocol bug.
    pub mutant: Mutant,
    /// The scheme whose model is sabotaged (the bug's paths must be
    /// reachable under this scheme).
    pub vehicle: SchemeId,
    /// At least one of these invariants must appear in the violations.
    pub expected: &'static [Invariant],
}

/// The full seeded-mutant suite.
///
/// Vehicles are chosen so each mutant's broken path is actually exercised:
/// invalidations and eviction notices flow under every scheme (S-NUCA is
/// the smallest vehicle), while replica downgrades and home-eviction
/// replica leaks need a replicating scheme (RT-1 replicates fastest).
pub const SEEDED_MUTANTS: [SeededMutant; 5] = [
    SeededMutant {
        mutant: Mutant::DropInvalidation,
        vehicle: SchemeId::StaticNuca,
        expected: &[
            Invariant::SingleWriterMultipleReader,
            Invariant::DirectoryInclusion,
        ],
    },
    SeededMutant {
        mutant: Mutant::SkipReplicaDowngrade,
        vehicle: SchemeId::Rt(1),
        expected: &[Invariant::SingleWriterMultipleReader],
    },
    SeededMutant {
        mutant: Mutant::SharerListOverflow,
        vehicle: SchemeId::StaticNuca,
        expected: &[Invariant::DirectoryInclusion],
    },
    SeededMutant {
        mutant: Mutant::DropEvictionNotice,
        vehicle: SchemeId::StaticNuca,
        expected: &[Invariant::DirectoryInclusion],
    },
    SeededMutant {
        mutant: Mutant::LeakReplicaOnHomeEviction,
        vehicle: SchemeId::Rt(1),
        expected: &[Invariant::ReplicaConsistentWithHome],
    },
];

/// The exploration of one seeded mutant.
#[derive(Debug)]
pub struct MutantOutcome {
    /// What was seeded.
    pub seeded: SeededMutant,
    /// The sabotaged model's exploration (stopped at the first violation).
    pub exploration: Exploration,
}

impl MutantOutcome {
    /// `true` if the checker flagged the mutant with one of the expected
    /// invariants.
    pub fn caught(&self) -> bool {
        self.exploration.violations.iter().any(|found| {
            found
                .violations
                .iter()
                .any(|v| self.seeded.expected.contains(&v.invariant))
        })
    }

    /// A one-line verdict plus the counterexample (when caught).
    pub fn verdict(&self) -> String {
        if let Some(found) = self.exploration.violations.first() {
            let status = if self.caught() {
                "CAUGHT"
            } else {
                "MISFLAGGED"
            };
            format!(
                "{status} {} on {} after {} states\n{}",
                self.seeded.mutant,
                self.seeded.vehicle,
                self.exploration.states,
                found.render()
            )
        } else {
            format!(
                "MISSED {} on {} ({} states explored, no violation)",
                self.seeded.mutant, self.seeded.vehicle, self.exploration.states
            )
        }
    }
}

/// Explores `seeded`'s sabotaged model, stopping at the first violation.
///
/// # Errors
///
/// Returns the vehicle's [`SchemeId`] if it is not in `registry`.
pub fn run_mutant(
    registry: &SchemeRegistry,
    seeded: SeededMutant,
    config: ModelConfig,
) -> Result<MutantOutcome, SchemeId> {
    let scheme = registry.get(seeded.vehicle).map_err(|_| seeded.vehicle)?;
    let model = Model::new(scheme, config, Some(seeded.mutant));
    let exploration = explore(
        &model,
        ExploreOptions {
            stop_on_violation: true,
            ..ExploreOptions::default()
        },
    );
    Ok(MutantOutcome {
        seeded,
        exploration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seeded_mutant_is_caught_with_its_expected_invariant() {
        let registry = SchemeRegistry::builtin();
        for seeded in SEEDED_MUTANTS {
            let outcome = run_mutant(&registry, seeded, ModelConfig::default())
                .unwrap_or_else(|id| panic!("vehicle {id} missing from builtin registry"));
            assert!(
                outcome.caught(),
                "mutant {} escaped: {}",
                seeded.mutant,
                outcome.verdict()
            );
            assert!(
                !outcome.exploration.violations[0].trace.is_empty(),
                "mutant {} needs a counterexample trace",
                seeded.mutant
            );
        }
    }

    #[test]
    fn mutant_suite_covers_every_mutant_exactly_once() {
        let mut names: Vec<&str> = SEEDED_MUTANTS.iter().map(|s| s.mutant.name()).collect();
        names.sort_unstable();
        let mut all: Vec<&str> = Mutant::ALL.iter().map(|m| m.name()).collect();
        all.sort_unstable();
        assert_eq!(names, all);
    }

    #[test]
    fn unknown_vehicle_is_an_error() {
        let registry = SchemeRegistry::new();
        let result = run_mutant(&registry, SEEDED_MUTANTS[0], ModelConfig::default());
        assert_eq!(result.err(), Some(SEEDED_MUTANTS[0].vehicle));
    }
}
