//! `lad-check` — explore the protocol model and verify the invariant
//! catalog.
//!
//! ```text
//! lad-check check --all                 # every built-in scheme
//! lad-check check --scheme RT-3         # one scheme
//! lad-check check --mutants             # the seeded-mutant suite
//! ```
//!
//! Options: `--cores N`, `--lines N`, `--pointers N` (ACKwise pointers),
//! `--max-states N`.  Without explicit sizing flags each scheme is
//! explored at its default size: 3 cores / 1 line / 2 pointers, except
//! high-threshold RT schemes (RT ≥ 4) which drop to 2 cores because their
//! reuse counters multiply the reachable state space past what is useful
//! to enumerate at 3 cores.  Exit code 0 = catalog holds (or every mutant
//! caught), 1 = violation found (or a mutant escaped), 2 = usage error.

use std::process::ExitCode;

use lad_check::explore::{explore, ExploreOptions};
use lad_check::model::{Model, ModelConfig};
use lad_check::mutation::{run_mutant, SEEDED_MUTANTS};
use lad_replication::policy::SchemeRegistry;
use lad_replication::scheme::SchemeId;

const USAGE: &str = "usage: lad-check check (--all | --scheme <id> | --mutants) \
[--cores N] [--lines N] [--pointers N] [--max-states N]";

struct Cli {
    all: bool,
    mutants: bool,
    scheme: Option<SchemeId>,
    config: ModelConfig,
    /// True when any of `--cores/--lines/--pointers` was given; otherwise
    /// each scheme is explored at [`default_config_for`] its id.
    sized_explicitly: bool,
    max_states: usize,
}

/// Per-scheme default exploration size.  High-threshold RT schemes carry
/// reuse counters saturating at RT on every replica and classifier entry,
/// which multiplies the reachable state space; 2 cores keeps their
/// exploration exhaustive while RT-1/RT-3 still cover 3-core ACKwise
/// overflow and majority-vote behavior.
fn default_config_for(id: SchemeId) -> ModelConfig {
    let mut config = ModelConfig::default();
    if let SchemeId::Rt(rt) = id {
        if rt >= 4 {
            config.cores = 2;
        }
    }
    config
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        all: false,
        mutants: false,
        scheme: None,
        config: ModelConfig::default(),
        sized_explicitly: false,
        max_states: ExploreOptions::default().max_states,
    };
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}`\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--all" => cli.all = true,
            "--mutants" => cli.mutants = true,
            "--scheme" => {
                cli.scheme = Some(SchemeId::parse(&value("--scheme")?));
            }
            "--cores" => {
                cli.config.cores = parse_number(&value("--cores")?, "--cores")?;
                cli.sized_explicitly = true;
            }
            "--lines" => {
                cli.config.lines = parse_number(&value("--lines")?, "--lines")?;
                cli.sized_explicitly = true;
            }
            "--pointers" => {
                cli.config.ackwise_pointers = parse_number(&value("--pointers")?, "--pointers")?;
                cli.sized_explicitly = true;
            }
            "--max-states" => {
                cli.max_states = parse_number(&value("--max-states")?, "--max-states")?;
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    let modes = usize::from(cli.all) + usize::from(cli.mutants) + usize::from(cli.scheme.is_some());
    if modes != 1 {
        return Err(format!(
            "pick exactly one of --all, --scheme <id>, --mutants\n{USAGE}"
        ));
    }
    if cli.config.cores == 0 || cli.config.lines == 0 || cli.config.ackwise_pointers == 0 {
        return Err("--cores, --lines and --pointers must be positive".to_string());
    }
    Ok(cli)
}

fn parse_number(text: &str, flag: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .map_err(|_| format!("{flag} expects a number, got `{text}`"))
}

fn check_scheme(registry: &SchemeRegistry, id: SchemeId, cli: &Cli) -> Result<bool, String> {
    let scheme = registry
        .get(id)
        .map_err(|e| format!("{e} (known: {})", known_ids(registry)))?;
    let config = if cli.sized_explicitly {
        cli.config
    } else {
        default_config_for(id)
    };
    let model = Model::new(scheme, config, None);
    let exploration = explore(
        &model,
        ExploreOptions {
            stop_on_violation: false,
            max_states: cli.max_states,
        },
    );
    let status = if exploration.is_clean() {
        "ok"
    } else if exploration.truncated {
        "TRUNCATED"
    } else {
        "VIOLATED"
    };
    println!(
        "{id:<12} {status:<9} {:>8} states, {:>9} transitions  ({}c/{}l/p{})",
        exploration.states,
        exploration.transitions,
        config.cores,
        config.lines,
        config.ackwise_pointers
    );
    for found in &exploration.violations {
        print!("{}", found.render());
    }
    Ok(exploration.is_clean())
}

fn known_ids(registry: &SchemeRegistry) -> String {
    registry
        .ids()
        .map(|id| id.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn run(args: &[String]) -> Result<bool, String> {
    let cli = parse_args(args)?;
    let registry = SchemeRegistry::builtin();

    if cli.mutants {
        println!(
            "mutation harness: {} seeded mutants ({} cores, {} lines, {} pointers)",
            SEEDED_MUTANTS.len(),
            cli.config.cores,
            cli.config.lines,
            cli.config.ackwise_pointers
        );
        let mut all_caught = true;
        for seeded in SEEDED_MUTANTS {
            let outcome = run_mutant(&registry, seeded, cli.config)
                .map_err(|id| format!("mutant vehicle {id} is not a built-in scheme"))?;
            println!("{}", outcome.verdict());
            all_caught &= outcome.caught();
        }
        return Ok(all_caught);
    }

    let ids: Vec<SchemeId> = match cli.scheme {
        Some(id) => vec![id],
        None => registry.ids().collect(),
    };
    if cli.sized_explicitly {
        println!(
            "exploring {} scheme(s) at {} cores, {} lines, {} ACKwise pointers",
            ids.len(),
            cli.config.cores,
            cli.config.lines,
            cli.config.ackwise_pointers
        );
    } else {
        println!(
            "exploring {} scheme(s) at per-scheme default sizes",
            ids.len()
        );
    }
    let mut all_clean = true;
    for id in ids {
        all_clean &= check_scheme(&registry, id, &cli)?;
    }
    Ok(all_clean)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("lad-check: {message}");
            ExitCode::from(2)
        }
    }
}
