//! `lad-lint` — run the workspace source lints.
//!
//! ```text
//! lad-lint [--root <workspace-root>]
//! ```
//!
//! Scans every library source under `<root>/crates` (skipping `src/bin/`,
//! `tests/` and the vendored `*-shim` crates) for the `hashmap` and `panic`
//! rules.  Exit code 0 = clean, 1 = findings, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use lad_check::lint::lint_workspace;

fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    match args {
        [] => Ok(PathBuf::from(".")),
        [flag, root] if flag == "--root" => Ok(PathBuf::from(root)),
        _ => Err("usage: lad-lint [--root <workspace-root>]".to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match parse_root(&args) {
        Ok(root) => root,
        Err(message) => {
            eprintln!("lad-lint: {message}");
            return ExitCode::from(2);
        }
    };
    if !root.join("crates").is_dir() {
        eprintln!(
            "lad-lint: `{}` has no crates/ directory (run from the workspace root or pass --root)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("lad-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!(
                "lad-lint: {} finding(s); annotate deliberate exceptions with \
                 `// lad-lint: allow(<rule>)` next to a justification",
                findings.len()
            );
            ExitCode::from(1)
        }
        Err(error) => {
            eprintln!("lad-lint: {error}");
            ExitCode::from(2)
        }
    }
}
