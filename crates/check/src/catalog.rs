//! The shared invariant catalog.
//!
//! Every protocol invariant the checker knows about is a named member of
//! [`Invariant`].  The same catalog backs all three enforcement layers:
//!
//! * the exhaustive model exploration ([`crate::explore`]) checks every
//!   reachable state of the step relation against the catalog and emits a
//!   minimal counterexample trace on violation;
//! * the runtime hooks in the timing engine (`lad-sim`) check the live
//!   simulator state against the same catalog every N steps of
//!   `run_source` (under `debug_assertions`);
//! * promoted engine assertions ([`require`] / [`violated`]) fail with the
//!   invariant's catalog name and a context string instead of an anonymous
//!   `assert!` message.

use std::fmt;

/// A named protocol (or API) invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Invariant {
    /// At most one core's cache hierarchy holds a writable (M/E) or dirty
    /// copy of a line, and while one does, no other core in the same
    /// coherence domain holds any valid copy.
    SingleWriterMultipleReader,
    /// The directory's exact sharer count equals the number of core
    /// hierarchies holding a valid copy, and outside global mode the
    /// tracked pointer set is exactly the holder set (the LLC is inclusive:
    /// no copy exists without its home entry tracking it, and no tracked
    /// core lacks a copy).
    DirectoryInclusion,
    /// A valid LLC replica implies a resident home entry that tracks the
    /// replica's core, and an M/E (or dirty) replica implies the home is in
    /// Exclusive state with that core as owner.
    ReplicaConsistentWithHome,
    /// The ACKwise sharer list never tracks more pointers than the hardware
    /// provides, keeps `count == tracked` outside global mode and
    /// `count > tracked` in global mode.
    AckwisePointerCapacity,
    /// The home state machine's shape: Uncached has no sharers and no
    /// owner; Shared has sharers and no owner; Exclusive has exactly one
    /// tracked sharer, the owner.
    HomeStateConsistent,
    /// Classifier and replica reuse counters saturate at the replication
    /// threshold, and the Limited_k classifier never tracks more than `k`
    /// cores.
    ClassifierCounterBound,
    /// An access stream may not span more cores than the simulated system
    /// has (the `Simulator::begin` / `Simulator::run` precondition).
    TraceCoreBound,
    /// The home entry for a line must stay resident in the home slice's LLC
    /// for the whole time the home is processing a request for that line.
    HomeResidentDuringRequest,
}

impl Invariant {
    /// Every invariant in the catalog.
    pub const ALL: [Invariant; 8] = [
        Invariant::SingleWriterMultipleReader,
        Invariant::DirectoryInclusion,
        Invariant::ReplicaConsistentWithHome,
        Invariant::AckwisePointerCapacity,
        Invariant::HomeStateConsistent,
        Invariant::ClassifierCounterBound,
        Invariant::TraceCoreBound,
        Invariant::HomeResidentDuringRequest,
    ];

    /// The invariant's stable kebab-case name (used in reports, CLI output
    /// and the coherence crate's entry-local checks).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::SingleWriterMultipleReader => "swmr",
            Invariant::DirectoryInclusion => "directory-inclusion",
            Invariant::ReplicaConsistentWithHome => "replica-consistent-with-home",
            Invariant::AckwisePointerCapacity => "ackwise-pointer-capacity",
            Invariant::HomeStateConsistent => "home-state-consistent",
            Invariant::ClassifierCounterBound => "classifier-counter-bound",
            Invariant::TraceCoreBound => "trace-core-bound",
            Invariant::HomeResidentDuringRequest => "home-resident-during-request",
        }
    }

    /// Resolves a catalog name back to the invariant.
    pub fn from_name(name: &str) -> Option<Invariant> {
        Invariant::ALL.into_iter().find(|inv| inv.name() == name)
    }

    /// A one-line description for `lad-check` listings.
    pub fn description(self) -> &'static str {
        match self {
            Invariant::SingleWriterMultipleReader => {
                "a writable copy excludes every other valid copy in its domain"
            }
            Invariant::DirectoryInclusion => {
                "directory sharer tracking exactly mirrors the set of copy holders"
            }
            Invariant::ReplicaConsistentWithHome => {
                "every valid replica is backed by a home entry that tracks it"
            }
            Invariant::AckwisePointerCapacity => {
                "the ACKwise pointer list respects its hardware capacity and exact count"
            }
            Invariant::HomeStateConsistent => {
                "Uncached/Shared/Exclusive agree with the sharer list and owner"
            }
            Invariant::ClassifierCounterBound => {
                "reuse counters saturate at RT and Limited_k tracks at most k cores"
            }
            Invariant::TraceCoreBound => "an access stream fits the simulated core count",
            Invariant::HomeResidentDuringRequest => {
                "the home entry stays resident while its request is processed"
            }
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant was violated.
    pub invariant: Invariant,
    /// Human-readable context: the line, the cores and the states involved.
    pub details: String,
}

impl Violation {
    /// Creates a violation record.
    pub fn new(invariant: Invariant, details: impl Into<String>) -> Self {
        Violation {
            invariant,
            details: details.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.details)
    }
}

/// Panics with a catalog-formatted message: the promoted-assertion helper
/// for invariants whose violation leaves no way to continue.
#[track_caller]
pub fn violated(invariant: Invariant, details: &str) -> ! {
    panic!("protocol invariant violated [{invariant}]: {details}")
}

/// Checks a promoted assertion: panics through [`violated`] with the
/// invariant's catalog name when `condition` is false.  The context closure
/// is only evaluated on failure.
#[track_caller]
pub fn require(invariant: Invariant, condition: bool, details: impl FnOnce() -> String) {
    if !condition {
        violated(invariant, &details());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for inv in Invariant::ALL {
            assert_eq!(Invariant::from_name(inv.name()), Some(inv));
            assert!(!inv.description().is_empty());
            assert_eq!(inv.to_string(), inv.name());
        }
        assert_eq!(Invariant::from_name("nonsense"), None);
    }

    #[test]
    fn violation_display_carries_the_catalog_name() {
        let v = Violation::new(Invariant::DirectoryInclusion, "core 3 untracked");
        assert_eq!(v.to_string(), "[directory-inclusion] core 3 untracked");
    }

    #[test]
    fn require_passes_when_condition_holds() {
        require(Invariant::TraceCoreBound, true, || unreachable!());
    }

    #[test]
    #[should_panic(expected = "protocol invariant violated [trace-core-bound]: 9 > 4")]
    fn require_panics_with_catalog_context() {
        require(Invariant::TraceCoreBound, false, || "9 > 4".to_string());
    }
}
