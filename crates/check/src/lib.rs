//! `lad-check` — exhaustive protocol-invariant checking for the
//! locality-aware replication protocol.
//!
//! The crate is organized around one **invariant catalog** ([`catalog`])
//! enforced through three layers:
//!
//! 1. **Static exploration** ([`model`], [`explore`]) — the protocol's
//!    transition function (MESI L1 states × home directory state × replica
//!    state × ACKwise sharer lists × classifier counters, driven by the
//!    real [`ReplicationPolicy`](lad_replication::policy::ReplicationPolicy)
//!    objects) is expressed as a declarative step relation, and every
//!    reachable state of a small configuration is checked by breadth-first
//!    search.  Violations come with a shortest counterexample trace.
//! 2. **Runtime checking** ([`view`]) — the same [`check_view`](view::check_view)
//!    function runs over the live `lad-sim` engine's state under
//!    `debug_assertions`, so trace replays enforce the identical catalog.
//! 3. **Mutation harness** ([`mutation`]) — seeded protocol bugs the
//!    checker must flag, proving the catalog has teeth.
//!
//! The [`lint`] module carries the workspace's source lints (`lad-lint`),
//! which share the crate's "deny by default, annotate deliberate
//! exceptions" philosophy.
//!
//! Two binaries front the crate: `lad-check` (`check --all`,
//! `check --scheme <id>`, `check --mutants`) and `lad-lint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod explore;
pub mod lint;
pub mod model;
pub mod mutation;
pub mod view;

pub use catalog::{require, violated, Invariant, Violation};
pub use explore::{explore, Exploration, ExploreOptions, FoundViolation};
pub use model::{Event, Model, ModelConfig, ModelState, Mutant};
pub use mutation::{run_mutant, MutantOutcome, SeededMutant, SEEDED_MUTANTS};
pub use view::{check_view, HomeSummary, ProtocolView};
