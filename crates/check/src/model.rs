//! The declarative protocol model: an exact, timing-free mirror of the
//! `lad-sim` engine's state transitions.
//!
//! The model keeps, per core and per line, the unified L1 state, the local
//! LLC replica entry and the home entry (directory + classifier), and
//! applies [`Event`]s with the same state updates the engine performs —
//! reusing the *real* `DirectoryEntry`, `LocalityClassifier` and
//! [`ReplicationPolicy`] implementations so there is exactly one copy of
//! the protocol logic to drift from.
//!
//! Capacity is modeled nondeterministically: instead of simulating finite
//! sets and replacement, the explorer may evict any resident L1 line,
//! replica or home entry at any time ([`Event::EvictL1`],
//! [`Event::EvictReplica`], [`Event::EvictHome`]).  Likewise the
//! probabilistic / pressure-dependent eviction-replication decision of VR
//! and ASR is the nondeterministic `replicate` flag.  The reachable set is
//! therefore a superset of any concrete execution's states, which makes a
//! clean exploration a strong guarantee.
//!
//! [`Mutant`]s are deliberate, test-only protocol bugs the mutation harness
//! ([`crate::mutation`]) uses to prove the checker can actually detect
//! violations.

use std::fmt;
use std::sync::Arc;

use lad_coherence::ackwise::InvalidationTargets;
use lad_coherence::mesi::MesiState;
use lad_common::types::{CacheLine, CoreId};
use lad_replication::classifier::ClassifierKind;
use lad_replication::entry::{HomeEntry, ReplicaEntry};
use lad_replication::policy::{FillDecision, RegisteredScheme, ReplicationPolicy};

use crate::view::{HomeSummary, ProtocolView};

/// A seeded protocol bug for the mutation harness.
///
/// Each mutant disables one step of the protocol the way a real
/// implementation bug would; the checker must flag every one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// The home "sends" an invalidation to the first sharer but the sharer
    /// never processes it: its copy survives a conflicting write.
    DropInvalidation,
    /// On a read that downgrades a remote owner, the owner's L1 is
    /// downgraded but its LLC replica is left in M/E.
    SkipReplicaDowngrade,
    /// When the ACKwise pointer array is full, a new reader is granted a
    /// Shared copy without being registered (instead of switching the entry
    /// to global mode).
    SharerListOverflow,
    /// Eviction acknowledgements are dropped: the home keeps counting
    /// cores that no longer hold the line.
    DropEvictionNotice,
    /// Evicting a home entry back-invalidates the sharers' L1 copies but
    /// forgets their LLC replicas.
    LeakReplicaOnHomeEviction,
}

impl Mutant {
    /// Every seeded mutant.
    pub const ALL: [Mutant; 5] = [
        Mutant::DropInvalidation,
        Mutant::SkipReplicaDowngrade,
        Mutant::SharerListOverflow,
        Mutant::DropEvictionNotice,
        Mutant::LeakReplicaOnHomeEviction,
    ];

    /// Stable kebab-case name (CLI `--mutants` output).
    pub fn name(self) -> &'static str {
        match self {
            Mutant::DropInvalidation => "drop-invalidation",
            Mutant::SkipReplicaDowngrade => "skip-replica-downgrade",
            Mutant::SharerListOverflow => "sharer-list-overflow",
            Mutant::DropEvictionNotice => "drop-eviction-notice",
            Mutant::LeakReplicaOnHomeEviction => "leak-replica-on-home-eviction",
        }
    }
}

impl fmt::Display for Mutant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One transition of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `core` issues a load for `line`.
    Read {
        /// The requesting core.
        core: CoreId,
        /// The accessed line.
        line: CacheLine,
    },
    /// `core` issues a store to `line`.
    Write {
        /// The requesting core.
        core: CoreId,
        /// The accessed line.
        line: CacheLine,
    },
    /// Capacity evicts `core`'s L1 copy of `line`; `replicate` is the
    /// nondeterministic eviction-replication decision (VR/ASR).
    EvictL1 {
        /// The evicting core.
        core: CoreId,
        /// The evicted line.
        line: CacheLine,
        /// Whether an eviction-replicating policy turns the victim into a
        /// local replica.
        replicate: bool,
    },
    /// Capacity evicts `core`'s LLC replica of `line`.
    EvictReplica {
        /// The core whose slice loses the replica.
        core: CoreId,
        /// The evicted line.
        line: CacheLine,
    },
    /// Capacity evicts `line`'s home entry (inclusive back-invalidation).
    EvictHome {
        /// The evicted line.
        line: CacheLine,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Read { core, line } => write!(f, "core {core} reads line {}", line.index()),
            Event::Write { core, line } => write!(f, "core {core} writes line {}", line.index()),
            Event::EvictL1 {
                core,
                line,
                replicate,
            } => write!(
                f,
                "core {core} evicts line {} from its L1{}",
                line.index(),
                if *replicate { " (replicating)" } else { "" }
            ),
            Event::EvictReplica { core, line } => {
                write!(
                    f,
                    "core {core}'s slice evicts its replica of line {}",
                    line.index()
                )
            }
            Event::EvictHome { line } => {
                write!(f, "the home slice evicts line {}", line.index())
            }
        }
    }
}

/// Size knobs for a model instance.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Number of cores (keep small: 2–4).
    pub cores: usize,
    /// Number of distinct cache lines (keep small: 1–2).
    pub lines: usize,
    /// ACKwise hardware pointers per directory entry (small values force
    /// global mode within reach of the exploration).
    pub ackwise_pointers: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            cores: 3,
            lines: 1,
            ackwise_pointers: 2,
        }
    }
}

/// Protocol state of a small system: `l1[core][line]`,
/// `replica[core][line]` and `home[line]` (conceptually resident at the
/// line's home slice).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    l1: Vec<Vec<MesiState>>,
    replica: Vec<Vec<Option<ReplicaEntry>>>,
    home: Vec<Option<HomeEntry>>,
}

struct Probe {
    target: CoreId,
    replica_reuse: Option<u32>,
    had_copy: bool,
    dirty: bool,
}

/// The step relation: a scheme's policy plus the system knobs, optionally
/// sabotaged by a [`Mutant`].
pub struct Model {
    policy: Arc<dyn ReplicationPolicy>,
    cores: usize,
    lines: usize,
    ackwise_pointers: usize,
    classifier: ClassifierKind,
    rt: u32,
    mutant: Option<Mutant>,
}

impl Model {
    /// Builds the model of `scheme` at the given size, optionally with a
    /// seeded bug.
    pub fn new(scheme: &RegisteredScheme, config: ModelConfig, mutant: Option<Mutant>) -> Self {
        Model {
            policy: Arc::clone(&scheme.policy),
            cores: config.cores,
            lines: config.lines,
            ackwise_pointers: config.ackwise_pointers,
            classifier: scheme.config.classifier,
            rt: scheme.config.replication_threshold,
            mutant,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores
    }

    /// The all-invalid initial state.
    pub fn initial(&self) -> ModelState {
        ModelState {
            l1: vec![vec![MesiState::Invalid; self.lines]; self.cores],
            replica: vec![vec![None; self.lines]; self.cores],
            home: vec![None; self.lines],
        }
    }

    /// The home slice of `line` (address-interleaved, like the engine's
    /// default placement at cache-line granularity).
    pub fn home_slice(&self, line: CacheLine) -> CoreId {
        CoreId::new(line.index() as usize % self.cores)
    }

    /// The slice that may hold `core`'s replica (its own, for replicating
    /// schemes at cluster size 1), or `None` for schemes that never
    /// replicate.
    fn replica_slice(&self, core: CoreId) -> Option<CoreId> {
        if self.policy.replicates() {
            Some(core)
        } else {
            None
        }
    }

    /// Every event enabled in `state` that can change it.
    pub fn enabled_events(&self, state: &ModelState) -> Vec<Event> {
        let mut events = Vec::new();
        for l in 0..self.lines {
            let line = CacheLine::from_index(l as u64);
            for c in 0..self.cores {
                let core = CoreId::new(c);
                let l1 = state.l1[c][l];
                if !l1.is_valid() {
                    events.push(Event::Read { core, line });
                }
                if l1 != MesiState::Modified {
                    events.push(Event::Write { core, line });
                }
                if l1.is_valid() {
                    events.push(Event::EvictL1 {
                        core,
                        line,
                        replicate: false,
                    });
                    if self.policy.replicates_on_eviction()
                        && self.home_slice(line) != core
                        && state.replica[c][l].is_none()
                    {
                        events.push(Event::EvictL1 {
                            core,
                            line,
                            replicate: true,
                        });
                    }
                }
                if state.replica[c][l].is_some() {
                    events.push(Event::EvictReplica { core, line });
                }
            }
            if state.home[l].is_some() {
                events.push(Event::EvictHome { line });
            }
        }
        events
    }

    /// Applies `event` to `state`, mirroring the engine's state updates.
    pub fn apply(&self, state: &mut ModelState, event: Event) {
        match event {
            Event::Read { core, line } => self.apply_access(state, core, line, false),
            Event::Write { core, line } => self.apply_access(state, core, line, true),
            Event::EvictL1 {
                core,
                line,
                replicate,
            } => self.apply_evict_l1(state, core, line, replicate),
            Event::EvictReplica { core, line } => self.apply_evict_replica(state, core, line),
            Event::EvictHome { line } => self.apply_evict_home(state, line),
        }
    }

    /// A [`ProtocolView`] over `state` for [`crate::view::check_view`].
    pub fn view<'a>(&'a self, state: &'a ModelState) -> ModelView<'a> {
        ModelView { model: self, state }
    }

    /// A canonical byte encoding of `state` for the explorer's visited set.
    ///
    /// Classifier entries are encoded in tracking order and with their
    /// `active` flags because the Limited_k replacement is order- and
    /// activity-dependent; ACKwise pointers are likewise kept in list order
    /// (`swap_remove` makes the order reachable state).  Two fields are
    /// deliberately *omitted* because no transition or catalog check reads
    /// them — the home entry's DRAM-staleness bit and the replica's
    /// `l1_copy` bit — which soundly merges behaviorally identical states.
    pub fn encode(&self, state: &ModelState) -> Vec<u8> {
        fn mesi_code(state: MesiState) -> u8 {
            match state {
                MesiState::Modified => 0,
                MesiState::Exclusive => 1,
                MesiState::Shared => 2,
                MesiState::Invalid => 3,
            }
        }
        let mut bytes = Vec::with_capacity(self.cores * self.lines * 6 + self.lines * 24);
        for c in 0..self.cores {
            for l in 0..self.lines {
                bytes.push(mesi_code(state.l1[c][l]));
                match &state.replica[c][l] {
                    None => bytes.push(0xFF),
                    Some(rep) => {
                        bytes.push(mesi_code(rep.state));
                        bytes.push(rep.reuse.value() as u8);
                        bytes.push(u8::from(rep.dirty));
                    }
                }
            }
        }
        for l in 0..self.lines {
            match &state.home[l] {
                None => bytes.push(0xFF),
                Some(entry) => {
                    bytes.push(1);
                    let d = &entry.directory;
                    bytes.push(if d.is_uncached() {
                        0
                    } else if d.has_exclusive_owner() {
                        1
                    } else {
                        2
                    });
                    bytes.push(d.owner().map(|o| o.index() as u8).unwrap_or(0xFE));
                    let sharers = d.sharers();
                    bytes.push(sharers.count() as u8);
                    bytes.push(u8::from(sharers.is_global()));
                    bytes.push(sharers.tracked().len() as u8);
                    bytes.extend(sharers.tracked().iter().map(|c| c.index() as u8));
                    let snapshot = entry.classifier.snapshot();
                    bytes.push(snapshot.len() as u8);
                    for t in snapshot {
                        bytes.push(t.core.index() as u8);
                        bytes.push(u8::from(t.mode.allows_replica()));
                        bytes.push(t.home_reuse as u8);
                        bytes.push(u8::from(t.active));
                    }
                }
            }
        }
        bytes
    }

    // ----- the step relation (mirrors `lad-sim`'s engine) ------------------

    fn apply_access(&self, state: &mut ModelState, core: CoreId, line: CacheLine, is_write: bool) {
        let c = core.index();
        let l = line.index() as usize;

        // L1 lookup.
        let l1 = state.l1[c][l];
        if l1.is_valid() {
            if !is_write {
                return; // read hit
            }
            if l1.can_write_locally() {
                state.l1[c][l] = MesiState::Modified;
                return;
            }
            // Shared copy: upgrade needed, fall through to the miss path.
        }

        let home = self.home_slice(line);
        let rc = self.replica_slice(core);

        // Step 1: the replica location.
        if let Some(rc_id) = rc {
            if rc_id != home {
                let served = if let Some(rep) = state.replica[rc_id.index()][l].as_mut() {
                    if rep.state.is_valid() && (!is_write || rep.state.can_write_locally()) {
                        if is_write {
                            rep.state = MesiState::Modified;
                            rep.dirty = true;
                        }
                        rep.record_hit();
                        Some(rep.state)
                    } else {
                        None
                    }
                } else {
                    None
                };
                if let Some(replica_state) = served {
                    if self.policy.invalidate_replica_on_hit() {
                        state.replica[rc_id.index()][l] = None;
                    }
                    state.l1[c][l] = if is_write {
                        MesiState::Modified
                    } else if replica_state.can_write_locally() {
                        MesiState::Exclusive
                    } else {
                        MesiState::Shared
                    };
                    return;
                }
            }
        }

        // Step 2: the home location.  A write invalidates the requester's
        // own (Shared) replica on the way, collecting its reuse counter.
        let mut own_replica_reuse = None;
        if is_write {
            if let Some(rc_id) = rc {
                if rc_id != home {
                    if let Some(rep) = state.replica[rc_id.index()][l].take() {
                        own_replica_reuse = Some(rep.reuse.value());
                    }
                }
            }
        }

        if state.home[l].is_none() {
            state.home[l] = Some(HomeEntry::new(
                self.ackwise_pointers,
                self.classifier,
                self.rt,
            ));
        }

        let mut other_sharers_present = false;
        let grant_state;
        if is_write {
            let outcome = state.home[l]
                .as_mut()
                .map(|entry| entry.directory.handle_write(core))
                .unwrap_or_else(|| unreachable!("home entry installed above"));
            other_sharers_present =
                outcome.invalidations.expected_acks() > 0 || outcome.prior_owner.is_some();
            let mut targets: Vec<CoreId> = match &outcome.invalidations {
                InvalidationTargets::Exact(cores) => cores.clone(),
                InvalidationTargets::Broadcast { .. } => (0..self.cores)
                    .map(CoreId::new)
                    .filter(|t| *t != core)
                    .collect(),
            };
            if self.mutant == Some(Mutant::DropInvalidation) && !targets.is_empty() {
                targets.remove(0);
            }
            let mut probes = Vec::with_capacity(targets.len());
            for target in targets {
                let ti = target.index();
                let l1_state = state.l1[ti][l];
                state.l1[ti][l] = MesiState::Invalid;
                let mut dirty = l1_state == MesiState::Modified;
                let mut had_copy = l1_state.is_valid();
                let mut replica_reuse = None;
                if let Some(rep) = state.replica[ti][l].take() {
                    replica_reuse = Some(rep.reuse.value());
                    dirty |= rep.dirty;
                    had_copy = true;
                }
                probes.push(Probe {
                    target,
                    replica_reuse,
                    had_copy,
                    dirty,
                });
            }
            if let Some(entry) = state.home[l].as_mut() {
                for probe in &probes {
                    if let Some(reuse) = probe.replica_reuse {
                        entry.classifier.on_replica_invalidated(probe.target, reuse);
                    } else if probe.had_copy {
                        entry.classifier.on_sharer_invalidated(probe.target);
                    }
                    if probe.dirty {
                        entry.dirty = true;
                    }
                    if probe.had_copy || probe.replica_reuse.is_some() {
                        entry.directory.handle_eviction(probe.target);
                    }
                }
                // Re-establish the writer as owner, as the engine does.
                entry.directory.handle_write(core);
            }
            grant_state = MesiState::Modified;
        } else {
            let sabotage = self.mutant == Some(Mutant::SharerListOverflow)
                && state.home[l].as_ref().is_some_and(|entry| {
                    !entry.directory.is_sharer(core)
                        && entry.directory.sharer_count() >= self.ackwise_pointers
                        && !entry.directory.has_exclusive_owner()
                });
            if sabotage {
                // Grant a copy without registering the reader.
                grant_state = MesiState::Shared;
            } else {
                let outcome = state.home[l]
                    .as_mut()
                    .map(|entry| entry.directory.handle_read(core))
                    .unwrap_or_else(|| unreachable!("home entry installed above"));
                if let Some(owner) = outcome.downgrade_owner {
                    if owner != core {
                        let oi = owner.index();
                        let mut dirty = false;
                        let owner_l1 = state.l1[oi][l];
                        if owner_l1.is_valid() {
                            dirty |= owner_l1.is_dirty();
                            state.l1[oi][l] = owner_l1.after_downgrade();
                        }
                        if self.mutant != Some(Mutant::SkipReplicaDowngrade) {
                            if let Some(rep) = state.replica[oi][l].as_mut() {
                                dirty |= rep.dirty;
                                rep.state = rep.state.after_downgrade();
                                rep.dirty = false;
                            }
                        }
                        if dirty {
                            if let Some(entry) = state.home[l].as_mut() {
                                entry.dirty = true;
                            }
                        }
                    }
                }
                grant_state = outcome.grant.as_state();
            }
        }

        // The replication decision (trains the classifier).
        let wants_replica = if let Some(entry) = state.home[l].as_mut() {
            self.policy.replicate_on_fill(FillDecision {
                core,
                is_write,
                other_sharers_present,
                own_replica_reuse,
                classifier: &mut entry.classifier,
            })
        } else {
            false
        };
        if wants_replica {
            if let Some(rc_id) = rc {
                if rc_id != home {
                    let replica_state = if is_write {
                        MesiState::Modified
                    } else {
                        MesiState::Shared
                    };
                    state.replica[rc_id.index()][l] =
                        Some(ReplicaEntry::new(replica_state, self.rt));
                }
            }
        }

        // Step 3: fill the L1.
        state.l1[c][l] = if is_write {
            MesiState::Modified
        } else {
            grant_state
        };
    }

    fn apply_evict_l1(
        &self,
        state: &mut ModelState,
        core: CoreId,
        line: CacheLine,
        replicate: bool,
    ) {
        let c = core.index();
        let l = line.index() as usize;
        let l1_state = state.l1[c][l];
        state.l1[c][l] = MesiState::Invalid;
        if !l1_state.is_valid() {
            return;
        }
        let dirty = l1_state.is_dirty();
        let home = self.home_slice(line);

        // Merge into an existing entry in the local slice.
        if let Some(rc_id) = self.replica_slice(core) {
            let ri = rc_id.index();
            if let Some(rep) = state.replica[ri][l].as_mut() {
                rep.dirty |= dirty;
                rep.l1_copy = false;
                if dirty {
                    rep.state = MesiState::Modified;
                }
                return;
            }
            if rc_id == home {
                if let Some(entry) = state.home[l].as_mut() {
                    if dirty {
                        entry.dirty = true;
                    }
                    entry.directory.handle_eviction(core);
                    if self.policy.uses_classifier() {
                        entry.classifier.on_sharer_evicted(core);
                    }
                    return;
                }
            }
        }

        // Eviction-driven replication (VR / ASR): the nondeterministic
        // `replicate` flag stands in for the policy's probabilistic or
        // pressure-dependent decision.
        if self.policy.replicates_on_eviction() && replicate && home != core {
            let mut rep = ReplicaEntry::new(l1_state, self.rt);
            rep.l1_copy = false;
            rep.dirty = dirty;
            state.replica[c][l] = Some(rep);
            return;
        }

        if self.mutant == Some(Mutant::DropEvictionNotice) {
            return;
        }
        self.notify_home(state, core, line, dirty, None);
    }

    fn apply_evict_replica(&self, state: &mut ModelState, core: CoreId, line: CacheLine) {
        let c = core.index();
        let l = line.index() as usize;
        let Some(rep) = state.replica[c][l].take() else {
            return;
        };
        // Back-invalidate the local L1 copy (the slice is inclusive of the
        // local L1 for replicas).
        let l1_state = state.l1[c][l];
        state.l1[c][l] = MesiState::Invalid;
        let dirty = rep.dirty || l1_state == MesiState::Modified;
        if self.mutant == Some(Mutant::DropEvictionNotice) {
            return;
        }
        self.notify_home(state, core, line, dirty, Some(rep.reuse.value()));
    }

    fn apply_evict_home(&self, state: &mut ModelState, line: CacheLine) {
        let l = line.index() as usize;
        let Some(entry) = state.home[l].take() else {
            return;
        };
        for target in entry.directory.back_invalidation_targets(self.cores) {
            let ti = target.index();
            state.l1[ti][l] = MesiState::Invalid;
            if self.mutant != Some(Mutant::LeakReplicaOnHomeEviction) {
                state.replica[ti][l] = None;
            }
        }
    }

    fn notify_home(
        &self,
        state: &mut ModelState,
        core: CoreId,
        line: CacheLine,
        dirty: bool,
        replica_reuse: Option<u32>,
    ) {
        let l = line.index() as usize;
        if let Some(entry) = state.home[l].as_mut() {
            entry.directory.handle_eviction(core);
            if dirty {
                entry.dirty = true;
            }
            if self.policy.uses_classifier() {
                match replica_reuse {
                    Some(reuse) => entry.classifier.on_replica_evicted(core, reuse),
                    None => entry.classifier.on_sharer_evicted(core),
                }
            }
        }
    }
}

impl fmt::Debug for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Model")
            .field("scheme", &self.policy.id())
            .field("cores", &self.cores)
            .field("lines", &self.lines)
            .field("ackwise_pointers", &self.ackwise_pointers)
            .field("mutant", &self.mutant)
            .finish()
    }
}

/// A [`ProtocolView`] over one model state.
pub struct ModelView<'a> {
    model: &'a Model,
    state: &'a ModelState,
}

impl ProtocolView for ModelView<'_> {
    fn num_cores(&self) -> usize {
        self.model.cores
    }

    fn lines(&self) -> Vec<CacheLine> {
        (0..self.model.lines)
            .map(|l| CacheLine::from_index(l as u64))
            .collect()
    }

    fn l1_states(&self, core: CoreId, line: CacheLine) -> Vec<MesiState> {
        vec![self.state.l1[core.index()][line.index() as usize]]
    }

    fn replica(&self, core: CoreId, line: CacheLine) -> Option<ReplicaEntry> {
        self.state.replica[core.index()][line.index() as usize]
    }

    fn home_slice(&self, line: CacheLine, _core: CoreId) -> CoreId {
        self.model.home_slice(line)
    }

    fn home_at(&self, line: CacheLine, slice: CoreId) -> Option<HomeSummary> {
        if slice != self.model.home_slice(line) {
            return None;
        }
        self.state.home[line.index() as usize]
            .as_ref()
            .map(HomeSummary::from_entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::check_view;
    use lad_replication::policy::SchemeRegistry;
    use lad_replication::scheme::SchemeId;

    fn model_for(id: SchemeId, mutant: Option<Mutant>) -> Model {
        let registry = SchemeRegistry::builtin();
        let scheme = registry.get(id).expect("builtin scheme");
        Model::new(scheme, ModelConfig::default(), mutant)
    }

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    fn line0() -> CacheLine {
        CacheLine::from_index(0)
    }

    #[test]
    fn read_write_sequence_stays_invariant_clean() {
        let model = model_for(SchemeId::Rt(1), None);
        let mut state = model.initial();
        let events = [
            Event::Read {
                core: core(1),
                line: line0(),
            },
            Event::Read {
                core: core(2),
                line: line0(),
            },
            Event::Write {
                core: core(1),
                line: line0(),
            },
            Event::EvictL1 {
                core: core(1),
                line: line0(),
                replicate: false,
            },
            Event::Read {
                core: core(2),
                line: line0(),
            },
        ];
        for event in events {
            model.apply(&mut state, event);
            let violations = check_view(&model.view(&state));
            assert!(violations.is_empty(), "after {event}: {violations:?}");
        }
    }

    #[test]
    fn rt1_write_installs_an_exclusive_replica() {
        // RT=1 promotes on the first home access; a write by a non-home
        // core installs a Modified replica the next write hits locally.
        let model = model_for(SchemeId::Rt(1), None);
        let mut state = model.initial();
        model.apply(
            &mut state,
            Event::Write {
                core: core(1),
                line: line0(),
            },
        );
        let rep = model.view(&state).replica(core(1), line0());
        assert_eq!(rep.map(|r| r.state), Some(MesiState::Modified));
        assert!(check_view(&model.view(&state)).is_empty());
    }

    #[test]
    fn snuca_never_creates_replicas() {
        let model = model_for(SchemeId::StaticNuca, None);
        let mut state = model.initial();
        for c in 0..3 {
            model.apply(
                &mut state,
                Event::Read {
                    core: core(c),
                    line: line0(),
                },
            );
        }
        for c in 0..3 {
            assert!(model.view(&state).replica(core(c), line0()).is_none());
        }
        assert!(check_view(&model.view(&state)).is_empty());
    }

    #[test]
    fn encoding_distinguishes_states_and_is_stable() {
        let model = model_for(SchemeId::Rt(3), None);
        let mut a = model.initial();
        let b = model.initial();
        assert_eq!(model.encode(&a), model.encode(&b));
        model.apply(
            &mut a,
            Event::Read {
                core: core(1),
                line: line0(),
            },
        );
        assert_ne!(model.encode(&a), model.encode(&b));
    }

    #[test]
    fn dropped_invalidation_breaks_swmr() {
        let model = model_for(SchemeId::StaticNuca, Some(Mutant::DropInvalidation));
        let mut state = model.initial();
        model.apply(
            &mut state,
            Event::Read {
                core: core(1),
                line: line0(),
            },
        );
        model.apply(
            &mut state,
            Event::Read {
                core: core(2),
                line: line0(),
            },
        );
        model.apply(
            &mut state,
            Event::Write {
                core: core(0),
                line: line0(),
            },
        );
        let violations = check_view(&model.view(&state));
        assert!(!violations.is_empty(), "stale copy must be detected");
    }
}
