//! Property-based tests for the set-associative cache array.
//!
//! These check the structural invariants a hardware cache must uphold under
//! arbitrary interleavings of fills, lookups and invalidations:
//!
//! * occupancy never exceeds capacity and no set ever exceeds its
//!   associativity;
//! * a line is resident after a fill until it is evicted or invalidated;
//! * the array behaves like a bounded map (agreement with a reference model).

use std::collections::HashMap;

use lad_cache::replacement::PlainLru;
use lad_cache::set_assoc::SetAssocCache;
use lad_common::types::CacheLine;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Fill(u64, u32),
    Access(u64),
    Invalidate(u64),
}

fn op_strategy(max_line: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_line, any::<u32>()).prop_map(|(l, v)| Op::Fill(l, v)),
        (0..max_line).prop_map(Op::Access),
        (0..max_line).prop_map(Op::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn occupancy_never_exceeds_capacity(
        ops in prop::collection::vec(op_strategy(256), 1..400),
        sets_pow in 0usize..4,
        assoc in 1usize..6,
    ) {
        let num_sets = 1usize << sets_pow;
        let mut cache: SetAssocCache<u32> = SetAssocCache::new(num_sets, assoc);
        for op in ops {
            match op {
                Op::Fill(l, v) => { cache.insert(CacheLine::from_index(l), v, &PlainLru); }
                Op::Access(l) => { cache.get(CacheLine::from_index(l)); }
                Op::Invalidate(l) => { cache.remove(CacheLine::from_index(l)); }
            }
            prop_assert!(cache.len() <= cache.capacity());
            // Per-set occupancy bound.
            for line in 0..num_sets as u64 {
                let (occ, ways) = cache.set_occupancy(CacheLine::from_index(line));
                prop_assert!(occ <= ways);
            }
        }
    }

    #[test]
    fn resident_until_evicted_or_invalidated(
        ops in prop::collection::vec(op_strategy(64), 1..300),
    ) {
        let mut cache: SetAssocCache<u32> = SetAssocCache::new(4, 2);
        // Reference set of lines we believe are resident.
        let mut resident: HashMap<u64, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Fill(l, v) => {
                    let evicted = cache.insert(CacheLine::from_index(l), v, &PlainLru);
                    resident.insert(l, v);
                    if let Some((el, _)) = evicted {
                        prop_assert_ne!(el.index(), l, "a fill may not evict itself");
                        resident.remove(&el.index());
                    }
                }
                Op::Access(l) => {
                    let expected = resident.get(&l);
                    let got = cache.get(CacheLine::from_index(l));
                    prop_assert_eq!(got, expected);
                }
                Op::Invalidate(l) => {
                    let expected = resident.remove(&l);
                    let got = cache.remove(CacheLine::from_index(l));
                    prop_assert_eq!(got, expected);
                }
            }
            // Everything we think is resident really is, with the right value.
            for (l, v) in &resident {
                prop_assert_eq!(cache.peek(CacheLine::from_index(*l)), Some(v));
            }
            prop_assert_eq!(cache.len(), resident.len());
        }
    }

    #[test]
    fn eviction_only_happens_when_set_full(
        lines in prop::collection::vec(0u64..128, 1..200),
    ) {
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(8, 4);
        for l in lines {
            let line = CacheLine::from_index(l);
            let (occ_before, ways) = cache.set_occupancy(line);
            let was_resident = cache.contains(line);
            let evicted = cache.insert(line, l, &PlainLru);
            if evicted.is_some() {
                prop_assert!(!was_resident);
                prop_assert_eq!(occ_before, ways);
            }
        }
    }
}
