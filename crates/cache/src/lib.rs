//! Set-associative cache arrays, replacement policies and the L1 / LLC-slice
//! models used by the locality-aware replication reproduction.
//!
//! The arrays are *structural*: they manage tags, placement, LRU ordering and
//! victim selection, while the coherence state and directory/classifier
//! metadata stored in each entry are supplied by the higher-level crates
//! (`lad-coherence`, `lad-replication`) as the generic entry type `V`.
//!
//! The two victim-selection policies of the paper are provided:
//!
//! * [`replacement::PlainLru`] — classic least-recently-used.
//! * [`replacement::SharerAwareLru`] — the paper's modified policy
//!   (Section 2.2.4): evict the line with the *fewest L1 sharers* first and
//!   only break ties by recency, which keeps lines with live L1 copies
//!   resident and avoids back-invalidations.
//!
//! # Example
//!
//! ```
//! use lad_cache::set_assoc::SetAssocCache;
//! use lad_cache::replacement::PlainLru;
//! use lad_common::types::CacheLine;
//!
//! let mut cache: SetAssocCache<u32> = SetAssocCache::new(4, 2);
//! let evicted = cache.insert(CacheLine::from_index(0), 10, &PlainLru);
//! assert!(evicted.is_none());
//! assert_eq!(cache.get(CacheLine::from_index(0)), Some(&10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod l1;
pub mod llc_slice;
pub mod replacement;
pub mod set_assoc;
pub mod snapshot;

pub use l1::L1Cache;
pub use llc_slice::{LlcReplacementPolicy, LlcSlice};
pub use replacement::{EvictionPriority, PlainLru, SharerAwareLru, SharerCount};
pub use set_assoc::SetAssocCache;
pub use snapshot::CacheState;
