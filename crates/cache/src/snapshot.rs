//! Plain-data snapshots of the cache models for checkpoint/resume.
//!
//! A [`CacheState`] captures one cache array — occupied slots with their
//! tags, LRU stamps and entries, the global LRU clock, and the hit / miss /
//! eviction counters — as ordinary vectors and integers, with no opinion on
//! how it is serialized.  The JSON encoding lives with the simulator's
//! checkpoint module so that this crate stays serialization-free.

use lad_common::stats::Counter;

use crate::l1::L1Cache;
use crate::llc_slice::LlcSlice;
use crate::replacement::SharerCount;
use crate::set_assoc::SetAssocCache;

/// Complete state of an [`L1Cache`] or [`LlcSlice`] holding entries of
/// type `V`.
///
/// Restoring a state into a cache built from the same configuration
/// reproduces every future lookup, LRU promotion, victim choice and
/// statistics value of the snapshotted cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheState<V> {
    /// Occupied slots as `(slot, tag, lru_stamp, entry)`, in slot order.
    pub slots: Vec<(usize, u64, u64, V)>,
    /// The array's global LRU clock.
    pub clock: u64,
    /// Lookup hits recorded so far.
    pub hits: u64,
    /// Lookup misses recorded so far.
    pub misses: u64,
    /// Evictions performed by fills so far.
    pub evictions: u64,
}

fn capture<V: Clone>(
    array: &SetAssocCache<V>,
    hits: u64,
    misses: u64,
    evictions: u64,
) -> CacheState<V> {
    CacheState {
        slots: array
            .slots()
            .map(|(slot, tag, stamp, value)| (slot, tag, stamp, value.clone()))
            .collect(),
        clock: array.clock(),
        hits,
        misses,
        evictions,
    }
}

fn replay<V>(array: &mut SetAssocCache<V>, state: &CacheState<V>) -> (Counter, Counter, Counter)
where
    V: Clone,
{
    array.clear();
    for (slot, tag, stamp, value) in &state.slots {
        array.restore_slot(*slot, *tag, *stamp, value.clone());
    }
    array.set_clock(state.clock);
    (
        Counter::from_value(state.hits),
        Counter::from_value(state.misses),
        Counter::from_value(state.evictions),
    )
}

impl<V: Clone> L1Cache<V> {
    /// Snapshots the cache for checkpointing.
    pub fn state(&self) -> CacheState<V> {
        capture(self.array(), self.hits(), self.misses(), self.evictions())
    }

    /// Restores a snapshot taken from a cache with the same geometry.
    ///
    /// # Panics
    ///
    /// Panics if a slot index falls outside this cache's geometry or the
    /// snapshot is internally inconsistent (duplicate slots, stale clock).
    pub fn restore_state(&mut self, state: &CacheState<V>) {
        let counters = replay(self.array_mut(), state);
        self.set_counters(counters.0, counters.1, counters.2);
    }
}

impl<V: SharerCount + Clone> LlcSlice<V> {
    /// Snapshots the slice for checkpointing.
    pub fn state(&self) -> CacheState<V> {
        capture(self.array(), self.hits(), self.misses(), self.evictions())
    }

    /// Restores a snapshot taken from a slice with the same geometry.
    ///
    /// # Panics
    ///
    /// Panics if a slot index falls outside this slice's geometry or the
    /// snapshot is internally inconsistent (duplicate slots, stale clock).
    pub fn restore_state(&mut self, state: &CacheState<V>) {
        let counters = replay(self.array_mut(), state);
        self.set_counters(counters.0, counters.1, counters.2);
    }
}

#[cfg(test)]
mod tests {
    use lad_common::config::CacheConfig;
    use lad_common::types::CacheLine;

    use super::*;

    fn line(i: u64) -> CacheLine {
        CacheLine::from_index(i)
    }

    fn config() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 8 * 64,
            associativity: 2,
            tag_latency: 1,
            data_latency: 1,
        }
    }

    #[test]
    fn l1_state_roundtrip_preserves_behavior_and_counters() {
        let mut l1: L1Cache<u8> = L1Cache::new(&config(), 64);
        for i in 0..6 {
            l1.fill(line(i), i as u8);
        }
        l1.access(line(0));
        l1.access(line(99));

        let state = l1.state();
        let mut restored: L1Cache<u8> = L1Cache::new(&config(), 64);
        restored.restore_state(&state);

        assert_eq!(restored.hits(), l1.hits());
        assert_eq!(restored.misses(), l1.misses());
        assert_eq!(restored.evictions(), l1.evictions());
        assert_eq!(restored.len(), l1.len());
        // Same future: the fill that overflows set 0 picks the same victim.
        assert_eq!(restored.fill(line(8), 8), l1.fill(line(8), 8));
        assert_eq!(restored.state(), l1.state());
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Entry {
        sharers: usize,
    }

    impl SharerCount for Entry {
        fn l1_sharer_count(&self) -> usize {
            self.sharers
        }
    }

    #[test]
    fn llc_state_roundtrip_preserves_sharer_aware_choice() {
        let mut slice: LlcSlice<Entry> = LlcSlice::new(&config(), 64);
        // 4 sets: lines 0, 4, 8 collide in set 0 (2 ways).
        slice.fill(line(0), Entry { sharers: 2 });
        slice.fill(line(4), Entry { sharers: 0 });
        slice.access(line(4)); // MRU but sharer-free

        let state = slice.state();
        let mut restored: LlcSlice<Entry> = LlcSlice::new(&config(), 64);
        restored.restore_state(&state);

        let expect = slice.fill(line(8), Entry { sharers: 1 });
        let got = restored.fill(line(8), Entry { sharers: 1 });
        assert_eq!(expect, got);
        assert_eq!(got.map(|(victim, _)| victim), Some(line(4)));
        assert_eq!(restored.state(), slice.state());
    }
}
