//! Private L1 cache model (instruction or data).
//!
//! The L1 caches of the paper's target are small (16 KB I / 32 KB D, 4-way,
//! 1-cycle) write-back caches kept coherent by the directory in the LLC.  The
//! model is a [`SetAssocCache`] with geometry taken from a
//! [`CacheConfig`], plus hit/miss accounting.

use lad_common::config::CacheConfig;
use lad_common::stats::Counter;
use lad_common::types::CacheLine;

use crate::replacement::{EvictionPriority, PlainLru};
use crate::set_assoc::SetAssocCache;

/// A private L1 cache holding per-line state of type `V` (the coherence
/// state is supplied by the protocol layer).
#[derive(Debug, Clone)]
pub struct L1Cache<V> {
    array: SetAssocCache<V>,
    access_latency: u32,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl<V> L1Cache<V> {
    /// Builds an L1 cache from its configuration and the line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not form whole power-of-two sets.
    pub fn new(config: &CacheConfig, line_bytes: usize) -> Self {
        L1Cache {
            array: SetAssocCache::new(config.num_sets(line_bytes), config.associativity),
            access_latency: config.access_latency(),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Access latency in cycles (tag + data).
    pub fn access_latency(&self) -> u32 {
        self.access_latency
    }

    /// Looks up `line`, recording a hit or a miss, and returns a mutable
    /// reference to its state on a hit.
    pub fn access(&mut self, line: CacheLine) -> Option<&mut V> {
        // Split the borrow: probe first, then touch.
        if self.array.contains(line) {
            self.hits.increment();
            self.array.get_mut(line)
        } else {
            self.misses.increment();
            None
        }
    }

    /// Probes for `line` without recording statistics or touching LRU state
    /// (used by asynchronous coherence requests: invalidations, downgrades).
    pub fn probe(&self, line: CacheLine) -> Option<&V> {
        self.array.peek(line)
    }

    /// Probes mutably without statistics / LRU update.
    pub fn probe_mut(&mut self, line: CacheLine) -> Option<&mut V> {
        self.array.peek_mut(line)
    }

    /// Returns `true` if `line` is resident.
    pub fn contains(&self, line: CacheLine) -> bool {
        self.array.contains(line)
    }

    /// Inserts `line`, evicting an LRU victim if necessary; the victim (with
    /// its state) is returned so the protocol can write it back / notify the
    /// directory.
    pub fn fill(&mut self, line: CacheLine, state: V) -> Option<(CacheLine, V)> {
        let evicted = self.array.insert(line, state, &PlainLru);
        if evicted.is_some() {
            self.evictions.increment();
        }
        evicted
    }

    /// Inserts with a custom eviction policy (not used by the paper's L1, but
    /// exposed for experimentation).
    pub fn fill_with_policy<P>(
        &mut self,
        line: CacheLine,
        state: V,
        policy: &P,
    ) -> Option<(CacheLine, V)>
    where
        P: EvictionPriority<V> + ?Sized,
    {
        let evicted = self.array.insert(line, state, policy);
        if evicted.is_some() {
            self.evictions.increment();
        }
        evicted
    }

    /// Invalidates `line`, returning its state if it was resident.
    pub fn invalidate(&mut self, line: CacheLine) -> Option<V> {
        self.array.remove(line)
    }

    /// Number of recorded hits.
    pub fn hits(&self) -> u64 {
        self.hits.value()
    }

    /// Number of recorded misses.
    pub fn misses(&self) -> u64 {
        self.misses.value()
    }

    /// Number of capacity/conflict evictions performed by fills.
    pub fn evictions(&self) -> u64 {
        self.evictions.value()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Returns `true` if the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> usize {
        self.array.capacity()
    }

    /// Iterates over resident `(line, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CacheLine, &V)> {
        self.array.iter()
    }

    pub(crate) fn array(&self) -> &SetAssocCache<V> {
        &self.array
    }

    pub(crate) fn array_mut(&mut self) -> &mut SetAssocCache<V> {
        &mut self.array
    }

    pub(crate) fn set_counters(&mut self, hits: Counter, misses: Counter, evictions: Counter) {
        self.hits = hits;
        self.misses = misses;
        self.evictions = evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CacheConfig {
        // 8 lines, 2-way => 4 sets.
        CacheConfig {
            capacity_bytes: 8 * 64,
            associativity: 2,
            tag_latency: 0,
            data_latency: 1,
        }
    }

    fn line(i: u64) -> CacheLine {
        CacheLine::from_index(i)
    }

    #[test]
    fn geometry_from_config() {
        let l1: L1Cache<u8> = L1Cache::new(&config(), 64);
        assert_eq!(l1.capacity(), 8);
        assert_eq!(l1.access_latency(), 1);
        assert!(l1.is_empty());
    }

    #[test]
    fn access_records_hits_and_misses() {
        let mut l1 = L1Cache::new(&config(), 64);
        assert!(l1.access(line(1)).is_none());
        l1.fill(line(1), 7u8);
        assert_eq!(l1.access(line(1)), Some(&mut 7));
        assert_eq!(l1.hits(), 1);
        assert_eq!(l1.misses(), 1);
    }

    #[test]
    fn probe_does_not_count() {
        let mut l1 = L1Cache::new(&config(), 64);
        l1.fill(line(1), 1u8);
        assert!(l1.probe(line(1)).is_some());
        assert!(l1.probe(line(2)).is_none());
        assert_eq!(l1.hits(), 0);
        assert_eq!(l1.misses(), 0);
        *l1.probe_mut(line(1)).unwrap() = 9;
        assert_eq!(l1.probe(line(1)), Some(&9));
    }

    #[test]
    fn fill_evicts_lru_and_counts() {
        let mut l1 = L1Cache::new(&config(), 64);
        // Lines 0, 4, 8 all map to set 0 (4 sets, 2 ways).
        assert!(l1.fill(line(0), 0u8).is_none());
        assert!(l1.fill(line(4), 4u8).is_none());
        let victim = l1.fill(line(8), 8u8).expect("eviction");
        assert_eq!(victim, (line(0), 0u8));
        assert_eq!(l1.evictions(), 1);
        assert!(l1.contains(line(4)));
        assert!(l1.contains(line(8)));
    }

    #[test]
    fn invalidate_removes_state() {
        let mut l1 = L1Cache::new(&config(), 64);
        l1.fill(line(3), 3u8);
        assert_eq!(l1.invalidate(line(3)), Some(3));
        assert_eq!(l1.invalidate(line(3)), None);
        assert!(!l1.contains(line(3)));
    }

    #[test]
    fn iter_covers_all_lines() {
        let mut l1 = L1Cache::new(&config(), 64);
        for i in 0..4 {
            l1.fill(line(i), i as u8);
        }
        assert_eq!(l1.iter().count(), 4);
        assert_eq!(l1.len(), 4);
    }
}
