//! A generic set-associative cache array with pluggable victim selection.

// The only `HashMap` here is the `to_map` diagnostics helper, whose
// iteration order never feeds a report.  lad-lint: allow(hashmap)
use std::collections::HashMap;

use lad_common::types::CacheLine;

use crate::replacement::EvictionPriority;

/// A set-associative cache array mapping [`CacheLine`]s to entries of type
/// `V`.
///
/// The array tracks LRU recency per set and delegates victim selection to an
/// [`EvictionPriority`] so that the LLC can implement the paper's
/// sharer-aware replacement policy (Section 2.2.4) without the array knowing
/// anything about directories.
///
/// Set indexing uses the low-order bits of the line index, exactly as a
/// hardware cache indexed by physical address would.
///
/// # Layout
///
/// Ways are stored struct-of-arrays style in three flat vectors (`tags`,
/// `stamps`, `values`), each `num_sets * associativity` long, with set `s`
/// occupying slots `s * associativity ..`.  Tag scans — the hot operation on
/// every simulated cache access — therefore touch a handful of contiguous
/// `u64`s instead of striding over full entries, and a slice never pays a
/// per-set heap indirection.  A slot is vacant iff its stamp is `0` (live
/// stamps come from a global tick that starts at `1`); vacant tags are reset
/// to `u64::MAX` so they cannot match a lookup early.
///
/// Within-set slot order is immaterial to behavior: resident lines are
/// unique within a set, and LRU stamps are globally unique, so lookups and
/// victim selection (`min_by_key` over `(priority, stamp)`) are independent
/// of scan order.
#[derive(Debug, Clone)]
pub struct SetAssocCache<V> {
    /// Line index per slot; `u64::MAX` when vacant (occupancy is decided by
    /// `stamps`, the sentinel only prevents accidental tag matches).
    tags: Vec<u64>,
    /// Monotonically increasing timestamp of the last touch; larger = more
    /// recently used.  `0` marks a vacant slot.
    stamps: Vec<u64>,
    values: Vec<Option<V>>,
    associativity: usize,
    /// `num_sets - 1`; valid because the set count is a power of two, so
    /// indexing is a mask instead of a 64-bit modulo.
    set_mask: u64,
    /// Global LRU clock (shared across sets; only relative order within a set
    /// matters).  Starts at `0`, so the first stamp handed out is `1`.
    clock: u64,
    /// Number of resident lines.
    len: usize,
}

const VACANT_TAG: u64 = u64::MAX;

impl<V> SetAssocCache<V> {
    /// Creates an empty cache with `num_sets` sets of `associativity` ways.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `associativity` is zero, or if `num_sets` is
    /// not a power of two (hardware caches index with address bits).
    pub fn new(num_sets: usize, associativity: usize) -> Self {
        assert!(num_sets > 0, "need at least one set");
        assert!(associativity > 0, "need at least one way");
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        let slots = num_sets * associativity;
        SetAssocCache {
            tags: vec![VACANT_TAG; slots],
            stamps: vec![0; slots],
            values: (0..slots).map(|_| None).collect(),
            associativity,
            set_mask: num_sets as u64 - 1,
            clock: 0,
            len: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.set_mask as usize + 1
    }

    /// Ways per set.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    /// Number of currently resident lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First slot of the set that `line` maps to.
    fn set_base(&self, line: CacheLine) -> usize {
        (line.index() & self.set_mask) as usize * self.associativity
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Slot holding `line`, or `None` on a miss.
    fn slot_of(&self, line: CacheLine) -> Option<usize> {
        let base = self.set_base(line);
        let tag = line.index();
        (base..base + self.associativity)
            .find(|&slot| self.tags[slot] == tag && self.stamps[slot] != 0)
    }

    /// Returns a reference to the entry for `line` and promotes it to
    /// most-recently-used, or `None` on a miss.
    pub fn get(&mut self, line: CacheLine) -> Option<&V> {
        let slot = self.slot_of(line)?;
        self.stamps[slot] = self.tick();
        self.values[slot].as_ref()
    }

    /// Returns a mutable reference to the entry for `line` and promotes it to
    /// most-recently-used, or `None` on a miss.
    pub fn get_mut(&mut self, line: CacheLine) -> Option<&mut V> {
        let slot = self.slot_of(line)?;
        self.stamps[slot] = self.tick();
        self.values[slot].as_mut()
    }

    /// Returns a reference to the entry for `line` *without* updating the LRU
    /// state (a probe, e.g. an asynchronous coherence lookup).
    pub fn peek(&self, line: CacheLine) -> Option<&V> {
        self.values[self.slot_of(line)?].as_ref()
    }

    /// Returns a mutable reference to the entry for `line` without updating
    /// the LRU state.
    pub fn peek_mut(&mut self, line: CacheLine) -> Option<&mut V> {
        let slot = self.slot_of(line)?;
        self.values[slot].as_mut()
    }

    /// Returns `true` if `line` is resident.
    pub fn contains(&self, line: CacheLine) -> bool {
        self.slot_of(line).is_some()
    }

    /// Inserts `value` for `line`, evicting a victim from the target set if
    /// it is full.
    ///
    /// Returns the evicted `(line, value)` pair, if any.  If `line` was
    /// already resident its entry is replaced in place (no eviction) and the
    /// old value is **not** returned — use [`SetAssocCache::get_mut`] to
    /// update entries that may already exist.
    ///
    /// The victim is the way with the lowest
    /// [`EvictionPriority::priority`], ties broken by least-recent use —
    /// i.e. plain LRU when the priority is constant.
    pub fn insert<P>(&mut self, line: CacheLine, value: V, policy: &P) -> Option<(CacheLine, V)>
    where
        P: EvictionPriority<V> + ?Sized,
    {
        let stamp = self.tick();
        let base = self.set_base(line);
        let assoc = self.associativity;
        let tag = line.index();

        let mut vacant = None;
        for slot in base..base + assoc {
            if self.stamps[slot] == 0 {
                vacant = Some(slot);
            } else if self.tags[slot] == tag {
                self.values[slot] = Some(value);
                self.stamps[slot] = stamp;
                return None;
            }
        }

        if let Some(slot) = vacant {
            self.tags[slot] = tag;
            self.stamps[slot] = stamp;
            self.values[slot] = Some(value);
            self.len += 1;
            return None;
        }

        // Victim: lowest (priority, lru_stamp).  Stamps are globally unique,
        // so the choice does not depend on slot order.
        let victim_slot = match (base..base + assoc).min_by_key(|&slot| {
            let priority = match &self.values[slot] {
                Some(v) => policy.priority(v),
                None => unreachable!("occupied slot has a value"),
            };
            (priority, self.stamps[slot])
        }) {
            Some(slot) => slot,
            None => unreachable!("set is full, so non-empty"),
        };
        let victim_line = CacheLine::from_index(self.tags[victim_slot]);
        let victim_value = match self.values[victim_slot].take() {
            Some(v) => v,
            None => unreachable!("occupied slot has a value"),
        };
        self.tags[victim_slot] = tag;
        self.stamps[victim_slot] = stamp;
        self.values[victim_slot] = Some(value);
        Some((victim_line, victim_value))
    }

    /// Selects (without removing) the victim that [`SetAssocCache::insert`]
    /// would evict to make room for `line`, or `None` if the set still has a
    /// free way or already holds `line`.
    pub fn victim_for<P>(&self, line: CacheLine, policy: &P) -> Option<(CacheLine, &V)>
    where
        P: EvictionPriority<V> + ?Sized,
    {
        let base = self.set_base(line);
        let assoc = self.associativity;
        let tag = line.index();
        for slot in base..base + assoc {
            if self.stamps[slot] == 0 || self.tags[slot] == tag {
                return None;
            }
        }
        (base..base + assoc)
            .min_by_key(|&slot| {
                let priority = match &self.values[slot] {
                    Some(v) => policy.priority(v),
                    None => unreachable!("occupied slot has a value"),
                };
                (priority, self.stamps[slot])
            })
            .and_then(|slot| {
                self.values[slot]
                    .as_ref()
                    .map(|v| (CacheLine::from_index(self.tags[slot]), v))
            })
    }

    /// Removes `line` and returns its entry, or `None` if it was not
    /// resident.
    pub fn remove(&mut self, line: CacheLine) -> Option<V> {
        let slot = self.slot_of(line)?;
        self.len -= 1;
        self.tags[slot] = VACANT_TAG;
        self.stamps[slot] = 0;
        self.values[slot].take()
    }

    /// Removes every entry, leaving the geometry unchanged.
    pub fn clear(&mut self) {
        self.tags.fill(VACANT_TAG);
        self.stamps.fill(0);
        for value in &mut self.values {
            *value = None;
        }
        self.len = 0;
    }

    /// Iterates over all resident `(line, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (CacheLine, &V)> {
        self.tags
            .iter()
            .zip(&self.stamps)
            .zip(&self.values)
            .filter(|((_, stamp), _)| **stamp != 0)
            .filter_map(|((tag, _), value)| {
                value.as_ref().map(|v| (CacheLine::from_index(*tag), v))
            })
    }

    /// Iterates mutably over all resident `(line, entry)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (CacheLine, &mut V)> {
        self.tags
            .iter()
            .zip(&self.stamps)
            .zip(&mut self.values)
            .filter(|((_, stamp), _)| **stamp != 0)
            .filter_map(|((tag, _), value)| {
                value.as_mut().map(|v| (CacheLine::from_index(*tag), v))
            })
    }

    /// Occupancy of the set that `line` maps to, as `(resident, ways)`.
    pub fn set_occupancy(&self, line: CacheLine) -> (usize, usize) {
        let base = self.set_base(line);
        let resident = (base..base + self.associativity)
            .filter(|&slot| self.stamps[slot] != 0)
            .count();
        (resident, self.associativity)
    }

    /// Lines resident in the same set as `line` (including `line` itself if
    /// resident), most recently used last.
    pub fn set_contents(&self, line: CacheLine) -> Vec<CacheLine> {
        let base = self.set_base(line);
        let mut ways: Vec<(u64, u64)> = (base..base + self.associativity)
            .filter(|&slot| self.stamps[slot] != 0)
            .map(|slot| (self.stamps[slot], self.tags[slot]))
            .collect();
        ways.sort_unstable();
        ways.into_iter()
            .map(|(_, tag)| CacheLine::from_index(tag))
            .collect()
    }

    /// Collects the resident lines into a map (diagnostics / tests).
    pub fn to_map(&self) -> HashMap<CacheLine, &V> {
        self.iter().collect()
    }

    /// Iterates over occupied slots as `(slot, tag, lru_stamp, value)` in
    /// slot order, for checkpointing.  Together with [`SetAssocCache::clock`]
    /// this captures the array exactly: replaying the tuples through
    /// [`SetAssocCache::restore_slot`] and [`SetAssocCache::set_clock`]
    /// reproduces every future lookup, promotion and victim choice.
    pub fn slots(&self) -> impl Iterator<Item = (usize, u64, u64, &V)> {
        self.stamps
            .iter()
            .enumerate()
            .filter(|(_, stamp)| **stamp != 0)
            .filter_map(|(slot, stamp)| {
                self.values[slot]
                    .as_ref()
                    .map(|v| (slot, self.tags[slot], *stamp, v))
            })
    }

    /// The global LRU clock (for checkpointing).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Re-occupies `slot` with a checkpointed `(tag, stamp, value)` tuple.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or already occupied, or if `stamp`
    /// is `0` (the vacancy marker) — a checkpoint only records live slots.
    pub fn restore_slot(&mut self, slot: usize, tag: u64, stamp: u64, value: V) {
        assert!(slot < self.stamps.len(), "slot {slot} out of range");
        assert!(self.stamps[slot] == 0, "slot {slot} is already occupied");
        assert!(stamp != 0, "stamp 0 marks a vacant slot");
        self.tags[slot] = tag;
        self.stamps[slot] = stamp;
        self.values[slot] = Some(value);
        self.len += 1;
    }

    /// Restores the global LRU clock.
    ///
    /// # Panics
    ///
    /// Panics if `clock` is older than a resident stamp: the next tick must
    /// out-rank every live line, exactly as in the checkpointed array.
    pub fn set_clock(&mut self, clock: u64) {
        let newest = self.stamps.iter().copied().max().unwrap_or(0);
        assert!(
            clock >= newest,
            "clock {clock} is older than resident stamp {newest}"
        );
        self.clock = clock;
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::{PlainLru, SharerAwareLru};

    fn line(i: u64) -> CacheLine {
        CacheLine::from_index(i)
    }

    #[test]
    fn geometry_accessors() {
        let c: SetAssocCache<()> = SetAssocCache::new(8, 4);
        assert_eq!(c.num_sets(), 8);
        assert_eq!(c.associativity(), 4);
        assert_eq!(c.capacity(), 32);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _: SetAssocCache<()> = SetAssocCache::new(6, 2);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn rejects_zero_ways() {
        let _: SetAssocCache<()> = SetAssocCache::new(4, 0);
    }

    #[test]
    fn insert_and_get() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(c.insert(line(1), "a", &PlainLru).is_none());
        assert!(c.insert(line(5), "b", &PlainLru).is_none());
        assert_eq!(c.get(line(1)), Some(&"a"));
        assert_eq!(c.get(line(5)), Some(&"b"));
        assert_eq!(c.get(line(9)), None);
        assert_eq!(c.len(), 2);
        assert!(c.contains(line(1)));
        assert!(!c.contains(line(9)));
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = SetAssocCache::new(4, 1);
        c.insert(line(0), 1, &PlainLru);
        let evicted = c.insert(line(0), 2, &PlainLru);
        assert!(evicted.is_none());
        assert_eq!(c.get(line(0)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // One set (all lines map to set 0 with 1 set), 2 ways.
        let mut c = SetAssocCache::new(1, 2);
        c.insert(line(1), 'a', &PlainLru);
        c.insert(line(2), 'b', &PlainLru);
        // Touch line 1 so line 2 becomes LRU.
        assert_eq!(c.get(line(1)), Some(&'a'));
        let evicted = c.insert(line(3), 'c', &PlainLru).expect("eviction");
        assert_eq!(evicted, (line(2), 'b'));
        assert!(c.contains(line(1)));
        assert!(c.contains(line(3)));
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(line(1), 'a', &PlainLru);
        c.insert(line(2), 'b', &PlainLru);
        // Peek at line 1 -- it must still be the LRU victim.
        assert_eq!(c.peek(line(1)), Some(&'a'));
        let evicted = c.insert(line(3), 'c', &PlainLru).expect("eviction");
        assert_eq!(evicted.0, line(1));
    }

    #[test]
    fn get_mut_and_peek_mut() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(line(0), 10, &PlainLru);
        *c.get_mut(line(0)).unwrap() += 5;
        *c.peek_mut(line(0)).unwrap() += 1;
        assert_eq!(c.peek(line(0)), Some(&16));
        assert!(c.get_mut(line(7)).is_none());
        assert!(c.peek_mut(line(7)).is_none());
    }

    #[test]
    fn remove_and_clear() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(line(0), 'x', &PlainLru);
        c.insert(line(1), 'y', &PlainLru);
        assert_eq!(c.remove(line(0)), Some('x'));
        assert_eq!(c.remove(line(0)), None);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(line(1)));
    }

    #[test]
    fn set_mapping_uses_low_bits() {
        let mut c = SetAssocCache::new(4, 1);
        // Lines 0 and 4 collide (set 0); lines 1..3 go to their own sets.
        c.insert(line(0), 0, &PlainLru);
        c.insert(line(1), 1, &PlainLru);
        c.insert(line(2), 2, &PlainLru);
        c.insert(line(3), 3, &PlainLru);
        assert_eq!(c.len(), 4);
        let evicted = c.insert(line(4), 4, &PlainLru).expect("conflict eviction");
        assert_eq!(evicted.0, line(0));
        assert_eq!(c.set_occupancy(line(4)), (1, 1));
    }

    #[test]
    fn victim_for_matches_insert() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(line(1), 'a', &PlainLru);
        assert!(
            c.victim_for(line(9), &PlainLru).is_none(),
            "set not yet full"
        );
        c.insert(line(2), 'b', &PlainLru);
        assert!(
            c.victim_for(line(1), &PlainLru).is_none(),
            "already resident"
        );
        let predicted = c.victim_for(line(3), &PlainLru).map(|(l, _)| l).unwrap();
        let actual = c.insert(line(3), 'c', &PlainLru).unwrap().0;
        assert_eq!(predicted, actual);
    }

    #[test]
    fn sharer_aware_priority_overrides_recency() {
        // Entry value = number of L1 sharers.
        #[derive(Debug, Clone)]
        struct Entry {
            sharers: usize,
        }
        struct BySharers;
        impl EvictionPriority<Entry> for BySharers {
            fn priority(&self, e: &Entry) -> u64 {
                e.sharers as u64
            }
        }
        let mut c = SetAssocCache::new(1, 3);
        c.insert(line(1), Entry { sharers: 2 }, &BySharers);
        c.insert(line(2), Entry { sharers: 0 }, &BySharers);
        c.insert(line(3), Entry { sharers: 1 }, &BySharers);
        // Touch line 2 so it is the MRU, but it still has 0 sharers and must
        // be the victim under the sharer-aware policy.
        c.get(line(2));
        let evicted = c.insert(line(4), Entry { sharers: 0 }, &BySharers).unwrap();
        assert_eq!(evicted.0, line(2));
    }

    #[test]
    fn sharer_aware_lru_wrapper() {
        // SharerAwareLru works with any entry type exposing a sharer count
        // through the SharerCount trait.
        use crate::replacement::SharerCount;
        #[derive(Debug)]
        struct E(usize);
        impl SharerCount for E {
            fn l1_sharer_count(&self) -> usize {
                self.0
            }
        }
        let mut c = SetAssocCache::new(1, 2);
        c.insert(line(1), E(3), &SharerAwareLru);
        c.insert(line(2), E(0), &SharerAwareLru);
        c.get(line(2)); // MRU but sharer-free
        let evicted = c.insert(line(3), E(1), &SharerAwareLru).unwrap();
        assert_eq!(evicted.0, line(2));
        // Plain LRU on the same history would have evicted line 1 instead.
        let mut c = SetAssocCache::new(1, 2);
        c.insert(line(1), E(3), &PlainLru);
        c.insert(line(2), E(0), &PlainLru);
        c.get(line(2));
        let evicted = c.insert(line(3), E(1), &PlainLru).unwrap();
        assert_eq!(evicted.0, line(1));
    }

    #[test]
    fn iter_and_to_map() {
        let mut c = SetAssocCache::new(4, 2);
        for i in 0..6 {
            c.insert(line(i), i, &PlainLru);
        }
        let map = c.to_map();
        assert_eq!(map.len(), 6);
        assert_eq!(map[&line(3)], &3);
        for (_, v) in c.iter_mut() {
            *v += 100;
        }
        assert_eq!(c.peek(line(3)), Some(&103));
    }

    #[test]
    fn slot_snapshot_restores_exact_lru_behavior() {
        let mut c = SetAssocCache::new(2, 2);
        for i in 0..5 {
            c.insert(line(i), i, &PlainLru);
        }
        c.get(line(1));

        let mut restored: SetAssocCache<u64> = SetAssocCache::new(2, 2);
        let slots: Vec<_> = c
            .slots()
            .map(|(slot, tag, stamp, v)| (slot, tag, stamp, *v))
            .collect();
        for (slot, tag, stamp, v) in slots {
            restored.restore_slot(slot, tag, stamp, v);
        }
        restored.set_clock(c.clock());

        assert_eq!(restored.len(), c.len());
        assert_eq!(restored.clock(), c.clock());
        // The restored array makes the same victim choice and hands out the
        // same next stamp.
        let expect = c.insert(line(9), 9, &PlainLru);
        let got = restored.insert(line(9), 9, &PlainLru);
        assert_eq!(expect, got);
        assert_eq!(restored.clock(), c.clock());
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn restore_slot_rejects_double_occupancy() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(2, 2);
        c.restore_slot(0, 4, 1, 7);
        c.restore_slot(0, 6, 2, 8);
    }

    #[test]
    #[should_panic(expected = "older than resident stamp")]
    fn set_clock_rejects_stale_clocks() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(2, 2);
        c.restore_slot(0, 4, 5, 7);
        c.set_clock(3);
    }

    #[test]
    fn set_contents_ordered_by_recency() {
        let mut c = SetAssocCache::new(1, 3);
        c.insert(line(1), (), &PlainLru);
        c.insert(line(2), (), &PlainLru);
        c.insert(line(3), (), &PlainLru);
        c.get(line(1));
        assert_eq!(c.set_contents(line(0)), vec![line(2), line(3), line(1)]);
    }
}
