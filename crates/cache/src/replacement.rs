//! Victim-selection policies for the set-associative arrays.
//!
//! The array evicts the way with the lowest `(priority, recency)` pair, so a
//! policy only has to assign a priority to each resident entry:
//!
//! * [`PlainLru`] gives every entry the same priority, which degenerates to
//!   classic least-recently-used.
//! * [`SharerAwareLru`] implements the paper's modified LLC replacement
//!   policy (Section 2.2.4): "first select cache lines with the least number
//!   of L1 cache copies and then choose the least recently used among them".
//!   The number of L1 copies is read straight from the in-cache directory
//!   entry through the [`SharerCount`] trait, so no extra hint messages are
//!   needed (unlike the Temporal-Locality-Hint schemes the paper cites).

/// Assigns an eviction priority to resident entries; entries with the
/// *lowest* priority are evicted first, ties broken by LRU order.
pub trait EvictionPriority<V: ?Sized> {
    /// Priority of `entry`; lower values are evicted first.
    fn priority(&self, entry: &V) -> u64;
}

/// Classic least-recently-used replacement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlainLru;

impl<V: ?Sized> EvictionPriority<V> for PlainLru {
    fn priority(&self, _entry: &V) -> u64 {
        0
    }
}

/// Exposes the number of L1 caches currently holding a copy of an LLC line.
///
/// Implemented by the LLC directory entry types so that
/// [`SharerAwareLru`] can prioritize retaining lines with live L1 copies.
pub trait SharerCount {
    /// Number of L1 caches that hold a copy of this line (replica L1s and the
    /// local L1 both count).
    fn l1_sharer_count(&self) -> usize;
}

/// The paper's modified LLC replacement policy (Section 2.2.4): evict lines
/// with the fewest L1 sharers first, then least-recently-used among them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharerAwareLru;

impl<V: SharerCount + ?Sized> EvictionPriority<V> for SharerAwareLru {
    fn priority(&self, entry: &V) -> u64 {
        entry.l1_sharer_count() as u64
    }
}

/// A priority function supplied as a closure, for tests and ad-hoc policies.
#[derive(Debug, Clone, Copy)]
pub struct PriorityFn<F>(pub F);

impl<V: ?Sized, F: Fn(&V) -> u64> EvictionPriority<V> for PriorityFn<F> {
    fn priority(&self, entry: &V) -> u64 {
        (self.0)(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Entry {
        sharers: usize,
    }

    impl SharerCount for Entry {
        fn l1_sharer_count(&self) -> usize {
            self.sharers
        }
    }

    #[test]
    fn plain_lru_is_constant() {
        let p = PlainLru;
        assert_eq!(
            EvictionPriority::<Entry>::priority(&p, &Entry { sharers: 0 }),
            0
        );
        assert_eq!(
            EvictionPriority::<Entry>::priority(&p, &Entry { sharers: 9 }),
            0
        );
    }

    #[test]
    fn sharer_aware_tracks_sharer_count() {
        let p = SharerAwareLru;
        assert_eq!(p.priority(&Entry { sharers: 0 }), 0);
        assert_eq!(p.priority(&Entry { sharers: 3 }), 3);
        assert!(p.priority(&Entry { sharers: 1 }) < p.priority(&Entry { sharers: 2 }));
    }

    #[test]
    fn priority_fn_adapter() {
        let p = PriorityFn(|e: &Entry| 10 - e.sharers as u64);
        assert_eq!(p.priority(&Entry { sharers: 4 }), 6);
    }
}
