//! One slice of the physically distributed, logically shared last-level
//! cache.
//!
//! Each tile owns a 256 KB, 8-way slice (Table 1).  A slice stores *home*
//! lines (lines whose directory entry lives here) and, under the
//! replication schemes, *replica* lines for the local core.  Both kinds of
//! entries carry metadata supplied by the protocol layer as the generic type
//! `V`; this module only manages geometry, recency, victim selection and
//! hit/miss accounting.
//!
//! Victim selection uses the paper's sharer-aware modified-LRU policy by
//! default ([`SharerAwareLru`]) but can be switched to plain LRU to
//! reproduce the Section 4.2 comparison.

use lad_common::config::CacheConfig;
use lad_common::stats::Counter;
use lad_common::types::CacheLine;

use crate::replacement::{EvictionPriority, PlainLru, SharerAwareLru, SharerCount};
use crate::set_assoc::SetAssocCache;

/// Which victim-selection policy an LLC slice uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LlcReplacementPolicy {
    /// The paper's modified LRU: fewest L1 sharers first, then LRU
    /// (Section 2.2.4).  This is the default.
    #[default]
    SharerAwareLru,
    /// Plain LRU, used as the comparison point in Section 4.2.
    PlainLru,
}

/// One LLC slice holding entries of type `V`.
///
/// `V` must expose its L1 sharer count (via [`SharerCount`]) so the
/// sharer-aware replacement policy can consult the in-cache directory.
#[derive(Debug, Clone)]
pub struct LlcSlice<V> {
    array: SetAssocCache<V>,
    policy: LlcReplacementPolicy,
    tag_latency: u32,
    data_latency: u32,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl<V: SharerCount> LlcSlice<V> {
    /// Builds a slice from its configuration and line size, using the
    /// paper's sharer-aware replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not form whole power-of-two sets.
    pub fn new(config: &CacheConfig, line_bytes: usize) -> Self {
        Self::with_policy(config, line_bytes, LlcReplacementPolicy::SharerAwareLru)
    }

    /// Builds a slice with an explicit replacement policy.
    pub fn with_policy(
        config: &CacheConfig,
        line_bytes: usize,
        policy: LlcReplacementPolicy,
    ) -> Self {
        LlcSlice {
            array: SetAssocCache::new(config.num_sets(line_bytes), config.associativity),
            policy,
            tag_latency: config.tag_latency,
            data_latency: config.data_latency,
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Latency of a tag-array lookup (e.g. a directory probe), in cycles.
    pub fn tag_latency(&self) -> u32 {
        self.tag_latency
    }

    /// Latency of a full tag + data access, in cycles.
    pub fn access_latency(&self) -> u32 {
        self.tag_latency + self.data_latency
    }

    /// The active replacement policy.
    pub fn replacement_policy(&self) -> LlcReplacementPolicy {
        self.policy
    }

    /// Looks up `line`, recording a hit or miss; returns its entry on a hit.
    pub fn access(&mut self, line: CacheLine) -> Option<&mut V> {
        // Single tag scan: get_mut both finds the way and promotes it.
        match self.array.get_mut(line) {
            Some(entry) => {
                self.hits.increment();
                Some(entry)
            }
            None => {
                self.misses.increment();
                None
            }
        }
    }

    /// Probes for `line` without statistics or LRU update (asynchronous
    /// coherence requests).
    pub fn probe(&self, line: CacheLine) -> Option<&V> {
        self.array.peek(line)
    }

    /// Probes mutably without statistics or LRU update.
    pub fn probe_mut(&mut self, line: CacheLine) -> Option<&mut V> {
        self.array.peek_mut(line)
    }

    /// Returns `true` if `line` is resident in this slice.
    pub fn contains(&self, line: CacheLine) -> bool {
        self.array.contains(line)
    }

    /// Inserts `line`, evicting a victim according to the active policy.
    /// Returns the evicted `(line, entry)` pair, if any.
    pub fn fill(&mut self, line: CacheLine, entry: V) -> Option<(CacheLine, V)> {
        let evicted = match self.policy {
            LlcReplacementPolicy::SharerAwareLru => self.array.insert(line, entry, &SharerAwareLru),
            LlcReplacementPolicy::PlainLru => self.array.insert(line, entry, &PlainLru),
        };
        if evicted.is_some() {
            self.evictions.increment();
        }
        evicted
    }

    /// Predicts the victim a [`LlcSlice::fill`] of `line` would evict without
    /// performing the fill.  `None` if the set has space or already holds
    /// `line`.
    pub fn victim_for(&self, line: CacheLine) -> Option<(CacheLine, &V)> {
        match self.policy {
            LlcReplacementPolicy::SharerAwareLru => self.array.victim_for(line, &SharerAwareLru),
            LlcReplacementPolicy::PlainLru => self.array.victim_for(line, &PlainLru),
        }
    }

    /// Removes `line` (invalidation or replacement elsewhere), returning its
    /// entry if it was resident.
    pub fn invalidate(&mut self, line: CacheLine) -> Option<V> {
        self.array.remove(line)
    }

    /// Number of lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.value()
    }

    /// Number of lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.value()
    }

    /// Number of fills that evicted a victim.
    pub fn evictions(&self) -> u64 {
        self.evictions.value()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Returns `true` if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.array.capacity()
    }

    /// Occupancy as a fraction of capacity in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.array.len() as f64 / self.array.capacity() as f64
    }

    /// Iterates over resident `(line, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CacheLine, &V)> {
        self.array.iter()
    }

    /// Iterates mutably over resident `(line, entry)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (CacheLine, &mut V)> {
        self.array.iter_mut()
    }

    /// Inserts with an arbitrary policy (used by unit tests and the
    /// replacement-policy ablation study).
    pub fn fill_with<P>(&mut self, line: CacheLine, entry: V, policy: &P) -> Option<(CacheLine, V)>
    where
        P: EvictionPriority<V> + ?Sized,
    {
        let evicted = self.array.insert(line, entry, policy);
        if evicted.is_some() {
            self.evictions.increment();
        }
        evicted
    }

    pub(crate) fn array(&self) -> &SetAssocCache<V> {
        &self.array
    }

    pub(crate) fn array_mut(&mut self) -> &mut SetAssocCache<V> {
        &mut self.array
    }

    pub(crate) fn set_counters(&mut self, hits: Counter, misses: Counter, evictions: Counter) {
        self.hits = hits;
        self.misses = misses;
        self.evictions = evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Entry {
        sharers: usize,
        tag: u32,
    }

    impl SharerCount for Entry {
        fn l1_sharer_count(&self) -> usize {
            self.sharers
        }
    }

    fn config() -> CacheConfig {
        // 16 lines, 4-way => 4 sets.
        CacheConfig {
            capacity_bytes: 16 * 64,
            associativity: 4,
            tag_latency: 2,
            data_latency: 4,
        }
    }

    fn line(i: u64) -> CacheLine {
        CacheLine::from_index(i)
    }

    fn entry(sharers: usize, tag: u32) -> Entry {
        Entry { sharers, tag }
    }

    #[test]
    fn latencies_match_config() {
        let slice: LlcSlice<Entry> = LlcSlice::new(&config(), 64);
        assert_eq!(slice.tag_latency(), 2);
        assert_eq!(slice.access_latency(), 6);
        assert_eq!(slice.capacity(), 16);
        assert_eq!(
            slice.replacement_policy(),
            LlcReplacementPolicy::SharerAwareLru
        );
    }

    #[test]
    fn access_and_probe_accounting() {
        let mut slice = LlcSlice::new(&config(), 64);
        assert!(slice.access(line(0)).is_none());
        slice.fill(line(0), entry(0, 1));
        assert!(slice.access(line(0)).is_some());
        assert!(slice.probe(line(0)).is_some());
        assert_eq!(slice.hits(), 1);
        assert_eq!(slice.misses(), 1);
        slice.probe_mut(line(0)).unwrap().tag = 9;
        assert_eq!(slice.probe(line(0)).unwrap().tag, 9);
    }

    #[test]
    fn sharer_aware_default_prefers_keeping_shared_lines() {
        let mut slice = LlcSlice::new(&config(), 64);
        // All map to set 0: lines 0, 4, 8, 12, 16 with 4 sets.
        slice.fill(line(0), entry(2, 0));
        slice.fill(line(4), entry(0, 4));
        slice.fill(line(8), entry(3, 8));
        slice.fill(line(12), entry(1, 12));
        // Touch the sharer-free line to make it MRU; it must still be evicted.
        slice.access(line(4));
        let (victim, _) = slice.fill(line(16), entry(0, 16)).expect("eviction");
        assert_eq!(victim, line(4));
        assert_eq!(slice.evictions(), 1);
    }

    #[test]
    fn plain_lru_policy_evicts_by_recency_only() {
        let mut slice = LlcSlice::with_policy(&config(), 64, LlcReplacementPolicy::PlainLru);
        slice.fill(line(0), entry(2, 0));
        slice.fill(line(4), entry(0, 4));
        slice.fill(line(8), entry(3, 8));
        slice.fill(line(12), entry(1, 12));
        slice.access(line(0)); // line 4 becomes LRU
        let (victim, _) = slice.fill(line(16), entry(0, 16)).expect("eviction");
        assert_eq!(victim, line(4));
        // but if we touch 4 and not 0, plain LRU evicts 0 even though it has sharers
        let mut slice = LlcSlice::with_policy(&config(), 64, LlcReplacementPolicy::PlainLru);
        slice.fill(line(0), entry(2, 0));
        slice.fill(line(4), entry(0, 4));
        slice.fill(line(8), entry(3, 8));
        slice.fill(line(12), entry(1, 12));
        slice.access(line(4));
        slice.access(line(8));
        slice.access(line(12));
        let (victim, _) = slice.fill(line(16), entry(0, 16)).expect("eviction");
        assert_eq!(victim, line(0));
    }

    #[test]
    fn victim_prediction_matches_fill() {
        let mut slice = LlcSlice::new(&config(), 64);
        for i in [0u64, 4, 8, 12] {
            slice.fill(line(i), entry((i % 3) as usize, i as u32));
        }
        let predicted = slice.victim_for(line(16)).map(|(l, _)| l).unwrap();
        let actual = slice.fill(line(16), entry(0, 16)).unwrap().0;
        assert_eq!(predicted, actual);
        assert!(slice.victim_for(line(16)).is_none(), "line now resident");
    }

    #[test]
    fn invalidate_and_occupancy() {
        let mut slice = LlcSlice::new(&config(), 64);
        slice.fill(line(1), entry(0, 1));
        slice.fill(line(2), entry(0, 2));
        assert_eq!(slice.len(), 2);
        assert!((slice.occupancy() - 2.0 / 16.0).abs() < 1e-12);
        assert_eq!(slice.invalidate(line(1)), Some(entry(0, 1)));
        assert_eq!(slice.invalidate(line(1)), None);
        assert_eq!(slice.len(), 1);
        assert!(!slice.is_empty());
        assert_eq!(slice.iter().count(), 1);
        for (_, e) in slice.iter_mut() {
            e.sharers += 1;
        }
        assert_eq!(slice.probe(line(2)).unwrap().sharers, 1);
    }
}
