//! Link occupancy tracking and aggregate network statistics.

use lad_common::stats::Histogram;
use lad_common::types::Cycle;

use crate::message::MessageKind;

/// Occupancy state of one unidirectional link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkState {
    /// Cycle until which the link is busy serializing earlier messages.
    pub busy_until: Cycle,
    /// Total flits that have crossed this link.
    pub flits: u64,
}

/// Aggregate traffic statistics, used for diagnostics and by the energy
/// model (router traversals and link-flit traversals are the two dynamic
/// energy events of the NoC).
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    messages: u64,
    control_messages: u64,
    data_messages: u64,
    flit_hops: u64,
    router_traversals: u64,
    latency: Histogram,
}

impl NetworkStats {
    /// Records one delivered message.
    pub(crate) fn record(&mut self, kind: MessageKind, hops: usize, flits: usize, latency: Cycle) {
        self.messages += 1;
        match kind {
            MessageKind::Control => self.control_messages += 1,
            MessageKind::Data => self.data_messages += 1,
        }
        self.flit_hops += (hops * flits) as u64;
        // Every message traverses (hops + 1) routers, including the local
        // injection router; flits are buffered/switched at each.
        self.router_traversals += ((hops + 1) * flits) as u64;
        self.latency.record(latency.value());
    }

    /// Total messages delivered.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Control (single-flit) messages delivered.
    pub fn control_messages(&self) -> u64 {
        self.control_messages
    }

    /// Data (cache-line) messages delivered.
    pub fn data_messages(&self) -> u64 {
        self.data_messages
    }

    /// Total flit × link-hop traversals (drives link energy).
    pub fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    /// Total flit × router traversals (drives router energy).
    pub fn router_traversals(&self) -> u64 {
        self.router_traversals
    }

    /// Mean delivered latency in cycles, or `None` if no messages were sent.
    pub fn mean_latency(&self) -> Option<f64> {
        self.latency.mean()
    }

    /// Largest delivered latency.
    pub fn max_latency(&self) -> Cycle {
        Cycle::new(self.latency.max())
    }

    /// The delivered-latency histogram as sorted `(latency, count)` pairs
    /// (for checkpointing).
    pub fn latency_distribution(&self) -> Vec<(u64, u64)> {
        self.latency.iter().collect()
    }

    pub(crate) fn from_parts(
        messages: u64,
        control_messages: u64,
        data_messages: u64,
        flit_hops: u64,
        router_traversals: u64,
        latency: &[(u64, u64)],
    ) -> Self {
        let mut histogram = Histogram::new();
        for &(value, count) in latency {
            histogram.record_weighted(value, count);
        }
        NetworkStats {
            messages,
            control_messages,
            data_messages,
            flit_hops,
            router_traversals,
            latency: histogram,
        }
    }
}

/// Plain-data state of a [`crate::Network`] for checkpoint/resume: link
/// occupancy plus the aggregate statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkState {
    /// Per-link occupancy, in link-index order.
    pub links: Vec<LinkState>,
    /// Total messages delivered.
    pub messages: u64,
    /// Control messages delivered.
    pub control_messages: u64,
    /// Data messages delivered.
    pub data_messages: u64,
    /// Flit × link-hop traversals.
    pub flit_hops: u64,
    /// Flit × router traversals.
    pub router_traversals: u64,
    /// Delivered-latency histogram as sorted `(latency, count)` pairs.
    pub latency: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_kind() {
        let mut stats = NetworkStats::default();
        stats.record(MessageKind::Data, 2, 9, Cycle::new(12));
        stats.record(MessageKind::Control, 3, 1, Cycle::new(6));
        assert_eq!(stats.messages(), 2);
        assert_eq!(stats.data_messages(), 1);
        assert_eq!(stats.control_messages(), 1);
        assert_eq!(stats.flit_hops(), 2 * 9 + 3);
        assert_eq!(stats.router_traversals(), 3 * 9 + 4);
        assert_eq!(stats.max_latency(), Cycle::new(12));
        assert!((stats.mean_latency().unwrap() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn default_link_state_is_idle() {
        let link = LinkState::default();
        assert_eq!(link.busy_until, Cycle::ZERO);
        assert_eq!(link.flits, 0);
    }
}
