//! Network message kinds and delivery results.

use lad_common::types::Cycle;

/// The two sizes of message the coherence protocol exchanges.
///
/// Table 1: a header (source, destination, address, message type) fits in a
/// single 64-bit flit; a cache line adds 8 more flits.  The locality-aware
/// protocol piggybacks the 2-bit replica-reuse counter in the header's spare
/// bits (Section 2.4.3), so no message grows by carrying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Header-only message: requests, invalidations, acknowledgements,
    /// downgrades.
    Control,
    /// Header + cache-line payload: data replies, write-backs.
    Data,
}

impl MessageKind {
    /// `true` if the message carries a cache-line payload.
    pub fn carries_data(self) -> bool {
        matches!(self, MessageKind::Data)
    }
}

/// The outcome of injecting one message into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Cycle at which the tail flit arrives at the destination.
    pub arrival: Cycle,
    /// Total latency experienced by the message (arrival − injection).
    pub latency: Cycle,
    /// Number of router-to-router hops traversed.
    pub hops: usize,
    /// Number of flits in the message.
    pub flits: usize,
}

impl Delivery {
    /// A delivery that took no network time (local, same-tile communication).
    pub fn local(now: Cycle) -> Self {
        Delivery {
            arrival: now,
            latency: Cycle::ZERO,
            hops: 0,
            flits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_kind_payload_flag() {
        assert!(MessageKind::Data.carries_data());
        assert!(!MessageKind::Control.carries_data());
    }

    #[test]
    fn local_delivery_is_free() {
        let d = Delivery::local(Cycle::new(42));
        assert_eq!(d.arrival, Cycle::new(42));
        assert_eq!(d.latency, Cycle::ZERO);
        assert_eq!(d.hops, 0);
        assert_eq!(d.flits, 0);
    }
}
