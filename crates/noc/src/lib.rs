//! Electrical 2-D mesh network-on-chip model.
//!
//! The paper's target (Table 1) uses an electrical 2-D mesh with XY routing,
//! a 2-cycle per-hop latency (1 router + 1 link), 64-bit flits, 1-flit
//! headers and 8-flit cache-line payloads.  In addition to the fixed per-hop
//! latency, *link contention* delays are modelled: each unidirectional link
//! serializes the flits of the messages crossing it, so a message arriving at
//! a busy link waits for the link to drain.
//!
//! The model is transaction-level: [`Network::send`] computes the delivery
//! latency of one message injected at a given cycle, updates the per-link
//! occupancy used for contention, and records the event counts
//! (router traversals and link-flit traversals) that drive the energy model.
//!
//! # Example
//!
//! ```
//! use lad_common::config::SystemConfig;
//! use lad_common::types::{CoreId, Cycle};
//! use lad_noc::{MessageKind, Network};
//!
//! let config = SystemConfig::paper_default();
//! let mut net = Network::new(&config.network, config.cache_line_bytes);
//! let delivery = net.send(CoreId::new(0), CoreId::new(63), MessageKind::Data, Cycle::ZERO);
//! // 0 -> 63 on an 8x8 mesh is 7 + 7 = 14 hops at 2 cycles each, plus
//! // serialization of the 9-flit message.
//! assert_eq!(delivery.hops, 14);
//! assert!(delivery.latency.value() >= 28);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod message;
pub mod topology;

pub use contention::{LinkState, NetworkState, NetworkStats};
pub use message::{Delivery, MessageKind};
pub use topology::Mesh;

use lad_common::config::NetworkConfig;
use lad_common::types::{CoreId, Cycle};

/// The on-chip network: topology, timing and contention state.
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    hop_latency: u32,
    control_flits: usize,
    data_flits: usize,
    links: Vec<LinkState>,
    stats: NetworkStats,
    model_contention: bool,
}

impl Network {
    /// Builds a network from the architectural configuration and cache line
    /// size (which determines the data-message payload).
    ///
    /// # Panics
    ///
    /// Panics if the mesh dimensions are zero.
    pub fn new(config: &NetworkConfig, line_bytes: usize) -> Self {
        let mesh = Mesh::new(config.mesh_width, config.mesh_height);
        let num_links = mesh.num_links();
        Network {
            mesh,
            hop_latency: config.hop_latency,
            control_flits: config.control_message_flits(),
            data_flits: config.data_message_flits(line_bytes),
            links: vec![LinkState::default(); num_links],
            stats: NetworkStats::default(),
            model_contention: true,
        }
    }

    /// Disables the link-contention model (used by tests and by the
    /// contention ablation); the fixed hop latency and serialization delay
    /// are still applied.
    pub fn set_contention_modeling(&mut self, enabled: bool) {
        self.model_contention = enabled;
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Flits in a message of the given kind.
    pub fn message_flits(&self, kind: MessageKind) -> usize {
        match kind {
            MessageKind::Control => self.control_flits,
            MessageKind::Data => self.data_flits,
        }
    }

    /// Minimum (contention-free) one-way latency between two cores for a
    /// message of `kind`: per-hop latency plus flit serialization.
    pub fn base_latency(&self, src: CoreId, dst: CoreId, kind: MessageKind) -> Cycle {
        let hops = self.mesh.hops(src, dst) as u64;
        let serialization = self.message_flits(kind).saturating_sub(1) as u64;
        Cycle::new(hops * self.hop_latency as u64 + serialization)
    }

    /// Sends a message from `src` to `dst`, injected at cycle `now`.
    ///
    /// Returns the [`Delivery`] describing when it arrives, how many hops it
    /// took and how many flits it carried.  Local messages (`src == dst`)
    /// take zero network time.
    pub fn send(&mut self, src: CoreId, dst: CoreId, kind: MessageKind, now: Cycle) -> Delivery {
        let flits = self.message_flits(kind);
        let route = self.mesh.route_iter(src, dst);
        let hops = route.len();

        let mut arrival = now;
        if hops > 0 {
            // Serialization: the tail flit leaves (flits - 1) cycles after the
            // head flit.
            let mut head_time = now;
            for link in route {
                let link_state = &mut self.links[link];
                if self.model_contention {
                    let start = head_time.max(link_state.busy_until);
                    let finish = start + self.hop_latency as u64 + (flits - 1) as u64;
                    link_state.busy_until = finish;
                    link_state.flits += flits as u64;
                    head_time = start + self.hop_latency as u64;
                    arrival = finish;
                } else {
                    link_state.flits += flits as u64;
                    head_time += self.hop_latency as u64;
                    arrival = head_time + (flits - 1) as u64;
                }
            }
        }

        let latency = arrival.since(now);
        self.stats.record(kind, hops, flits, latency);
        Delivery {
            arrival,
            latency,
            hops,
            flits,
        }
    }

    /// Convenience: latency of a request/response round trip
    /// (`src -> dst` of `request` kind, then `dst -> src` of `response`
    /// kind), returning the final arrival cycle back at `src`.
    pub fn round_trip(
        &mut self,
        src: CoreId,
        dst: CoreId,
        request: MessageKind,
        response: MessageKind,
        now: Cycle,
    ) -> Delivery {
        let there = self.send(src, dst, request, now);
        let back = self.send(dst, src, response, there.arrival);
        Delivery {
            arrival: back.arrival,
            latency: back.arrival.since(now),
            hops: there.hops + back.hops,
            flits: there.flits + back.flits,
        }
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Resets traffic statistics and link occupancy (e.g. between the warmup
    /// and measured phases of a simulation).
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::default();
        for link in &mut self.links {
            *link = LinkState::default();
        }
    }

    /// Snapshots the link occupancy and statistics for checkpointing.
    pub fn state(&self) -> NetworkState {
        NetworkState {
            links: self.links.clone(),
            messages: self.stats.messages(),
            control_messages: self.stats.control_messages(),
            data_messages: self.stats.data_messages(),
            flit_hops: self.stats.flit_hops(),
            router_traversals: self.stats.router_traversals(),
            latency: self.stats.latency_distribution(),
        }
    }

    /// Restores a snapshot taken from a network of the same topology.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's link count does not match this mesh.
    pub fn restore_state(&mut self, state: &NetworkState) {
        assert_eq!(
            state.links.len(),
            self.links.len(),
            "link count mismatch: the snapshot is from a different mesh"
        );
        self.links.clone_from(&state.links);
        self.stats = NetworkStats::from_parts(
            state.messages,
            state.control_messages,
            state.data_messages,
            state.flit_hops,
            state.router_traversals,
            &state.latency,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_common::config::SystemConfig;

    fn network() -> Network {
        let config = SystemConfig::paper_default();
        Network::new(&config.network, config.cache_line_bytes)
    }

    #[test]
    fn message_sizes_match_table1() {
        let net = network();
        assert_eq!(net.message_flits(MessageKind::Control), 1);
        assert_eq!(net.message_flits(MessageKind::Data), 9);
    }

    #[test]
    fn base_latency_is_hops_times_hop_latency_plus_serialization() {
        let net = network();
        // Core 0 is at (0,0), core 9 is at (1,1) on an 8-wide mesh: 2 hops.
        let lat = net.base_latency(CoreId::new(0), CoreId::new(9), MessageKind::Control);
        assert_eq!(lat.value(), 4);
        let lat = net.base_latency(CoreId::new(0), CoreId::new(9), MessageKind::Data);
        assert_eq!(lat.value(), 4 + 8);
        // Local delivery is free.
        let lat = net.base_latency(CoreId::new(5), CoreId::new(5), MessageKind::Data);
        assert_eq!(lat.value(), 8); // serialization only, no hops
    }

    #[test]
    fn send_local_message_is_instant() {
        let mut net = network();
        let d = net.send(
            CoreId::new(3),
            CoreId::new(3),
            MessageKind::Data,
            Cycle::new(100),
        );
        assert_eq!(d.latency, Cycle::ZERO);
        assert_eq!(d.arrival, Cycle::new(100));
        assert_eq!(d.hops, 0);
    }

    #[test]
    fn send_matches_base_latency_without_contention() {
        let mut net = network();
        let src = CoreId::new(0);
        let dst = CoreId::new(63);
        let base = net.base_latency(src, dst, MessageKind::Data);
        let d = net.send(src, dst, MessageKind::Data, Cycle::ZERO);
        assert_eq!(d.latency, base);
        assert_eq!(d.hops, 14);
        assert_eq!(d.flits, 9);
    }

    #[test]
    fn contention_delays_second_message_on_same_link() {
        let mut net = network();
        let src = CoreId::new(0);
        let dst = CoreId::new(1);
        let first = net.send(src, dst, MessageKind::Data, Cycle::ZERO);
        let second = net.send(src, dst, MessageKind::Data, Cycle::ZERO);
        assert!(
            second.latency > first.latency,
            "second message must queue behind the first"
        );
        // Without contention modeling both take the base latency.
        let mut net = network();
        net.set_contention_modeling(false);
        let first = net.send(src, dst, MessageKind::Data, Cycle::ZERO);
        let second = net.send(src, dst, MessageKind::Data, Cycle::ZERO);
        assert_eq!(second.latency, first.latency);
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut net = network();
        let a = net.send(
            CoreId::new(0),
            CoreId::new(1),
            MessageKind::Data,
            Cycle::ZERO,
        );
        let b = net.send(
            CoreId::new(16),
            CoreId::new(17),
            MessageKind::Data,
            Cycle::ZERO,
        );
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn round_trip_adds_both_directions() {
        let mut net = network();
        let d = net.round_trip(
            CoreId::new(0),
            CoreId::new(7),
            MessageKind::Control,
            MessageKind::Data,
            Cycle::new(10),
        );
        assert_eq!(d.hops, 14);
        assert_eq!(d.flits, 10);
        assert!(d.arrival.value() > 10);
        // Round trip latency >= sum of base latencies.
        let net2 = network();
        let there = net2.base_latency(CoreId::new(0), CoreId::new(7), MessageKind::Control);
        let back = net2.base_latency(CoreId::new(7), CoreId::new(0), MessageKind::Data);
        assert!(d.latency.value() >= (there + back).value());
    }

    #[test]
    fn state_roundtrip_preserves_contention_and_stats() {
        let mut net = network();
        net.send(
            CoreId::new(0),
            CoreId::new(5),
            MessageKind::Data,
            Cycle::ZERO,
        );
        net.send(
            CoreId::new(0),
            CoreId::new(5),
            MessageKind::Control,
            Cycle::new(1),
        );

        let state = net.state();
        let mut restored = network();
        restored.restore_state(&state);
        assert_eq!(restored.state(), state);

        // The restored network queues a new message behind the same link
        // occupancy and keeps accumulating the same statistics.
        let expect = net.send(
            CoreId::new(0),
            CoreId::new(5),
            MessageKind::Data,
            Cycle::new(2),
        );
        let got = restored.send(
            CoreId::new(0),
            CoreId::new(5),
            MessageKind::Data,
            Cycle::new(2),
        );
        assert_eq!(got, expect);
        assert_eq!(restored.state(), net.state());
    }

    #[test]
    #[should_panic(expected = "different mesh")]
    fn restore_rejects_wrong_topology() {
        let net = network();
        let state = net.state();
        let small = SystemConfig::small_test();
        let mut other = Network::new(&small.network, small.cache_line_bytes);
        other.restore_state(&state);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut net = network();
        net.send(
            CoreId::new(0),
            CoreId::new(2),
            MessageKind::Data,
            Cycle::ZERO,
        );
        net.send(
            CoreId::new(0),
            CoreId::new(2),
            MessageKind::Control,
            Cycle::ZERO,
        );
        let stats = net.stats();
        assert_eq!(stats.messages(), 2);
        assert_eq!(stats.data_messages(), 1);
        assert_eq!(stats.control_messages(), 1);
        assert_eq!(stats.flit_hops(), 9 * 2 + 2);
        assert_eq!(stats.router_traversals(), (2 + 1) * 9 + (2 + 1));
        assert!(stats.max_latency().value() > 0);
        net.reset_stats();
        assert_eq!(net.stats().messages(), 0);
        assert_eq!(net.stats().flit_hops(), 0);
    }
}
