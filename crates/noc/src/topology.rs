//! Mesh topology and dimension-ordered (XY) routing.

use lad_common::types::CoreId;

/// A `width × height` 2-D mesh of tiles, numbered in row-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
}

/// Identifier of a unidirectional link.  Links are numbered so that every
/// ordered pair of adjacent routers has a distinct id.
pub type LinkId = usize;

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of router positions.
    pub fn num_routers(&self) -> usize {
        self.width * self.height
    }

    /// Number of unidirectional links (4 per router is an upper bound; the
    /// model simply allocates `4 * routers` slots and leaves edge links
    /// unused, trading a little memory for simple indexing).
    pub fn num_links(&self) -> usize {
        self.num_routers() * 4
    }

    /// `(x, y)` coordinates of a core.
    ///
    /// # Panics
    ///
    /// Panics if the core index is outside the mesh.
    pub fn position(&self, core: CoreId) -> (usize, usize) {
        let idx = core.index();
        assert!(
            idx < self.num_routers(),
            "core {idx} outside {}x{} mesh",
            self.width,
            self.height
        );
        (idx % self.width, idx / self.width)
    }

    /// Core at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn core_at(&self, x: usize, y: usize) -> CoreId {
        assert!(x < self.width && y < self.height, "({x},{y}) outside mesh");
        CoreId::new(y * self.width + x)
    }

    /// Manhattan hop distance between two cores (the XY route length).
    pub fn hops(&self, src: CoreId, dst: CoreId) -> usize {
        let (sx, sy) = self.position(src);
        let (dx, dy) = self.position(dst);
        sx.abs_diff(dx) + sy.abs_diff(dy)
    }

    /// The sequence of unidirectional links traversed by an XY-routed message
    /// from `src` to `dst` (X first, then Y).  Empty if `src == dst`.
    pub fn route(&self, src: CoreId, dst: CoreId) -> Vec<LinkId> {
        self.route_iter(src, dst).collect()
    }

    /// Iterator form of [`Mesh::route`]: yields the same links in the same
    /// order without allocating.  This is the hot path of
    /// [`Network::send`](crate::Network::send) — one message per coherence
    /// hop, several hops per L1 miss.
    pub fn route_iter(&self, src: CoreId, dst: CoreId) -> RouteIter {
        let (x, y) = self.position(src);
        let (dx, dy) = self.position(dst);
        RouteIter {
            width: self.width,
            x,
            y,
            dx,
            dy,
        }
    }

    /// The cores of the cluster (of `cluster_size` cores) containing `core`.
    ///
    /// Clusters are aligned contiguous blocks of the mesh: for cluster sizes
    /// that are perfect squares dividing the mesh (1, 4, 16, 64 on the
    /// 8×8 target) the cluster is the aligned `√s × √s` sub-mesh, mirroring
    /// Reactive-NUCA's fixed-center clusters.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_size` is zero.
    pub fn cluster_members(&self, core: CoreId, cluster_size: usize) -> Vec<CoreId> {
        assert!(cluster_size > 0, "cluster size must be positive");
        if cluster_size == 1 {
            return vec![core];
        }
        if cluster_size >= self.num_routers() {
            return (0..self.num_routers()).map(CoreId::new).collect();
        }
        let side = (cluster_size as f64).sqrt().round() as usize;
        if side * side == cluster_size
            && self.width.is_multiple_of(side)
            && self.height.is_multiple_of(side)
        {
            let (x, y) = self.position(core);
            let bx = (x / side) * side;
            let by = (y / side) * side;
            let mut members = Vec::with_capacity(cluster_size);
            for yy in by..by + side {
                for xx in bx..bx + side {
                    members.push(self.core_at(xx, yy));
                }
            }
            members
        } else {
            // Fall back to index-contiguous clusters.
            let base = (core.index() / cluster_size) * cluster_size;
            (base..(base + cluster_size).min(self.num_routers()))
                .map(CoreId::new)
                .collect()
        }
    }

    /// The designated replica-home core of `core`'s cluster for a given line:
    /// the cluster member chosen by interleaving the line index across the
    /// cluster (Reactive-NUCA's rotational interleaving analogue).
    ///
    /// Computes `cluster_members(core, s)[line % len]` directly — this runs
    /// once per L1 miss under clustered schemes, so it must not build the
    /// member list.
    pub fn cluster_slice_for_line(
        &self,
        core: CoreId,
        cluster_size: usize,
        line_index: u64,
    ) -> CoreId {
        assert!(cluster_size > 0, "cluster size must be positive");
        if cluster_size == 1 {
            return core;
        }
        let routers = self.num_routers();
        if cluster_size >= routers {
            return CoreId::new((line_index % routers as u64) as usize);
        }
        let side = (cluster_size as f64).sqrt().round() as usize;
        if side * side == cluster_size
            && self.width.is_multiple_of(side)
            && self.height.is_multiple_of(side)
        {
            let (x, y) = self.position(core);
            let bx = (x / side) * side;
            let by = (y / side) * side;
            let k = (line_index % cluster_size as u64) as usize;
            self.core_at(bx + k % side, by + k / side)
        } else {
            // Index-contiguous fallback, possibly truncated at the mesh edge.
            let base = (core.index() / cluster_size) * cluster_size;
            let len = (base + cluster_size).min(routers) - base;
            CoreId::new(base + (line_index % len as u64) as usize)
        }
    }
}

/// Non-allocating iterator over the links of one XY route
/// (see [`Mesh::route_iter`]).
#[derive(Debug, Clone)]
pub struct RouteIter {
    width: usize,
    x: usize,
    y: usize,
    dx: usize,
    dy: usize,
}

impl Iterator for RouteIter {
    type Item = LinkId;

    fn next(&mut self) -> Option<LinkId> {
        const EAST: usize = 0;
        const WEST: usize = 1;
        const NORTH: usize = 2; // towards larger y
        const SOUTH: usize = 3; // towards smaller y

        let router = (self.y * self.width + self.x) * 4;
        if self.x != self.dx {
            if self.dx > self.x {
                self.x += 1;
                Some(router + EAST)
            } else {
                self.x -= 1;
                Some(router + WEST)
            }
        } else if self.y != self.dy {
            if self.dy > self.y {
                self.y += 1;
                Some(router + NORTH)
            } else {
                self.y -= 1;
                Some(router + SOUTH)
            }
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let hops = self.x.abs_diff(self.dx) + self.y.abs_diff(self.dy);
        (hops, Some(hops))
    }
}

impl ExactSizeIterator for RouteIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_row_major() {
        let mesh = Mesh::new(8, 8);
        assert_eq!(mesh.position(CoreId::new(0)), (0, 0));
        assert_eq!(mesh.position(CoreId::new(7)), (7, 0));
        assert_eq!(mesh.position(CoreId::new(8)), (0, 1));
        assert_eq!(mesh.position(CoreId::new(63)), (7, 7));
        assert_eq!(mesh.core_at(3, 2), CoreId::new(19));
        assert_eq!(mesh.num_routers(), 64);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn position_rejects_out_of_range() {
        Mesh::new(4, 4).position(CoreId::new(16));
    }

    #[test]
    fn hop_distance_is_manhattan() {
        let mesh = Mesh::new(8, 8);
        assert_eq!(mesh.hops(CoreId::new(0), CoreId::new(0)), 0);
        assert_eq!(mesh.hops(CoreId::new(0), CoreId::new(7)), 7);
        assert_eq!(mesh.hops(CoreId::new(0), CoreId::new(63)), 14);
        assert_eq!(mesh.hops(CoreId::new(9), CoreId::new(0)), 2);
        // Symmetric.
        assert_eq!(
            mesh.hops(CoreId::new(5), CoreId::new(42)),
            mesh.hops(CoreId::new(42), CoreId::new(5))
        );
    }

    #[test]
    fn route_length_matches_hops_and_is_xy() {
        let mesh = Mesh::new(8, 8);
        for (s, d) in [(0usize, 63usize), (9, 0), (3, 3), (56, 7)] {
            let src = CoreId::new(s);
            let dst = CoreId::new(d);
            let route = mesh.route(src, dst);
            assert_eq!(route.len(), mesh.hops(src, dst));
        }
        // XY: route 0 -> 9 goes east first (link direction 0 from (0,0)),
        // then north from (1,0).
        let route = mesh.route(CoreId::new(0), CoreId::new(9));
        assert_eq!(route.len(), 2);
        assert_eq!(route[0] % 4, 0); // east
        assert_eq!(route[1] % 4, 2); // north
                                     // Reverse direction uses different unidirectional links.
        let back = mesh.route(CoreId::new(9), CoreId::new(0));
        assert!(route.iter().all(|l| !back.contains(l)));
    }

    #[test]
    fn route_links_are_within_bounds() {
        let mesh = Mesh::new(4, 4);
        for s in 0..16 {
            for d in 0..16 {
                for link in mesh.route(CoreId::new(s), CoreId::new(d)) {
                    assert!(link < mesh.num_links());
                }
            }
        }
    }

    #[test]
    fn cluster_members_square_clusters() {
        let mesh = Mesh::new(8, 8);
        // Cluster of 1.
        assert_eq!(
            mesh.cluster_members(CoreId::new(5), 1),
            vec![CoreId::new(5)]
        );
        // Cluster of 4: core 9 is at (1,1) -> block (0,0)-(1,1): cores 0,1,8,9.
        let members = mesh.cluster_members(CoreId::new(9), 4);
        assert_eq!(
            members,
            vec![
                CoreId::new(0),
                CoreId::new(1),
                CoreId::new(8),
                CoreId::new(9)
            ]
        );
        // All members of the same cluster agree on the member list.
        for m in &members {
            assert_eq!(mesh.cluster_members(*m, 4), members);
        }
        // Cluster of 16: 4x4 blocks.
        let members = mesh.cluster_members(CoreId::new(63), 16);
        assert_eq!(members.len(), 16);
        assert!(members.contains(&CoreId::new(36)));
        // Cluster of 64 is the whole chip.
        assert_eq!(mesh.cluster_members(CoreId::new(0), 64).len(), 64);
    }

    #[test]
    fn cluster_members_fallback_for_non_square() {
        let mesh = Mesh::new(8, 8);
        let members = mesh.cluster_members(CoreId::new(13), 8);
        assert_eq!(members.len(), 8);
        assert!(members.contains(&CoreId::new(13)));
    }

    #[test]
    fn cluster_slice_for_line_is_deterministic_and_within_cluster() {
        let mesh = Mesh::new(8, 8);
        let members = mesh.cluster_members(CoreId::new(20), 4);
        for line in 0..32u64 {
            let slice = mesh.cluster_slice_for_line(CoreId::new(20), 4, line);
            assert!(members.contains(&slice));
            // Any core in the cluster maps the line to the same slice.
            for m in &members {
                assert_eq!(mesh.cluster_slice_for_line(*m, 4, line), slice);
            }
        }
        // Lines spread across all cluster members.
        let distinct: std::collections::HashSet<_> = (0..16u64)
            .map(|l| mesh.cluster_slice_for_line(CoreId::new(20), 4, l))
            .collect();
        assert_eq!(distinct.len(), 4);
    }
}
