//! One tile of the multicore: compute core clock, private L1 caches and the
//! local LLC slice with its integrated directory.

use lad_cache::l1::L1Cache;
use lad_cache::llc_slice::LlcSlice;
use lad_coherence::mesi::MesiState;
use lad_common::config::SystemConfig;
use lad_common::types::{CoreId, Cycle};
use lad_replication::config::ReplicationConfig;
use lad_replication::entry::LlcEntry;

/// Per-tile architectural state.
#[derive(Debug, Clone)]
pub struct Tile {
    /// This tile's core id.
    pub id: CoreId,
    /// Private L1 instruction cache (entries carry the MESI state of the
    /// copy).
    pub l1i: L1Cache<MesiState>,
    /// Private L1 data cache.
    pub l1d: L1Cache<MesiState>,
    /// The local LLC slice: home lines (directory + classifier) and local
    /// replicas.
    pub llc: LlcSlice<LlcEntry>,
    /// The core's local clock.
    pub clock: Cycle,
}

impl Tile {
    /// Builds one tile from the system and replication configurations.
    pub fn new(id: CoreId, system: &SystemConfig, replication: &ReplicationConfig) -> Self {
        Tile {
            id,
            l1i: L1Cache::new(&system.l1i, system.cache_line_bytes),
            l1d: L1Cache::new(&system.l1d, system.cache_line_bytes),
            llc: LlcSlice::with_policy(
                &system.llc_slice,
                system.cache_line_bytes,
                replication.llc_replacement,
            ),
            clock: Cycle::ZERO,
        }
    }

    /// The L1 cache used by an access (instruction fetches use the L1-I).
    pub fn l1_for(&mut self, instruction: bool) -> &mut L1Cache<MesiState> {
        if instruction {
            &mut self.l1i
        } else {
            &mut self.l1d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_geometry_follows_config() {
        let system = SystemConfig::paper_default();
        let tile = Tile::new(CoreId::new(3), &system, &ReplicationConfig::paper_default());
        assert_eq!(tile.id, CoreId::new(3));
        assert_eq!(tile.l1i.capacity(), 16 * 1024 / 64);
        assert_eq!(tile.l1d.capacity(), 32 * 1024 / 64);
        assert_eq!(tile.llc.capacity(), 256 * 1024 / 64);
        assert_eq!(tile.clock, Cycle::ZERO);
    }

    #[test]
    fn l1_selection_by_access_kind() {
        let system = SystemConfig::small_test();
        let mut tile = Tile::new(CoreId::new(0), &system, &ReplicationConfig::paper_default());
        let icap = tile.l1_for(true).capacity();
        let dcap = tile.l1_for(false).capacity();
        assert_eq!(icap, system.l1i.capacity_bytes / 64);
        assert_eq!(dcap, system.l1d.capacity_bytes / 64);
    }

    #[test]
    fn llc_replacement_policy_is_configurable() {
        use lad_cache::llc_slice::LlcReplacementPolicy;
        let system = SystemConfig::small_test();
        let plain =
            ReplicationConfig::paper_default().with_llc_replacement(LlcReplacementPolicy::PlainLru);
        let tile = Tile::new(CoreId::new(0), &system, &plain);
        assert_eq!(
            tile.llc.replacement_policy(),
            LlcReplacementPolicy::PlainLru
        );
    }
}
