//! Metric collection: completion-time breakdown (Figure 7), L1-miss-type
//! breakdown (Figure 8), run-length characterization (Figure 1) and the
//! combined per-run report.

use std::collections::BTreeMap;
use std::fmt;

use lad_common::collections::FastMap;
use lad_common::json::JsonValue;
use lad_common::stats::Histogram;
use lad_common::types::{CacheLine, CoreId, Cycle, DataClass};
use lad_energy::accounting::{Component, EnergyAccounting};
use lad_replication::scheme::SchemeId;

/// The completion-time components of Figure 7, accumulated over all cores
/// (in cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Compute cycles (plus L1 hit time).
    pub compute: u64,
    /// L1 miss to the LLC replica location and back.
    pub l1_to_llc_replica: u64,
    /// L1 miss to the LLC home location and back (including the LLC access).
    pub l1_to_llc_home: u64,
    /// Queueing at the LLC home while conflicting requests are serialized.
    pub llc_home_waiting: u64,
    /// Round trips from the home to sharers (invalidations, downgrades,
    /// synchronous write-backs).
    pub llc_home_to_sharers: u64,
    /// Off-chip DRAM access time (including controller queueing).
    pub llc_home_to_offchip: u64,
    /// Time waiting at the final barrier (load imbalance).
    pub synchronization: u64,
}

impl LatencyBreakdown {
    /// Labels in the order the paper's Figure 7 legend uses.
    pub const LABELS: [&'static str; 7] = [
        "Compute",
        "L1-To-LLC-Replica",
        "L1-To-LLC-Home",
        "LLC-Home-Waiting",
        "LLC-Home-To-Sharers",
        "LLC-Home-To-OffChip",
        "Synchronization",
    ];

    /// The component values in the same order as [`LatencyBreakdown::LABELS`].
    pub fn values(&self) -> [u64; 7] {
        [
            self.compute,
            self.l1_to_llc_replica,
            self.l1_to_llc_home,
            self.llc_home_waiting,
            self.llc_home_to_sharers,
            self.llc_home_to_offchip,
            self.synchronization,
        ]
    }

    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.values().iter().sum()
    }

    /// The breakdown as a JSON object keyed by the Figure 7 labels.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            Self::LABELS
                .iter()
                .zip(self.values())
                .map(|(label, value)| (label.to_string(), JsonValue::from(value)))
                .collect(),
        )
    }

    /// Rebuilds a breakdown from [`LatencyBreakdown::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let mut values = [0u64; 7];
        for (label, slot) in Self::LABELS.iter().zip(values.iter_mut()) {
            *slot = value
                .get(label)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("latency breakdown is missing {label:?}"))?;
        }
        let [compute, l1_to_llc_replica, l1_to_llc_home, llc_home_waiting, llc_home_to_sharers, llc_home_to_offchip, synchronization] =
            values;
        Ok(LatencyBreakdown {
            compute,
            l1_to_llc_replica,
            l1_to_llc_home,
            llc_home_waiting,
            llc_home_to_sharers,
            llc_home_to_offchip,
            synchronization,
        })
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        self.compute += other.compute;
        self.l1_to_llc_replica += other.l1_to_llc_replica;
        self.l1_to_llc_home += other.l1_to_llc_home;
        self.llc_home_waiting += other.llc_home_waiting;
        self.llc_home_to_sharers += other.llc_home_to_sharers;
        self.llc_home_to_offchip += other.llc_home_to_offchip;
        self.synchronization += other.synchronization;
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "completion-time breakdown (cycles, all cores):")?;
        for (label, value) in Self::LABELS.iter().zip(self.values()) {
            writeln!(f, "  {label:<22} {value:>14}")?;
        }
        write!(f, "  {:<22} {:>14}", "TOTAL", self.total())
    }
}

/// How L1 cache misses were served (Figure 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissBreakdown {
    /// L1 accesses that hit in the L1 (not plotted by Figure 8 but useful).
    pub l1_hits: u64,
    /// L1 misses that hit at the LLC replica location.
    pub llc_replica_hits: u64,
    /// L1 misses that hit at the LLC home location.
    pub llc_home_hits: u64,
    /// L1 misses that went to DRAM.
    pub offchip_misses: u64,
}

impl MissBreakdown {
    /// Total L1 misses.
    pub fn l1_misses(&self) -> u64 {
        self.llc_replica_hits + self.llc_home_hits + self.offchip_misses
    }

    /// Fraction of L1 misses served by a local replica.
    pub fn replica_hit_fraction(&self) -> f64 {
        let misses = self.l1_misses();
        if misses == 0 {
            0.0
        } else {
            self.llc_replica_hits as f64 / misses as f64
        }
    }

    /// Fraction of L1 misses that left the chip.
    pub fn offchip_fraction(&self) -> f64 {
        let misses = self.l1_misses();
        if misses == 0 {
            0.0
        } else {
            self.offchip_misses as f64 / misses as f64
        }
    }

    /// The breakdown as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("l1_hits", JsonValue::from(self.l1_hits)),
            ("llc_replica_hits", JsonValue::from(self.llc_replica_hits)),
            ("llc_home_hits", JsonValue::from(self.llc_home_hits)),
            ("offchip_misses", JsonValue::from(self.offchip_misses)),
        ])
    }

    /// Rebuilds a breakdown from [`MissBreakdown::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("miss breakdown is missing {name:?}"))
        };
        Ok(MissBreakdown {
            l1_hits: field("l1_hits")?,
            llc_replica_hits: field("llc_replica_hits")?,
            llc_home_hits: field("llc_home_hits")?,
            offchip_misses: field("offchip_misses")?,
        })
    }
}

impl fmt::Display for MissBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1 misses: {} replica hits, {} home hits, {} off-chip ({} L1 hits)",
            self.llc_replica_hits, self.llc_home_hits, self.offchip_misses, self.l1_hits
        )
    }
}

/// Run-length characterization (Figure 1): for each data class, the
/// distribution of the number of LLC accesses a core makes to a line before
/// a conflicting access by another core or an eviction.
#[derive(Debug, Clone, Default)]
pub struct RunLengthProfile {
    // The histograms are ordered so the Debug rendering and any iteration
    // over the profile are byte-stable across runs.  The open-run tracker is
    // point-lookup-only (one entry per live line, touched on every LLC
    // access): it uses a fixed-seed fast map, and everything derived from it
    // goes through the histograms, whose bucket sums are order-independent.
    histograms: BTreeMap<DataClass, Histogram>,
    open_runs: FastMap<CacheLine, (CoreId, u64, DataClass)>,
}

impl RunLengthProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one LLC access by `core` to `line` of data class `class`.
    /// `conflicting` marks accesses that end other cores' runs (writes).
    pub fn record_access(
        &mut self,
        line: CacheLine,
        core: CoreId,
        class: DataClass,
        conflicting: bool,
    ) {
        match self.open_runs.get_mut(&line) {
            Some((owner, count, open_class)) if *owner == core && !conflicting => {
                *count += 1;
                *open_class = class;
            }
            Some((owner, count, open_class)) if *owner == core => {
                // A write by the same core extends its own run.
                *count += 1;
                *open_class = class;
            }
            Some(entry) => {
                // Conflicting or different core: close the previous run.
                let (_, count, open_class) = *entry;
                self.histograms.entry(open_class).or_default().record(count);
                *entry = (core, 1, class);
            }
            None => {
                self.open_runs.insert(line, (core, 1, class));
            }
        }
    }

    /// Records that `line` was evicted from the LLC, ending any open run.
    pub fn record_eviction(&mut self, line: CacheLine) {
        if let Some((_, count, class)) = self.open_runs.remove(&line) {
            self.histograms.entry(class).or_default().record(count);
        }
    }

    /// Closes all open runs (call at the end of the simulation).
    pub fn finalize(&mut self) {
        let open = std::mem::take(&mut self.open_runs);
        for (_, (_, count, class)) in open {
            self.histograms.entry(class).or_default().record(count);
        }
    }

    /// A finalized copy of this profile, leaving `self` untouched: the
    /// per-class histograms are cloned and every open run is folded in as if
    /// [`RunLengthProfile::finalize`] had been called.
    ///
    /// This is the checkpoint primitive used by `Simulator::report` — it
    /// never clones the open-run tracker (one entry per live cache line, by
    /// far the largest part of the profile mid-stream).  Folding order does
    /// not matter: histogram bucket counts are commutative sums.
    pub fn finalized_snapshot(&self) -> RunLengthProfile {
        let mut histograms = self.histograms.clone();
        for (_, count, class) in self.open_runs.values() {
            histograms.entry(*class).or_default().record(*count);
        }
        RunLengthProfile {
            histograms,
            open_runs: FastMap::default(),
        }
    }

    /// The open (not yet closed) runs as `(line, core, length, class)`
    /// tuples sorted by line — the checkpoint companion to
    /// [`RunLengthProfile::to_json`], which covers only the closed-run
    /// histograms.
    pub fn open_runs(&self) -> Vec<(CacheLine, CoreId, u64, DataClass)> {
        let mut runs: Vec<_> = self
            .open_runs
            .iter()
            .map(|(line, (core, count, class))| (*line, *core, *count, *class))
            .collect();
        runs.sort_unstable_by_key(|(line, ..)| *line);
        runs
    }

    /// Reinstates one open run from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length run or if the line already has an open run
    /// (a checkpoint holds at most one open run per line).
    pub fn restore_open_run(
        &mut self,
        line: CacheLine,
        core: CoreId,
        count: u64,
        class: DataClass,
    ) {
        assert!(count > 0, "an open run has at least one access");
        let previous = self.open_runs.insert(line, (core, count, class));
        assert!(previous.is_none(), "line {line:?} already has an open run");
    }

    /// Total recorded runs for a class.
    pub fn runs(&self, class: DataClass) -> u64 {
        self.histograms.get(&class).map_or(0, Histogram::count)
    }

    /// Accesses (weighted by run length) falling into the paper's three
    /// run-length buckets `[1-2]`, `[3-9]`, `[>= 10]` for a class.
    pub fn bucketed_accesses(&self, class: DataClass) -> [u64; 3] {
        match self.histograms.get(&class) {
            None => [0, 0, 0],
            Some(h) => {
                let mut buckets = [0u64; 3];
                for (value, count) in h.iter() {
                    let weighted = value * count;
                    if value <= 2 {
                        buckets[0] += weighted;
                    } else if value <= 9 {
                        buckets[1] += weighted;
                    } else {
                        buckets[2] += weighted;
                    }
                }
                buckets
            }
        }
    }

    /// Fraction of all LLC accesses in each `(class, bucket)` cell, matching
    /// one stacked bar of Figure 1.  Buckets are `[1-2]`, `[3-9]`, `[>=10]`.
    pub fn distribution(&self) -> Vec<(DataClass, [f64; 3])> {
        let totals: u64 = DataClass::ALL
            .iter()
            .map(|c| self.bucketed_accesses(*c).iter().sum::<u64>())
            .sum();
        DataClass::ALL
            .iter()
            .map(|c| {
                let buckets = self.bucketed_accesses(*c);
                let fractions = if totals == 0 {
                    [0.0; 3]
                } else {
                    [
                        buckets[0] as f64 / totals as f64,
                        buckets[1] as f64 / totals as f64,
                        buckets[2] as f64 / totals as f64,
                    ]
                };
                (*c, fractions)
            })
            .collect()
    }

    /// Mean run length for a class, if any runs were recorded.
    pub fn mean_run_length(&self, class: DataClass) -> Option<f64> {
        self.histograms.get(&class).and_then(Histogram::mean)
    }

    /// The per-class run-length histograms as a JSON object
    /// (`{class label: [[run length, count], ...]}`).  Open runs are not
    /// serialized — call [`RunLengthProfile::finalize`] first (reports
    /// produced by the simulator already are).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.histograms
                .iter()
                .map(|(class, histogram)| {
                    let samples: Vec<JsonValue> = histogram
                        .iter()
                        .map(|(value, count)| {
                            JsonValue::Array(vec![JsonValue::from(value), JsonValue::from(count)])
                        })
                        .collect();
                    (class.label().to_string(), JsonValue::Array(samples))
                })
                .collect(),
        )
    }

    /// Rebuilds a finalized profile from [`RunLengthProfile::to_json`]
    /// output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown class or malformed sample.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let pairs = value
            .as_object()
            .ok_or("run-length profile must be an object")?;
        let mut profile = RunLengthProfile::new();
        for (label, samples) in pairs {
            let class = DataClass::ALL
                .iter()
                .copied()
                .find(|c| c.label() == label)
                .ok_or_else(|| format!("unknown data class {label:?}"))?;
            let samples = samples
                .as_array()
                .ok_or_else(|| format!("run lengths of {label:?} must be an array"))?;
            let histogram = profile.histograms.entry(class).or_default();
            for sample in samples {
                let pair = sample.as_array().filter(|p| p.len() == 2);
                let (value, count) = match pair {
                    Some([v, c]) => (v.as_u64(), c.as_u64()),
                    _ => (None, None),
                };
                match (value, count) {
                    (Some(value), Some(count)) => histogram.record_weighted(value, count),
                    _ => return Err(format!("malformed run-length sample for {label:?}")),
                }
            }
        }
        Ok(profile)
    }
}

/// Diagnostic variance counters aggregated over every locality classifier
/// the run instantiated — both the classifiers still live in home entries
/// at stream end and the ones retired by LLC evictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifierStats {
    /// Total replica/non-replica mode transitions recorded by any tracked
    /// core (promotion on reaching RT, or settling to the other mode on
    /// eviction feedback).  High values mean the classifier keeps changing
    /// its mind about the same sharers.
    pub mode_flips: u64,
    /// High-water mark of tracked cores in any single classifier — for
    /// `Limited_k` organizations this saturates at `k`, so the gap to `k`
    /// shows whether the limited tracker was ever actually full.
    pub peak_tracked: u64,
}

impl ClassifierStats {
    /// The counters as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("mode_flips", JsonValue::from(self.mode_flips)),
            ("peak_tracked", JsonValue::from(self.peak_tracked)),
        ])
    }

    /// Rebuilds the counters from [`ClassifierStats::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("classifier stats are missing numeric field {name:?}"))
        };
        Ok(ClassifierStats {
            mode_flips: field("mode_flips")?,
            peak_tracked: field("peak_tracked")?,
        })
    }
}

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Label of the scheme configuration (e.g. `RT-3`, `S-NUCA`,
    /// `RT-3/C-16`).
    pub scheme: String,
    /// Typed identity of the scheme, used as the experiment-matrix key.
    pub scheme_id: SchemeId,
    /// Parallel completion time (the slowest core).
    pub completion_time: Cycle,
    /// Completion-time components summed over cores.
    pub latency: LatencyBreakdown,
    /// How L1 misses were served.
    pub misses: MissBreakdown,
    /// Dynamic energy by component.
    pub energy: EnergyAccounting,
    /// Run-length characterization of the workload as observed at the LLC.
    pub run_lengths: RunLengthProfile,
    /// Total memory accesses simulated.
    pub total_accesses: u64,
    /// Total LLC replicas created.
    pub replicas_created: u64,
    /// Total back-invalidations caused by LLC evictions.
    pub back_invalidations: u64,
    /// Classifier variance: mode-flip count and tracked-core high-water
    /// mark, aggregated over live and evicted classifiers.
    pub classifier: ClassifierStats,
}

impl SimulationReport {
    /// Energy-delay product (total energy × completion time), the metric ASR
    /// levels are selected by.
    pub fn energy_delay_product(&self) -> f64 {
        self.energy.total() * self.completion_time.value() as f64
    }

    /// Average memory latency per access in cycles (excluding compute).
    pub fn average_memory_latency(&self) -> f64 {
        if self.total_accesses == 0 {
            return 0.0;
        }
        let memory_cycles =
            self.latency.total() - self.latency.compute - self.latency.synchronization;
        memory_cycles as f64 / self.total_accesses as f64
    }

    /// The full report as a JSON object — the machine-readable form emitted
    /// by the figure binaries' `--json` flag.  Numeric values round-trip
    /// exactly through [`SimulationReport::from_json`].
    pub fn to_json(&self) -> JsonValue {
        let energy = JsonValue::Object(
            self.energy
                .iter()
                .map(|(component, pj)| (component.label().to_string(), JsonValue::from(pj)))
                .collect(),
        );
        JsonValue::object([
            ("benchmark", JsonValue::from(self.benchmark.as_str())),
            ("scheme", JsonValue::from(self.scheme.as_str())),
            ("scheme_id", JsonValue::from(self.scheme_id.label())),
            (
                "completion_time",
                JsonValue::from(self.completion_time.value()),
            ),
            ("total_accesses", JsonValue::from(self.total_accesses)),
            ("replicas_created", JsonValue::from(self.replicas_created)),
            (
                "back_invalidations",
                JsonValue::from(self.back_invalidations),
            ),
            ("classifier", self.classifier.to_json()),
            ("latency", self.latency.to_json()),
            ("misses", self.misses.to_json()),
            ("energy", energy),
            ("run_lengths", self.run_lengths.to_json()),
        ])
    }

    /// Rebuilds a report from [`SimulationReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let str_field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("report is missing string field {name:?}"))
        };
        let u64_field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("report is missing numeric field {name:?}"))
        };
        let energy_obj = value
            .get("energy")
            .and_then(JsonValue::as_object)
            .ok_or("report is missing the energy breakdown")?;
        let mut energy = EnergyAccounting::new();
        for (label, pj) in energy_obj {
            let component = Component::ALL
                .iter()
                .copied()
                .find(|c| c.label() == label)
                .ok_or_else(|| format!("unknown energy component {label:?}"))?;
            let pj = pj
                .as_f64()
                .ok_or_else(|| format!("energy of {label:?} must be a number"))?;
            if pj < 0.0 {
                return Err(format!("energy of {label:?} must be non-negative"));
            }
            energy.record(component, pj);
        }
        Ok(SimulationReport {
            benchmark: str_field("benchmark")?,
            scheme: str_field("scheme")?,
            scheme_id: SchemeId::parse(&str_field("scheme_id")?),
            completion_time: Cycle::new(u64_field("completion_time")?),
            latency: LatencyBreakdown::from_json(
                value
                    .get("latency")
                    .ok_or("report is missing the latency breakdown")?,
            )?,
            misses: MissBreakdown::from_json(
                value
                    .get("misses")
                    .ok_or("report is missing the miss breakdown")?,
            )?,
            energy,
            run_lengths: RunLengthProfile::from_json(
                value
                    .get("run_lengths")
                    .ok_or("report is missing the run-length profile")?,
            )?,
            total_accesses: u64_field("total_accesses")?,
            replicas_created: u64_field("replicas_created")?,
            back_invalidations: u64_field("back_invalidations")?,
            classifier: ClassifierStats::from_json(
                value
                    .get("classifier")
                    .ok_or("report is missing the classifier variance counters")?,
            )?,
        })
    }
}

impl fmt::Display for SimulationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} under {} ===", self.benchmark, self.scheme)?;
        writeln!(f, "completion time: {}", self.completion_time)?;
        writeln!(f, "{}", self.latency)?;
        writeln!(f, "{}", self.misses)?;
        writeln!(f, "replicas created: {}", self.replicas_created)?;
        write!(f, "{}", self.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_energy::accounting::Component;

    #[test]
    fn latency_breakdown_totals_and_merge() {
        let mut a = LatencyBreakdown {
            compute: 10,
            l1_to_llc_home: 5,
            ..Default::default()
        };
        let b = LatencyBreakdown {
            llc_home_waiting: 3,
            synchronization: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert_eq!(a.values().len(), LatencyBreakdown::LABELS.len());
        let text = a.to_string();
        for label in LatencyBreakdown::LABELS {
            assert!(text.contains(label));
        }
    }

    #[test]
    fn miss_breakdown_fractions() {
        let m = MissBreakdown {
            l1_hits: 100,
            llc_replica_hits: 30,
            llc_home_hits: 50,
            offchip_misses: 20,
        };
        assert_eq!(m.l1_misses(), 100);
        assert!((m.replica_hit_fraction() - 0.3).abs() < 1e-12);
        assert!((m.offchip_fraction() - 0.2).abs() < 1e-12);
        let empty = MissBreakdown::default();
        assert_eq!(empty.replica_hit_fraction(), 0.0);
        assert_eq!(empty.offchip_fraction(), 0.0);
        assert!(m.to_string().contains("30 replica hits"));
    }

    #[test]
    fn run_length_same_core_extends_run() {
        let mut p = RunLengthProfile::new();
        let line = CacheLine::from_index(1);
        for _ in 0..5 {
            p.record_access(line, CoreId::new(0), DataClass::SharedReadWrite, false);
        }
        p.finalize();
        assert_eq!(p.runs(DataClass::SharedReadWrite), 1);
        assert_eq!(p.mean_run_length(DataClass::SharedReadWrite), Some(5.0));
        assert_eq!(p.bucketed_accesses(DataClass::SharedReadWrite), [0, 5, 0]);
    }

    #[test]
    fn run_length_conflicting_access_closes_run() {
        let mut p = RunLengthProfile::new();
        let line = CacheLine::from_index(1);
        p.record_access(line, CoreId::new(0), DataClass::SharedReadWrite, false);
        p.record_access(line, CoreId::new(0), DataClass::SharedReadWrite, false);
        // Core 1 writes: closes core 0's run of length 2.
        p.record_access(line, CoreId::new(1), DataClass::SharedReadWrite, true);
        p.finalize();
        assert_eq!(p.runs(DataClass::SharedReadWrite), 2);
        assert_eq!(p.bucketed_accesses(DataClass::SharedReadWrite), [3, 0, 0]);
    }

    #[test]
    fn run_length_eviction_closes_run() {
        let mut p = RunLengthProfile::new();
        let line = CacheLine::from_index(2);
        for _ in 0..12 {
            p.record_access(line, CoreId::new(3), DataClass::Instruction, false);
        }
        p.record_eviction(line);
        assert_eq!(p.runs(DataClass::Instruction), 1);
        assert_eq!(p.bucketed_accesses(DataClass::Instruction), [0, 0, 12]);
        // Evicting an untracked line is a no-op.
        p.record_eviction(CacheLine::from_index(99));
    }

    #[test]
    fn distribution_fractions_sum_to_one() {
        let mut p = RunLengthProfile::new();
        p.record_access(
            CacheLine::from_index(1),
            CoreId::new(0),
            DataClass::Private,
            false,
        );
        for _ in 0..9 {
            p.record_access(
                CacheLine::from_index(2),
                CoreId::new(1),
                DataClass::Instruction,
                false,
            );
        }
        p.finalize();
        let total: f64 = p.distribution().iter().flat_map(|(_, b)| b.iter()).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Empty profile: all zero.
        let empty = RunLengthProfile::new();
        let total: f64 = empty
            .distribution()
            .iter()
            .flat_map(|(_, b)| b.iter())
            .sum();
        assert_eq!(total, 0.0);
    }

    #[test]
    fn report_derived_metrics() {
        let mut energy = EnergyAccounting::new();
        energy.record(Component::Dram, 1000.0);
        let report = SimulationReport {
            benchmark: "TEST".to_string(),
            scheme: "RT-3".to_string(),
            scheme_id: SchemeId::Rt(3),
            completion_time: Cycle::new(500),
            latency: LatencyBreakdown {
                compute: 100,
                l1_to_llc_home: 300,
                synchronization: 50,
                ..Default::default()
            },
            misses: MissBreakdown::default(),
            energy,
            run_lengths: RunLengthProfile::new(),
            total_accesses: 100,
            replicas_created: 5,
            back_invalidations: 0,
            classifier: ClassifierStats::default(),
        };
        assert!((report.energy_delay_product() - 1000.0 * 500.0).abs() < 1e-9);
        assert!((report.average_memory_latency() - 3.0).abs() < 1e-9);
        let text = report.to_string();
        assert!(text.contains("TEST"));
        assert!(text.contains("RT-3"));
    }

    #[test]
    fn report_json_roundtrips_exactly() {
        let mut energy = EnergyAccounting::new();
        energy.record(Component::Dram, 1234.5678901234);
        energy.record(Component::L2Cache, 0.1 + 0.2);
        let mut run_lengths = RunLengthProfile::new();
        for _ in 0..5 {
            run_lengths.record_access(
                CacheLine::from_index(1),
                CoreId::new(0),
                DataClass::SharedReadWrite,
                false,
            );
        }
        run_lengths.record_access(
            CacheLine::from_index(2),
            CoreId::new(1),
            DataClass::Private,
            true,
        );
        run_lengths.finalize();
        let report = SimulationReport {
            benchmark: "BARNES".to_string(),
            scheme: "ASR-0.50".to_string(),
            scheme_id: SchemeId::AsrAt(50),
            completion_time: Cycle::new(987_654_321),
            latency: LatencyBreakdown {
                compute: 1,
                l1_to_llc_replica: 2,
                l1_to_llc_home: 3,
                llc_home_waiting: 4,
                llc_home_to_sharers: 5,
                llc_home_to_offchip: 6,
                synchronization: 7,
            },
            misses: MissBreakdown {
                l1_hits: 10,
                llc_replica_hits: 11,
                llc_home_hits: 12,
                offchip_misses: 13,
            },
            energy,
            run_lengths,
            total_accesses: 46,
            replicas_created: 3,
            back_invalidations: 1,
            classifier: ClassifierStats {
                mode_flips: 17,
                peak_tracked: 9,
            },
        };

        // Through the document model and through the textual serializer.
        let json = report.to_json();
        let text = json.pretty();
        let reparsed = lad_common::json::JsonValue::parse(&text).unwrap();
        assert_eq!(reparsed, json);
        let decoded = SimulationReport::from_json(&reparsed).unwrap();
        // The Debug rendering covers every field, including histogram
        // contents and exact float totals.
        assert_eq!(format!("{decoded:?}"), format!("{report:?}"));
    }

    #[test]
    fn report_from_json_rejects_malformed_documents() {
        let report = SimulationReport {
            benchmark: "T".to_string(),
            scheme: "S-NUCA".to_string(),
            scheme_id: SchemeId::StaticNuca,
            completion_time: Cycle::new(1),
            latency: LatencyBreakdown::default(),
            misses: MissBreakdown::default(),
            energy: EnergyAccounting::new(),
            run_lengths: RunLengthProfile::new(),
            total_accesses: 0,
            replicas_created: 0,
            back_invalidations: 0,
            classifier: ClassifierStats::default(),
        };
        let json = report.to_json();
        // Removing any top-level field must produce an error, not a panic.
        if let JsonValue::Object(pairs) = &json {
            for i in 0..pairs.len() {
                let mut broken = pairs.clone();
                broken.remove(i);
                assert!(
                    SimulationReport::from_json(&JsonValue::Object(broken)).is_err(),
                    "dropping field {} must fail",
                    pairs[i].0
                );
            }
        } else {
            panic!("report JSON must be an object");
        }
        assert!(SimulationReport::from_json(&JsonValue::Null).is_err());
    }
}
