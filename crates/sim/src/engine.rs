//! The protocol engine: drives every memory access through the L1 caches,
//! the replica and home LLC slices, the directory, the classifier, the NoC
//! and DRAM, accumulating the paper's latency, miss and energy breakdowns.
//!
//! Every replication *decision* is delegated to the simulator's
//! [`ReplicationPolicy`], so the same timing skeleton runs the paper's five
//! schemes and any out-of-crate policy registered through a
//! [`SchemeRegistry`](lad_replication::policy::SchemeRegistry).

use std::collections::BTreeSet;
use std::sync::Arc;

use lad_check::{check_view, require, violated, HomeSummary, Invariant, ProtocolView, Violation};
use lad_coherence::ackwise::InvalidationTargets;
use lad_coherence::mesi::MesiState;
use lad_common::collections::FastMap;
use lad_common::config::SystemConfig;
use lad_common::rng::DeterministicRng;
use lad_common::types::{CacheLine, CoreId, Cycle, DataClass, MemoryAccess};
use lad_dram::controller::DramSystem;
use lad_energy::accounting::{Component, EnergyAccounting};
use lad_energy::model::EnergyModel;
use lad_noc::message::MessageKind;
use lad_noc::Network;
use lad_obs::{Counter, LatencyHistogram, MetricsRegistry};
use lad_replication::config::ReplicationConfig;
use lad_replication::entry::{HomeEntry, LlcEntry, ReplicaEntry};
use lad_replication::placement::HomeMap;
use lad_replication::policy::{builtin_policy, EvictDecision, FillDecision, ReplicationPolicy};
use lad_replication::scheme::SchemeId;
use lad_trace::generator::WorkloadTrace;
use lad_traceio::error::TraceError;
use lad_traceio::source::{MemorySource, TraceSource};

use crate::checkpoint::{EngineCheckpoint, TileCheckpoint};
use crate::metrics::{
    ClassifierStats, LatencyBreakdown, MissBreakdown, RunLengthProfile, SimulationReport,
};
use crate::schedule::CoreScheduler;
use crate::tile::Tile;

/// Where one memory access was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// The access hit in the core's private L1 cache.
    L1,
    /// The L1 miss hit an LLC replica at the local (or cluster) slice.
    LlcReplica,
    /// The L1 miss was served at the line's home LLC slice.
    LlcHome,
    /// The line had to be fetched from off-chip DRAM.
    OffChip,
}

/// The result of driving one access through [`Simulator::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The issuing core.
    pub core: CoreId,
    /// Where the access was served.
    pub served_by: ServedBy,
    /// The issuing core's local clock after the access completed.
    pub finish: Cycle,
}

/// Periodic callback driven by [`Simulator::run_source_observed`] at
/// scheduling-loop boundaries — the hook for progress reporting, periodic
/// checkpoint spills and cooperative cancellation.
pub trait RunObserver {
    /// Number of stepped accesses between [`RunObserver::observe`] calls
    /// (values below 1 are treated as 1; sampled once at loop entry).
    fn interval(&self) -> u64;

    /// Called every [`RunObserver::interval`] accesses with a [`RunProgress`]
    /// view of the live run.  Return [`RunControl::Cancel`] to stop the run
    /// at this boundary with a resumable checkpoint.
    fn observe(&mut self, progress: RunProgress<'_>) -> RunControl;
}

/// The observer's verdict after each [`RunObserver::observe`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunControl {
    /// Keep running.
    Continue,
    /// Stop at this scheduling boundary and return a resumable checkpoint.
    Cancel,
}

/// Read-only view of a live run, handed to [`RunObserver::observe`].
#[derive(Debug)]
pub struct RunProgress<'a> {
    sim: &'a Simulator,
    consumed: &'a [u64],
}

impl RunProgress<'_> {
    /// The running simulator (for [`Simulator::report`]-style snapshots).
    pub fn simulator(&self) -> &Simulator {
        self.sim
    }

    /// Accesses each core has stepped so far.
    pub fn consumed(&self) -> &[u64] {
        self.consumed
    }

    /// Total accesses stepped so far (including any resumed prefix).
    pub fn total_accesses(&self) -> u64 {
        self.sim.total_accesses
    }

    /// Builds a resumable checkpoint of the run at this boundary.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        self.sim.capture_checkpoint(self.consumed)
    }
}

/// How an observed run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// The stream drained; the finished report.  Boxed like the
    /// checkpoint so the enum stays pointer-sized on the happy path too.
    Completed(Box<SimulationReport>),
    /// The observer cancelled; resume from the carried checkpoint.
    Cancelled(Box<EngineCheckpoint>),
}

/// A [`RunObserver`] that cancels after a fixed number of stepped accesses —
/// the building block for "checkpoint every N accesses" tests and for
/// bounded execution slices.
#[derive(Debug, Clone, Copy)]
pub struct StopAfter {
    limit: u64,
}

impl StopAfter {
    /// Cancels the run once `limit` accesses have been stepped (counted from
    /// loop entry, i.e. from the resume point on resumed runs).
    pub fn new(limit: u64) -> Self {
        StopAfter {
            limit: limit.max(1),
        }
    }
}

impl RunObserver for StopAfter {
    fn interval(&self) -> u64 {
        self.limit
    }

    fn observe(&mut self, _progress: RunProgress<'_>) -> RunControl {
        RunControl::Cancel
    }
}

/// Result of probing one sharer during an invalidation round.
#[derive(Debug, Clone, Copy)]
struct SharerProbe {
    target: CoreId,
    replica_reuse: Option<u32>,
    had_copy: bool,
    dirty: bool,
}

/// The full-system simulator.
///
/// A simulator is built for one system configuration and one LLC management
/// scheme; [`Simulator::run`] executes a workload trace to completion and
/// produces a [`SimulationReport`].  Internal state is reset at the start of
/// every run, so the same simulator can execute several traces.
///
/// # Stepping
///
/// `run` is a thin loop over the resumable stepping API, which is public so
/// traces can be streamed, interleaved with other work, and checkpointed:
///
/// 1. [`Simulator::begin`] resets state for a stream spanning `num_cores`
///    cores,
/// 2. [`Simulator::profile_access`] feeds the profiling pass (page
///    classification for R-NUCA placement; ground-truth data classes),
/// 3. [`Simulator::step`] executes one access and returns where it was
///    served ([`AccessOutcome`]),
/// 4. [`Simulator::report`] snapshots a full [`SimulationReport`] at any
///    point — it does not consume state, so it can checkpoint a simulation
///    mid-stream and be called again after more steps.
#[derive(Debug)]
pub struct Simulator {
    system: SystemConfig,
    replication: ReplicationConfig,
    policy: Arc<dyn ReplicationPolicy>,
    scheme_id: SchemeId,
    label: String,
    energy_model: EnergyModel,
    seed: u64,
    benchmark: String,
    active_cores: usize,

    tiles: Vec<Tile>,
    network: Network,
    dram: DramSystem,
    home_map: HomeMap,
    // Point-lookup-only state whose iteration order never feeds a report;
    // the fixed-seed fast maps keep the per-access lookups cheap.
    line_class: FastMap<CacheLine, DataClass>,
    line_busy_until: FastMap<CacheLine, Cycle>,
    rng: DeterministicRng,

    energy: EnergyAccounting,
    latency: LatencyBreakdown,
    misses: MissBreakdown,
    run_lengths: RunLengthProfile,
    replicas_created: u64,
    back_invalidations: u64,
    total_accesses: u64,
    // Classifier variance folded in from home entries retired by LLC
    // eviction; report() combines these with a walk of the live entries.
    retired_classifier_flips: u64,
    retired_classifier_peak: u64,

    obs: EngineMetrics,
}

/// Pre-resolved engine instrument handles (see [`lad_obs`]).  Resolved
/// from the process-wide registry by default; the overhead bench
/// re-resolves against a disarmed registry through
/// [`Simulator::set_metrics_registry`] to measure the cost of the
/// instrumentation itself on the real execution path.
#[derive(Debug, Clone)]
struct EngineMetrics {
    accesses: Counter,
    batch_steps: LatencyHistogram,
    runs_completed: Counter,
    checkpoints_captured: Counter,
}

impl EngineMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        EngineMetrics {
            accesses: registry.counter(
                "lad_engine_accesses_total",
                "memory accesses simulated across all runs",
            ),
            batch_steps: registry.histogram(
                "lad_engine_batch_steps",
                "consecutive steps dispatched to one core without scheduler traffic",
            ),
            runs_completed: registry.counter(
                "lad_engine_runs_completed_total",
                "simulation streams run to completion",
            ),
            checkpoints_captured: registry.counter(
                "lad_engine_checkpoints_total",
                "resumable checkpoints captured on cancellation",
            ),
        }
    }
}

impl Simulator {
    /// Builds a simulator for one system configuration and scheme, using the
    /// default energy model.
    ///
    /// # Panics
    ///
    /// Panics if either configuration fails validation.
    pub fn new(system: SystemConfig, replication: ReplicationConfig) -> Self {
        Self::with_energy_model(system, replication, EnergyModel::paper_default())
    }

    /// Builds a simulator with an explicit energy model, running the
    /// built-in policy of `replication.scheme`.
    ///
    /// # Panics
    ///
    /// Panics if any configuration fails validation.
    pub fn with_energy_model(
        system: SystemConfig,
        replication: ReplicationConfig,
        energy_model: EnergyModel,
    ) -> Self {
        let policy = builtin_policy(&replication);
        let label = replication.label();
        Self::build(system, replication, policy, label, energy_model)
    }

    /// Builds a simulator around a custom [`ReplicationPolicy`] (registered
    /// or not), using the default energy model.  `replication` supplies the
    /// engine knobs (replication threshold, classifier organization, cluster
    /// size, LLC replacement); placement and every replication decision come
    /// from the policy.
    ///
    /// # Panics
    ///
    /// Panics if any configuration fails validation.
    pub fn with_policy(
        system: SystemConfig,
        replication: ReplicationConfig,
        policy: Arc<dyn ReplicationPolicy>,
    ) -> Self {
        Self::with_policy_and_energy_model(
            system,
            replication,
            policy,
            EnergyModel::paper_default(),
        )
    }

    /// [`Simulator::with_policy`] with an explicit energy model.
    ///
    /// # Panics
    ///
    /// Panics if any configuration fails validation.
    pub fn with_policy_and_energy_model(
        system: SystemConfig,
        replication: ReplicationConfig,
        policy: Arc<dyn ReplicationPolicy>,
        energy_model: EnergyModel,
    ) -> Self {
        let label = policy.id().label();
        Self::build(system, replication, policy, label, energy_model)
    }

    fn build(
        system: SystemConfig,
        replication: ReplicationConfig,
        policy: Arc<dyn ReplicationPolicy>,
        label: String,
        energy_model: EnergyModel,
    ) -> Self {
        if let Err(error) = system.validate() {
            panic!("system configuration must be valid: {error}");
        }
        if let Err(error) = replication.validate() {
            panic!("replication configuration must be valid: {error}");
        }
        if let Err(error) = energy_model.validate() {
            panic!("energy model must be valid: {error}");
        }
        let tiles = (0..system.num_cores)
            .map(|i| Tile::new(CoreId::new(i), &system, &replication))
            .collect();
        let network = Network::new(&system.network, system.cache_line_bytes);
        let controller_cores = (0..system.dram.num_controllers)
            .map(|i| system.dram_controller_core(i))
            .collect();
        let dram = DramSystem::new(&system.dram, system.cache_line_bytes, controller_cores);
        let home_map = HomeMap::new(
            policy.placement(),
            system.num_cores,
            system.cache_line_bytes,
            system.page_bytes,
        );
        let active_cores = system.num_cores;
        Simulator {
            tiles,
            network,
            dram,
            home_map,
            line_class: FastMap::default(),
            line_busy_until: FastMap::default(),
            rng: DeterministicRng::seed_from(0x5eed),
            energy: EnergyAccounting::new(),
            latency: LatencyBreakdown::default(),
            misses: MissBreakdown::default(),
            run_lengths: RunLengthProfile::new(),
            replicas_created: 0,
            back_invalidations: 0,
            total_accesses: 0,
            retired_classifier_flips: 0,
            retired_classifier_peak: 0,
            obs: EngineMetrics::resolve(lad_obs::global()),
            system,
            replication,
            scheme_id: policy.id(),
            policy,
            label,
            energy_model,
            seed: 0x5eed,
            benchmark: String::new(),
            active_cores,
        }
    }

    /// Re-resolves the engine's instrument handles against `registry`
    /// instead of the process-wide [`lad_obs::global`] default.  Recording
    /// never affects simulation results; passing a
    /// [`MetricsRegistry::noop`] registry disarms the handles entirely,
    /// which is how the `metrics_overhead` bench isolates the cost of the
    /// instrumentation on the real execution path.
    pub fn set_metrics_registry(&mut self, registry: &MetricsRegistry) {
        self.obs = EngineMetrics::resolve(registry);
    }

    /// Sets the seed for the simulator's internal randomness (ASR's
    /// probabilistic replication); simulation is otherwise deterministic.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// The system configuration.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The replication configuration.
    pub fn replication(&self) -> &ReplicationConfig {
        &self.replication
    }

    /// The replication policy driving this simulator's decisions.
    pub fn policy(&self) -> &Arc<dyn ReplicationPolicy> {
        &self.policy
    }

    /// The typed scheme identity of this simulator.
    pub fn scheme_id(&self) -> SchemeId {
        self.scheme_id
    }

    /// The local clock of one core — external drivers use this to interleave
    /// streams the way [`Simulator::run`] does (always advance the core that
    /// is furthest behind).
    pub fn core_clock(&self, core: CoreId) -> Cycle {
        self.tiles[core.index()].clock
    }

    fn reset(&mut self) {
        self.tiles = (0..self.system.num_cores)
            .map(|i| Tile::new(CoreId::new(i), &self.system, &self.replication))
            .collect();
        self.network = Network::new(&self.system.network, self.system.cache_line_bytes);
        let controller_cores = (0..self.system.dram.num_controllers)
            .map(|i| self.system.dram_controller_core(i))
            .collect();
        self.dram = DramSystem::new(
            &self.system.dram,
            self.system.cache_line_bytes,
            controller_cores,
        );
        self.home_map = HomeMap::new(
            self.policy.placement(),
            self.system.num_cores,
            self.system.cache_line_bytes,
            self.system.page_bytes,
        );
        self.line_class.clear();
        self.line_busy_until.clear();
        self.rng = DeterministicRng::seed_from(self.seed);
        self.energy = EnergyAccounting::new();
        self.latency = LatencyBreakdown::default();
        self.misses = MissBreakdown::default();
        self.run_lengths = RunLengthProfile::new();
        self.replicas_created = 0;
        self.back_invalidations = 0;
        self.total_accesses = 0;
        self.retired_classifier_flips = 0;
        self.retired_classifier_peak = 0;
    }

    // ----- the stepping API ------------------------------------------------

    /// Resets all simulation state and starts a new access stream named
    /// `benchmark` that spans cores `0..num_cores`.
    ///
    /// # Panics
    ///
    /// Panics if the stream spans more cores than the simulated system has.
    pub fn begin(&mut self, benchmark: &str, num_cores: usize) {
        require(
            Invariant::TraceCoreBound,
            num_cores <= self.system.num_cores,
            || {
                format!(
                    "trace has {} cores but the system only has {}",
                    num_cores, self.system.num_cores
                )
            },
        );
        self.reset();
        self.benchmark = benchmark.to_string();
        self.active_cores = num_cores;
    }

    /// Feeds one access to the profiling pass: page classification for
    /// R-NUCA placement and the ground-truth data class of every line (used
    /// by ASR and the Figure 1 characterization).  Call for every access of
    /// the stream between [`Simulator::begin`] and the first
    /// [`Simulator::step`]; streaming drivers that cannot afford a full
    /// profiling pass may skip it at the cost of degraded R-NUCA placement
    /// and ASR classification.
    pub fn profile_access(&mut self, access: &MemoryAccess) {
        let line = access.address.line(self.system.cache_line_bytes);
        self.home_map
            .record_page_access(line, access.core, access.op.is_instruction());
        self.line_class.entry(line).or_insert(access.class);
    }

    /// Executes one memory access and returns where it was served.
    ///
    /// Accesses of different cores may be submitted in any order; for
    /// results comparable to [`Simulator::run`], advance the core whose
    /// [`Simulator::core_clock`] is smallest first.
    pub fn step(&mut self, access: &MemoryAccess) -> AccessOutcome {
        let served_by = self.process_access(access);
        self.total_accesses += 1;
        AccessOutcome {
            core: access.core,
            served_by,
            finish: self.tiles[access.core.index()].clock,
        }
    }

    /// Snapshots the simulation results accumulated so far into a
    /// [`SimulationReport`].
    ///
    /// The snapshot includes the final-barrier synchronization time as if
    /// the stream ended now, but does not consume or alter any state:
    /// stepping can continue afterwards, which makes this the checkpoint
    /// primitive for long streams.
    pub fn report(&self) -> SimulationReport {
        // Final barrier: completion is the slowest core; the rest synchronize.
        let completion = (0..self.active_cores)
            .map(|c| self.tiles[c].clock)
            .fold(Cycle::ZERO, Cycle::max);
        let mut latency = self.latency;
        for c in 0..self.active_cores {
            latency.synchronization += completion.since(self.tiles[c].clock).value();
        }
        // Fold open runs into cloned per-class histograms without copying
        // the open-run tracker (one entry per live line — the bulk of the
        // profile mid-stream).  At stream end `run_source` has already
        // finalized in place, so this clones a handful of histograms only.
        let run_lengths = self.run_lengths.finalized_snapshot();

        // Network and DRAM energy from their cumulative event counts.
        let mut energy = self.energy.clone();
        let stats = self.network.stats();
        energy.record(
            Component::NetworkRouter,
            stats.router_traversals() as f64 * self.energy_model.router_flit_pj,
        );
        energy.record(
            Component::NetworkLink,
            stats.flit_hops() as f64 * self.energy_model.link_flit_hop_pj,
        );
        energy.record(
            Component::Dram,
            self.dram.total_accesses() as f64 * self.energy_model.dram_access_pj,
        );

        SimulationReport {
            benchmark: self.benchmark.clone(),
            scheme: self.label.clone(),
            scheme_id: self.scheme_id,
            completion_time: completion,
            latency,
            misses: self.misses,
            energy,
            run_lengths,
            total_accesses: self.total_accesses,
            replicas_created: self.replicas_created,
            back_invalidations: self.back_invalidations,
            classifier: self.classifier_stats(),
        }
    }

    /// Classifier variance over the run so far: the counters folded in
    /// from evicted home entries combined with a walk of the live ones.
    fn classifier_stats(&self) -> ClassifierStats {
        let mut stats = ClassifierStats {
            mode_flips: self.retired_classifier_flips,
            peak_tracked: self.retired_classifier_peak,
        };
        for tile in &self.tiles {
            for (_, entry) in tile.llc.iter() {
                if let LlcEntry::Home(home) = entry {
                    stats.mode_flips += home.classifier.mode_flips();
                    stats.peak_tracked = stats
                        .peak_tracked
                        .max(home.classifier.peak_tracked() as u64);
                }
            }
        }
        stats
    }

    /// Runs a workload trace to completion: a profiling pass, then a loop
    /// over [`Simulator::step`] that always advances the core furthest
    /// behind, then a [`Simulator::report`] snapshot.
    ///
    /// This is [`Simulator::run_source`] over an in-memory
    /// [`MemorySource`]; recorded traces replayed through `run_source`
    /// therefore produce byte-identical reports to this method.
    ///
    /// # Panics
    ///
    /// Panics if the trace was generated for more cores than the simulated
    /// system has.
    pub fn run(&mut self, trace: &WorkloadTrace) -> SimulationReport {
        require(
            Invariant::TraceCoreBound,
            trace.num_cores() <= self.system.num_cores,
            || {
                format!(
                    "trace has {} cores but the system only has {}",
                    trace.num_cores(),
                    self.system.num_cores
                )
            },
        );
        let mut source = MemorySource::new(trace);
        self.run_source(&mut source)
            .unwrap_or_else(|error| unreachable!("in-memory traces cannot fail to stream: {error}"))
    }

    /// Runs any [`TraceSource`] to completion — the streaming counterpart
    /// of [`Simulator::run`], consuming file-backed traces in O(chunk)
    /// memory instead of O(trace).
    ///
    /// The schedule produces reports byte-identical to `run`: a whole-trace
    /// profiling pass (page classification and ground-truth data classes —
    /// whose final state is the same in any complete order, so each source
    /// serves its cheapest order via [`TraceSource::next_access`]), a
    /// rewind, then a stepping loop that always advances the core whose
    /// local clock is furthest behind (ties to the lowest core index).
    ///
    /// # Errors
    ///
    /// [`TraceError::CoreCountExceeded`] when the source spans more cores
    /// than the simulated system has (before any state is touched), and
    /// any [`TraceError`] from the source (decode failures, I/O) — the
    /// simulator's accumulated state is then that of the prefix executed so
    /// far.
    pub fn run_source(
        &mut self,
        source: &mut dyn TraceSource,
    ) -> Result<SimulationReport, TraceError> {
        match self.run_source_observed(source, None)? {
            RunOutcome::Completed(report) => Ok(*report),
            RunOutcome::Cancelled(_) => unreachable!("without an observer nothing can cancel"),
        }
    }

    /// [`Simulator::run_source`] with a [`RunObserver`] called at scheduling
    /// boundaries every [`RunObserver::interval`] accesses — the hook for
    /// progress reporting, periodic checkpoint spills, and cancellation.
    ///
    /// Returning [`RunControl::Cancel`] stops the run at the current loop
    /// boundary and yields [`RunOutcome::Cancelled`] carrying an
    /// [`EngineCheckpoint`] from which [`Simulator::resume_source`] continues
    /// with results byte-identical to never having stopped.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run_source`].
    pub fn run_source_observed(
        &mut self,
        source: &mut dyn TraceSource,
        observer: Option<&mut dyn RunObserver>,
    ) -> Result<RunOutcome, TraceError> {
        let name = source.name().to_string();
        let num_cores = source.num_cores();
        if num_cores > self.system.num_cores {
            return Err(TraceError::CoreCountExceeded {
                trace_cores: num_cores,
                limit: self.system.num_cores,
            });
        }
        self.begin(&name, num_cores);
        self.profile_source(source)?;
        source.rewind()?;
        self.execute_source(source, num_cores, vec![0; num_cores], observer)
    }

    /// Continues a run from an [`EngineCheckpoint`] captured on the same
    /// benchmark, scheme and configuration, producing results byte-identical
    /// to the uninterrupted run.
    ///
    /// The home map and per-line data classes are rebuilt by re-running the
    /// profiling pass (their final state is order-independent and they never
    /// change after profiling); each core's stream is then fast-forwarded by
    /// its [`EngineCheckpoint::consumed`] cursor and the scheduling loop
    /// continues — rebuilding the scheduler heap from the restored clocks
    /// reproduces the continuation schedule exactly, because the next core
    /// is always the minimum `(clock, core)` key over the pending set.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run_source`].
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not match the source (benchmark name,
    /// core count) or this simulator (scheme label, replication threshold,
    /// classifier organization, tile geometry), or if the stream is shorter
    /// than the checkpoint's cursor.
    pub fn resume_source(
        &mut self,
        source: &mut dyn TraceSource,
        checkpoint: &EngineCheckpoint,
        observer: Option<&mut dyn RunObserver>,
    ) -> Result<RunOutcome, TraceError> {
        let name = source.name().to_string();
        let num_cores = source.num_cores();
        if num_cores > self.system.num_cores {
            return Err(TraceError::CoreCountExceeded {
                trace_cores: num_cores,
                limit: self.system.num_cores,
            });
        }
        assert_eq!(
            checkpoint.benchmark, name,
            "checkpoint was captured on a different benchmark"
        );
        assert_eq!(
            checkpoint.num_cores, num_cores,
            "checkpoint was captured on a stream with a different core count"
        );
        self.begin(&name, num_cores);
        self.profile_source(source)?;
        source.rewind()?;
        self.restore_from_checkpoint(checkpoint);
        // Fast-forward every core's stream past the accesses it has already
        // stepped; the remaining per-core suffixes are exactly the pending
        // windows the interrupted loop still had to execute.
        for core in 0..num_cores {
            for _ in 0..checkpoint.consumed[core] {
                let replayed = source.next_for_core(CoreId::new(core))?;
                assert!(
                    replayed.is_some(),
                    "stream for core {core} is shorter than the checkpoint cursor"
                );
            }
        }
        self.execute_source(source, num_cores, checkpoint.consumed.clone(), observer)
    }

    /// The profiling pass shared by [`Simulator::run_source_observed`] and
    /// [`Simulator::resume_source`].  Page classification and the per-line
    /// class map converge to the same final state in any complete order
    /// (instruction marking is sticky, the private→shared upgrade is
    /// commutative, and a line's class is consistent within a trace), so the
    /// source streams in its own order — file order for LADT readers, which
    /// keeps replay memory O(chunk).
    fn profile_source(&mut self, source: &mut dyn TraceSource) -> Result<(), TraceError> {
        source.rewind()?;
        while let Some(access) = source.next_access()? {
            self.profile_access(&access);
        }
        Ok(())
    }

    /// Execution pass: interleave cores by local time, always advancing the
    /// core that is furthest behind (ties to the lowest index).  A min-heap
    /// of (clock, core) replaces the per-access linear scan: stepping
    /// mutates only the issuing core's clock, so every other heap key stays
    /// valid (see `crate::schedule`).  While the stepped core's new key is
    /// still <= the heap minimum it keeps running without any heap traffic
    /// — batched dispatch.
    ///
    /// `consumed` carries the per-core cursor of accesses already stepped
    /// (all zeros for a fresh run); the source must already be positioned on
    /// each core's first unstepped access.
    fn execute_source(
        &mut self,
        source: &mut dyn TraceSource,
        num_cores: usize,
        mut consumed: Vec<u64>,
        mut observer: Option<&mut dyn RunObserver>,
    ) -> Result<RunOutcome, TraceError> {
        let mut pending: Vec<Option<MemoryAccess>> = Vec::with_capacity(num_cores);
        let mut scheduler = CoreScheduler::with_capacity(num_cores);
        for core in 0..num_cores {
            let access = source.next_for_core(CoreId::new(core))?;
            if access.is_some() {
                scheduler.push(core, self.tiles[core].clock);
            }
            pending.push(access);
        }
        let interval = observer.as_ref().map_or(u64::MAX, |o| o.interval().max(1));
        let mut since_observe: u64 = 0;
        #[cfg(debug_assertions)]
        let mut steps_since_check: u32 = 0;
        // Steps in the current same-core dispatch batch; flushed to the
        // instruments at batch boundaries so the per-step cost of
        // observation is a local increment, not an atomic.
        let mut batch_len: u64 = 0;
        let mut current = scheduler.pop();
        while let Some(core) = current {
            let Some(access) = pending[core].take() else {
                unreachable!("scheduled cores always have a pending access");
            };
            self.step(&access);
            consumed[core] += 1;
            batch_len += 1;
            pending[core] = source.next_for_core(CoreId::new(core))?;

            // Debug builds sweep the live state against the shared invariant
            // catalog every `RUNTIME_CHECK_INTERVAL` steps (and once more
            // after the stream drains, below).
            #[cfg(debug_assertions)]
            {
                steps_since_check += 1;
                if steps_since_check >= RUNTIME_CHECK_INTERVAL {
                    steps_since_check = 0;
                    self.enforce_protocol_invariants();
                }
            }

            if let Some(observer) = observer.as_deref_mut() {
                since_observe += 1;
                if since_observe >= interval {
                    since_observe = 0;
                    let progress = RunProgress {
                        sim: self,
                        consumed: &consumed,
                    };
                    if matches!(observer.observe(progress), RunControl::Cancel) {
                        self.obs.accesses.add(batch_len);
                        self.obs.batch_steps.record(batch_len);
                        self.obs.checkpoints_captured.inc();
                        return Ok(RunOutcome::Cancelled(Box::new(
                            self.capture_checkpoint(&consumed),
                        )));
                    }
                }
            }

            current = if pending[core].is_none() {
                self.obs.accesses.add(batch_len);
                self.obs.batch_steps.record(batch_len);
                batch_len = 0;
                scheduler.pop()
            } else if scheduler.runs_next(core, self.tiles[core].clock) {
                Some(core)
            } else {
                self.obs.accesses.add(batch_len);
                self.obs.batch_steps.record(batch_len);
                batch_len = 0;
                scheduler.push(core, self.tiles[core].clock);
                scheduler.pop()
            };
        }
        #[cfg(debug_assertions)]
        self.enforce_protocol_invariants();

        // The stream has ended: close the open runs in place so the report
        // below (and any further `report` calls) need not fold them again.
        self.run_lengths.finalize();
        self.obs.runs_completed.inc();

        Ok(RunOutcome::Completed(Box::new(self.report())))
    }

    /// Snapshots every piece of mutable state into an [`EngineCheckpoint`].
    ///
    /// `consumed` is the per-core count of accesses already stepped — the
    /// stream cursor [`Simulator::resume_source`] fast-forwards by.  The
    /// checkpoint must be taken at a scheduling-loop boundary (after a
    /// [`Simulator::step`] and its pending-window refill), which is where
    /// [`Simulator::run_source_observed`] calls its observer.
    ///
    /// # Panics
    ///
    /// Panics if `consumed` does not cover exactly the active cores.
    pub fn capture_checkpoint(&self, consumed: &[u64]) -> EngineCheckpoint {
        assert_eq!(
            consumed.len(),
            self.active_cores,
            "one cursor per active core required"
        );
        let mut line_busy_until: Vec<(CacheLine, Cycle)> = self
            .line_busy_until
            .iter()
            .map(|(line, cycle)| (*line, *cycle))
            .collect();
        line_busy_until.sort_unstable_by_key(|(line, _)| *line);
        EngineCheckpoint {
            benchmark: self.benchmark.clone(),
            num_cores: self.active_cores,
            scheme: self.label.clone(),
            replication_threshold: self.replication.replication_threshold,
            classifier_capacity: self.replication.classifier.capacity(),
            tiles: self
                .tiles
                .iter()
                .map(|tile| {
                    let mut llc = tile.llc.state();
                    // Normalize classifier diagnostics to the baseline
                    // from_snapshot restores to, so resuming from this
                    // in-memory checkpoint and from its JSON round-trip
                    // restore identical state.  The capture-time totals are
                    // preserved in classifier_mode_flips/_peak_tracked.
                    for (_, _, _, entry) in &mut llc.slots {
                        if let LlcEntry::Home(home) = entry {
                            home.classifier.reset_diagnostics();
                        }
                    }
                    TileCheckpoint {
                        clock: tile.clock,
                        l1i: tile.l1i.state(),
                        l1d: tile.l1d.state(),
                        llc,
                    }
                })
                .collect(),
            network: self.network.state(),
            dram: self.dram.state(),
            rng: self.rng.state(),
            energy: self.energy.clone(),
            latency: self.latency,
            misses: self.misses,
            run_lengths: self.run_lengths.clone(),
            line_busy_until,
            replicas_created: self.replicas_created,
            back_invalidations: self.back_invalidations,
            total_accesses: self.total_accesses,
            classifier: self.classifier_stats(),
            consumed: consumed.to_vec(),
        }
    }

    /// Restores every piece of mutable state from a checkpoint captured on
    /// the same configuration.  Call after [`Simulator::begin`] and the
    /// profiling pass — the home map and per-line classes are rebuilt by
    /// profiling, not restored (see [`EngineCheckpoint`]).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not match this simulator's benchmark,
    /// scheme, replication parameters or geometry; the lower crates'
    /// validating restore constructors additionally reject state that
    /// violates protocol invariants.
    pub fn restore_from_checkpoint(&mut self, checkpoint: &EngineCheckpoint) {
        assert_eq!(
            checkpoint.benchmark, self.benchmark,
            "checkpoint was captured on a different benchmark"
        );
        assert_eq!(
            checkpoint.num_cores, self.active_cores,
            "checkpoint was captured with a different active-core count"
        );
        assert_eq!(
            checkpoint.scheme, self.label,
            "checkpoint was captured under a different scheme"
        );
        assert_eq!(
            checkpoint.replication_threshold, self.replication.replication_threshold,
            "checkpoint was captured under a different replication threshold"
        );
        assert_eq!(
            checkpoint.classifier_capacity,
            self.replication.classifier.capacity(),
            "checkpoint was captured under a different classifier organization"
        );
        assert_eq!(
            checkpoint.tiles.len(),
            self.tiles.len(),
            "checkpoint was captured on a system with a different tile count"
        );
        for (tile, snapshot) in self.tiles.iter_mut().zip(&checkpoint.tiles) {
            tile.clock = snapshot.clock;
            tile.l1i.restore_state(&snapshot.l1i);
            tile.l1d.restore_state(&snapshot.l1d);
            tile.llc.restore_state(&snapshot.llc);
        }
        self.network.restore_state(&checkpoint.network);
        self.dram.restore_state(&checkpoint.dram);
        self.rng = DeterministicRng::from_state(checkpoint.rng);
        self.energy = checkpoint.energy.clone();
        self.latency = checkpoint.latency;
        self.misses = checkpoint.misses;
        self.run_lengths = checkpoint.run_lengths.clone();
        self.line_busy_until.clear();
        for (line, cycle) in &checkpoint.line_busy_until {
            self.line_busy_until.insert(*line, *cycle);
        }
        self.replicas_created = checkpoint.replicas_created;
        self.back_invalidations = checkpoint.back_invalidations;
        self.total_accesses = checkpoint.total_accesses;
        // The restored live classifiers restart their diagnostic counters
        // at the from_snapshot baseline, so the capture-time totals seed
        // the retired accumulators: report() then reproduces the straight
        // run's numbers exactly (the post-capture deltas are identical).
        self.retired_classifier_flips = checkpoint.classifier.mode_flips;
        self.retired_classifier_peak = checkpoint.classifier.peak_tracked;
    }

    /// Checks the live engine state against the shared `lad-check` invariant
    /// catalog ([`check_view`] over [`Simulator::protocol_view`]) and
    /// returns every violation found.  An empty vector means the catalog
    /// holds.
    pub fn check_protocol_invariants(&self) -> Vec<Violation> {
        check_view(&EngineView { sim: self })
    }

    /// The engine's read-only [`ProtocolView`], checked by the same
    /// [`check_view`] function that verifies the abstract model in
    /// `lad-check`'s exhaustive exploration.
    pub fn protocol_view(&self) -> impl ProtocolView + '_ {
        EngineView { sim: self }
    }

    /// Panics through the catalog if any protocol invariant is violated in
    /// the live state (the `debug_assertions` runtime hook).
    #[cfg(debug_assertions)]
    fn enforce_protocol_invariants(&self) {
        let violations = self.check_protocol_invariants();
        if let Some(first) = violations.first() {
            violated(first.invariant, &first.details);
        }
    }

    // ----- per-access processing ------------------------------------------

    fn process_access(&mut self, access: &MemoryAccess) -> ServedBy {
        let core = access.core;
        let line = access.address.line(self.system.cache_line_bytes);
        let is_instruction = access.op.is_instruction();
        let is_write = access.op.is_write();

        // Compute phase before the access, plus the 1-cycle L1 access.
        let (l1_latency, clock) = {
            let tile = &self.tiles[core.index()];
            let latency = if is_instruction {
                tile.l1i.access_latency()
            } else {
                tile.l1d.access_latency()
            };
            (latency, tile.clock)
        };
        let mut now = clock + access.compute_cycles as u64 + l1_latency as u64;
        self.latency.compute += access.compute_cycles as u64 + l1_latency as u64;
        self.record_l1_energy(is_instruction, is_write);

        // L1 lookup.
        let mut upgrade_from_shared = false;
        let mut served_by_l1 = false;
        {
            let tile = &mut self.tiles[core.index()];
            if let Some(state) = tile.l1_for(is_instruction).access(line) {
                if !is_write {
                    served_by_l1 = true;
                } else if state.can_write_locally() {
                    *state = MesiState::Modified;
                    served_by_l1 = true;
                } else {
                    // Shared copy: upgrade needed, fall through to the miss path.
                    upgrade_from_shared = true;
                }
            }
        }
        if served_by_l1 {
            self.misses.l1_hits += 1;
            self.tiles[core.index()].clock = now;
            return ServedBy::L1;
        }

        // ----- L1 miss ------------------------------------------------------
        let class = *self.line_class.get(&line).unwrap_or(&access.class);
        let home = self.home_map.home_for(line, core);
        let replica_slice = self.replica_slice_for(core, line);

        // Step 1: look for a replica at the replica location (if any).
        if let Some(replica_core) = replica_slice {
            if replica_core != home {
                if let Some(done) =
                    self.try_replica_access(core, replica_core, line, is_write, class, now)
                {
                    now = done;
                    self.tiles[core.index()].clock = now;
                    return ServedBy::LlcReplica;
                }
            }
        }

        // Step 2: go to the home location.
        let (finish, grant_state, served_offchip) = self.access_home(
            core,
            home,
            replica_slice,
            line,
            is_write,
            class,
            now,
            upgrade_from_shared,
        );
        now = finish;
        if served_offchip {
            self.misses.offchip_misses += 1;
        } else {
            self.misses.llc_home_hits += 1;
        }

        // Step 3: fill the L1.
        let l1_state = if is_write {
            MesiState::Modified
        } else {
            grant_state
        };
        self.fill_l1(core, is_instruction, line, l1_state, now);
        self.tiles[core.index()].clock = now;
        if served_offchip {
            ServedBy::OffChip
        } else {
            ServedBy::LlcHome
        }
    }

    /// The LLC slice that may hold a replica for `core` (its own slice, or
    /// the designated slice of its cluster), or `None` for schemes that never
    /// replicate.
    fn replica_slice_for(&self, core: CoreId, line: CacheLine) -> Option<CoreId> {
        if !self.policy.replicates() {
            return None;
        }
        let cluster = self.replication.cluster_size.max(1);
        if cluster == 1 {
            Some(core)
        } else {
            Some(
                self.network
                    .mesh()
                    .cluster_slice_for_line(core, cluster, line.index()),
            )
        }
    }

    /// Attempts to serve the access from an LLC replica.  Returns the
    /// completion time on a replica hit, or `None` on a replica miss.
    #[allow(clippy::too_many_arguments)]
    fn try_replica_access(
        &mut self,
        core: CoreId,
        replica_core: CoreId,
        line: CacheLine,
        is_write: bool,
        class: DataClass,
        now: Cycle,
    ) -> Option<Cycle> {
        // Travel to the replica slice if it is not the local one.
        let mut t = now;
        if replica_core != core {
            let delivery = self
                .network
                .send(core, replica_core, MessageKind::Control, t);
            t = delivery.arrival;
        }
        self.energy
            .record(Component::L2Cache, self.energy_model.llc_tag_pj);

        let slice = &mut self.tiles[replica_core.index()].llc;
        let entry = slice.access(line);
        let hit = match entry {
            Some(LlcEntry::Replica(replica)) if replica.state.is_valid() => {
                if is_write && !replica.state.can_write_locally() {
                    // Shared replica cannot serve a write: the home will
                    // invalidate it as part of the exclusive request.
                    false
                } else {
                    if is_write {
                        replica.state = MesiState::Modified;
                        replica.dirty = true;
                    }
                    replica.record_hit();
                    true
                }
            }
            _ => false,
        };
        if !hit {
            // Victim Replication moves hit lines to the L1 (exclusive L1/LLC
            // relationship); a miss here simply falls through to the home.
            return None;
        }

        // Account the LLC data access and, for VR, the invalidate-on-hit.
        self.energy
            .record(Component::L2Cache, self.energy_model.llc_data_read_pj);
        let slice_latency = self.tiles[replica_core.index()].llc.access_latency() as u64;
        let replica_state = self.tiles[replica_core.index()]
            .llc
            .probe(line)
            .and_then(LlcEntry::as_replica)
            .map(|r| r.state)
            .unwrap_or(MesiState::Shared);

        if self.policy.invalidate_replica_on_hit() {
            // VR: the replica is moved into the L1; the LLC copy is
            // invalidated (and must be written back again on the next L1
            // eviction) — the write-energy overhead the paper describes.
            self.tiles[replica_core.index()].llc.invalidate(line);
            self.energy
                .record(Component::L2Cache, self.energy_model.llc_data_write_pj);
        }

        let mut finish = t + slice_latency;
        if replica_core != core {
            let delivery = self
                .network
                .send(replica_core, core, MessageKind::Data, finish);
            finish = delivery.arrival;
        }
        self.latency.l1_to_llc_replica += finish.since(now).value();
        self.misses.llc_replica_hits += 1;
        self.run_lengths.record_access(line, core, class, is_write);

        // Install in the L1.
        let l1_state = if is_write {
            MesiState::Modified
        } else if replica_state.can_write_locally() {
            MesiState::Exclusive
        } else {
            MesiState::Shared
        };
        let is_instruction = class == DataClass::Instruction;
        self.fill_l1(core, is_instruction, line, l1_state, finish);
        Some(finish)
    }

    /// Processes the request at the home LLC slice: serialization, LLC/DRAM
    /// access, directory actions and the replication decision.
    ///
    /// Returns `(completion_time_at_requester, granted_state, served_offchip)`.
    #[allow(clippy::too_many_arguments)]
    fn access_home(
        &mut self,
        core: CoreId,
        home: CoreId,
        replica_slice: Option<CoreId>,
        line: CacheLine,
        is_write: bool,
        class: DataClass,
        now: Cycle,
        _upgrade: bool,
    ) -> (Cycle, MesiState, bool) {
        // If the requester holds a Shared LLC replica and wants to write, the
        // replica is invalidated as part of obtaining exclusivity; collect
        // its reuse counter for the classifier.
        let mut own_replica_reuse: Option<u32> = None;
        if is_write {
            if let Some(rc) = replica_slice {
                if rc != home {
                    if let Some(LlcEntry::Replica(rep)) = self.tiles[rc.index()].llc.probe(line) {
                        own_replica_reuse = Some(rep.reuse.value());
                    }
                    if own_replica_reuse.is_some() {
                        self.tiles[rc.index()].llc.invalidate(line);
                    }
                }
            }
        }

        // Request to the home.
        let mut request_and_reply = 0u64;
        let mut t = now;
        if home != core {
            let delivery = self.network.send(core, home, MessageKind::Control, t);
            request_and_reply += delivery.latency.value();
            t = delivery.arrival;
        }

        // Serialization at the home (memory-consistency ordering).
        let busy = self
            .line_busy_until
            .get(&line)
            .copied()
            .unwrap_or(Cycle::ZERO);
        let start = t.max(busy);
        self.latency.llc_home_waiting += start.since(t).value();
        let mut t_home = start;

        // Home LLC lookup (tag + directory).
        self.energy
            .record(Component::L2Cache, self.energy_model.llc_tag_pj);
        self.energy
            .record(Component::Directory, self.energy_model.directory_access_pj);
        if self.policy.uses_classifier() {
            self.energy
                .record(Component::Directory, self.energy_model.classifier_access_pj);
        }
        let llc_latency = self.tiles[home.index()].llc.access_latency() as u64;

        let home_has_line = {
            let slice = &mut self.tiles[home.index()].llc;
            match slice.access(line).map(|entry| entry.is_home()) {
                Some(true) => true,
                Some(false) => {
                    // A stale replica at what is now the home slice (possible
                    // only across placement-policy quirks); treat as a miss
                    // and drop it.
                    slice.invalidate(line);
                    false
                }
                None => false,
            }
        };
        t_home += llc_latency;
        request_and_reply += llc_latency;

        let mut served_offchip = false;
        if home_has_line {
            self.energy
                .record(Component::L2Cache, self.energy_model.llc_data_read_pj);
        } else {
            // Fetch from DRAM: home -> memory controller -> home.
            served_offchip = true;
            let ctrl_core = self.dram.controller_core_for(line.index());
            let mut t_mem = t_home;
            if ctrl_core != home {
                let delivery = self
                    .network
                    .send(home, ctrl_core, MessageKind::Control, t_mem);
                t_mem = delivery.arrival;
            }
            let access = self.dram.access(line.index(), t_mem);
            t_mem = access.completion;
            if ctrl_core != home {
                let delivery = self.network.send(ctrl_core, home, MessageKind::Data, t_mem);
                t_mem = delivery.arrival;
            }
            self.latency.llc_home_to_offchip += t_mem.since(t_home).value();
            t_home = t_mem;

            // Install the home entry, evicting a victim if needed.
            self.energy
                .record(Component::L2Cache, self.energy_model.llc_data_write_pj);
            let new_entry = LlcEntry::Home(HomeEntry::new(
                self.system.ackwise_pointers,
                self.replication.classifier,
                self.replication.replication_threshold,
            ));
            let evicted = self.tiles[home.index()].llc.fill(line, new_entry);
            if let Some((victim_line, victim_entry)) = evicted {
                self.handle_llc_victim(home, victim_line, victim_entry, t_home);
            }
        }

        // Directory actions.
        let grant_state;
        let mut other_sharers_present = false;
        if is_write {
            let outcome = {
                let entry = self.home_entry_mut(home, line);
                entry.directory.handle_write(core)
            };
            other_sharers_present =
                outcome.invalidations.expected_acks() > 0 || outcome.prior_owner.is_some();
            let targets: Vec<CoreId> = match &outcome.invalidations {
                InvalidationTargets::Exact(cores) => cores.clone(),
                InvalidationTargets::Broadcast { .. } => (0..self.system.num_cores)
                    .map(CoreId::new)
                    .filter(|c| *c != core)
                    .collect(),
            };
            let (probes, sharer_latency) = self.invalidate_sharers(home, &targets, line, t_home);
            self.latency.llc_home_to_sharers += sharer_latency.value();
            t_home += sharer_latency.value();

            let entry = self.home_entry_mut(home, line);
            for probe in &probes {
                if let Some(reuse) = probe.replica_reuse {
                    entry.classifier.on_replica_invalidated(probe.target, reuse);
                } else if probe.had_copy {
                    entry.classifier.on_sharer_invalidated(probe.target);
                }
                if probe.dirty {
                    entry.dirty = true;
                }
                if probe.had_copy || probe.replica_reuse.is_some() {
                    entry.directory.handle_eviction(probe.target);
                }
            }
            // Re-establish the writer as the owner (handle_eviction above may
            // have cleared sharers that handle_write had already granted).
            entry.directory.handle_write(core);
            grant_state = MesiState::Modified;
        } else {
            let outcome = {
                let entry = self.home_entry_mut(home, line);
                entry.directory.handle_read(core)
            };
            if let Some(owner) = outcome.downgrade_owner {
                if owner != core {
                    let (probe, sharer_latency) = self.downgrade_owner(home, owner, line, t_home);
                    self.latency.llc_home_to_sharers += sharer_latency.value();
                    t_home += sharer_latency.value();
                    let entry = self.home_entry_mut(home, line);
                    if probe.dirty {
                        entry.dirty = true;
                    }
                }
            }
            grant_state = outcome.grant.as_state();
        }

        // Replication decision: the policy classifies the requester (and
        // trains any classifier state in the home entry); the engine only
        // materializes a replica when a distinct replica slice exists.
        let policy = Arc::clone(&self.policy);
        let wants_replica = {
            let entry = self.home_entry_mut(home, line);
            policy.replicate_on_fill(FillDecision {
                core,
                is_write,
                other_sharers_present,
                own_replica_reuse,
                classifier: &mut entry.classifier,
            })
        };
        let mut create_replica = false;
        let mut replica_state = grant_state;
        if wants_replica {
            if let Some(rc) = replica_slice {
                if rc != home {
                    create_replica = true;
                    replica_state = if is_write {
                        MesiState::Modified
                    } else {
                        MesiState::Shared
                    };
                }
            }
        }

        // Track the run at the home for the Figure 1 characterization.
        self.run_lengths.record_access(line, core, class, is_write);

        // The home is busy with this line until processing finished.
        self.line_busy_until.insert(line, t_home);

        // Reply to the requester.
        let mut finish = t_home;
        if home != core {
            let delivery = self.network.send(home, core, MessageKind::Data, finish);
            request_and_reply += delivery.latency.value();
            finish = delivery.arrival;
        }
        self.latency.l1_to_llc_home += request_and_reply;

        // Install the replica (locality-aware scheme, misses only).
        if create_replica {
            if let Some(rc) = replica_slice {
                if rc != core {
                    // Cluster-level replication: the data is also forwarded to
                    // the cluster's replica slice.
                    self.network.send(home, rc, MessageKind::Data, t_home);
                }
                self.install_replica(rc, line, replica_state, finish);
            }
        }

        (finish, grant_state, served_offchip)
    }

    /// Returns the home entry for `line` at `home`, which must exist.
    fn home_entry_mut(&mut self, home: CoreId, line: CacheLine) -> &mut HomeEntry {
        self.tiles[home.index()]
            .llc
            .probe_mut(line)
            .and_then(LlcEntry::as_home_mut)
            .unwrap_or_else(|| {
                violated(
                    Invariant::HomeResidentDuringRequest,
                    &format!("line {line:?} has no home entry at {home:?} mid-request"),
                )
            })
    }

    /// Sends invalidations to `targets`, probing their L1 caches and LLC
    /// replicas.  Returns the probe results and the latency of the round
    /// (invalidations are sent in parallel; the home waits for the slowest
    /// acknowledgement).
    fn invalidate_sharers(
        &mut self,
        home: CoreId,
        targets: &[CoreId],
        line: CacheLine,
        now: Cycle,
    ) -> (Vec<SharerProbe>, Cycle) {
        let mut probes = Vec::with_capacity(targets.len());
        let mut max_latency = Cycle::ZERO;
        for &target in targets {
            let mut arrival = now;
            if target != home {
                let delivery = self.network.send(home, target, MessageKind::Control, now);
                arrival = delivery.arrival;
            }
            // Probe both L1 caches and the LLC slice of the target.
            self.energy
                .record(Component::L1D, self.energy_model.l1d_read_pj);
            self.energy
                .record(Component::L1I, self.energy_model.l1i_access_pj);
            self.energy
                .record(Component::L2Cache, self.energy_model.llc_tag_pj);

            let tile = &mut self.tiles[target.index()];
            let l1d_state = tile.l1d.invalidate(line);
            let l1i_state = tile.l1i.invalidate(line);
            let mut dirty = matches!(l1d_state, Some(MesiState::Modified));
            let mut had_copy = l1d_state.is_some() || l1i_state.is_some();
            let mut replica_reuse = None;
            let is_replica = tile
                .llc
                .probe(line)
                .map(|e| e.is_replica())
                .unwrap_or(false);
            if is_replica {
                if let Some(LlcEntry::Replica(rep)) = tile.llc.invalidate(line) {
                    replica_reuse = Some(rep.reuse.value());
                    dirty |= rep.dirty;
                    had_copy = true;
                }
            }
            let ack_kind = if dirty {
                MessageKind::Data
            } else {
                MessageKind::Control
            };
            let back = if target != home {
                self.network.send(target, home, ack_kind, arrival).arrival
            } else {
                arrival
            };
            max_latency = max_latency.max(back.since(now));
            probes.push(SharerProbe {
                target,
                replica_reuse,
                had_copy,
                dirty,
            });
        }
        (probes, max_latency)
    }

    /// Downgrades a remote exclusive owner to Shared, retrieving dirty data.
    fn downgrade_owner(
        &mut self,
        home: CoreId,
        owner: CoreId,
        line: CacheLine,
        now: Cycle,
    ) -> (SharerProbe, Cycle) {
        let mut arrival = now;
        if owner != home {
            arrival = self
                .network
                .send(home, owner, MessageKind::Control, now)
                .arrival;
        }
        self.energy
            .record(Component::L1D, self.energy_model.l1d_read_pj);
        self.energy
            .record(Component::L2Cache, self.energy_model.llc_tag_pj);

        let tile = &mut self.tiles[owner.index()];
        let mut dirty = false;
        if let Some(state) = tile.l1d.probe_mut(line) {
            dirty |= state.is_dirty();
            *state = state.after_downgrade();
        }
        // The exclusive grant may live in the L1-I (a line whose first
        // access was an instruction fetch): downgrade it there as well, or
        // the owner keeps a writable copy alongside the new sharer.
        if let Some(state) = tile.l1i.probe_mut(line) {
            dirty |= state.is_dirty();
            *state = state.after_downgrade();
        }
        if let Some(LlcEntry::Replica(rep)) = tile.llc.probe_mut(line) {
            dirty |= rep.dirty;
            rep.state = rep.state.after_downgrade();
            rep.dirty = false;
        }
        let back = if owner != home {
            self.network
                .send(owner, home, MessageKind::Data, arrival)
                .arrival
        } else {
            arrival
        };
        (
            SharerProbe {
                target: owner,
                replica_reuse: None,
                had_copy: true,
                dirty,
            },
            back.since(now),
        )
    }

    /// Installs a replica in `slice_core`'s LLC slice.
    fn install_replica(
        &mut self,
        slice_core: CoreId,
        line: CacheLine,
        state: MesiState,
        now: Cycle,
    ) {
        self.energy
            .record(Component::L2Cache, self.energy_model.llc_data_write_pj);
        let entry = LlcEntry::Replica(ReplicaEntry::new(
            state,
            self.replication.replication_threshold,
        ));
        let evicted = self.tiles[slice_core.index()].llc.fill(line, entry);
        self.replicas_created += 1;
        if let Some((victim_line, victim_entry)) = evicted {
            self.handle_llc_victim(slice_core, victim_line, victim_entry, now);
        }
    }

    /// Fills the requesting L1 and handles the evicted victim.
    fn fill_l1(
        &mut self,
        core: CoreId,
        instruction: bool,
        line: CacheLine,
        state: MesiState,
        now: Cycle,
    ) {
        self.record_l1_energy(instruction, true);
        let victim = self.tiles[core.index()]
            .l1_for(instruction)
            .fill(line, state);
        if let Some((victim_line, victim_state)) = victim {
            self.handle_l1_victim(core, victim_line, victim_state, now);
        }
    }

    /// Handles the eviction of an L1 line: merge into a local replica, turn
    /// it into a new replica (VR / ASR), or notify the line's home.
    fn handle_l1_victim(&mut self, core: CoreId, line: CacheLine, state: MesiState, now: Cycle) {
        if !state.is_valid() {
            return;
        }
        let dirty = state.is_dirty();
        let home = self.home_map.home_for(line, core);
        let policy = Arc::clone(&self.policy);

        // Merge into an existing entry in the local (or cluster) LLC slice.
        if let Some(rc) = self.replica_slice_for(core, line) {
            let slice = &mut self.tiles[rc.index()].llc;
            match slice.probe_mut(line) {
                Some(LlcEntry::Replica(rep)) => {
                    rep.dirty |= dirty;
                    rep.l1_copy = false;
                    if dirty {
                        rep.state = MesiState::Modified;
                    }
                    self.energy
                        .record(Component::L2Cache, self.energy_model.llc_data_write_pj);
                    return;
                }
                Some(LlcEntry::Home(entry)) if rc == home => {
                    // The local slice is the line's home: the write-back (if
                    // any) merges there and the directory drops this sharer.
                    if dirty {
                        entry.dirty = true;
                        self.energy
                            .record(Component::L2Cache, self.energy_model.llc_data_write_pj);
                    }
                    entry.directory.handle_eviction(core);
                    if policy.uses_classifier() {
                        entry.classifier.on_sharer_evicted(core);
                    }
                    self.energy
                        .record(Component::Directory, self.energy_model.directory_access_pj);
                    return;
                }
                _ => {}
            }
        }

        // Eviction-driven replication (Victim Replication, ASR, customs):
        // ask the policy whether the victim becomes a replica.
        if policy.replicates_on_eviction() {
            let replica_core = core;
            // victim_for is None when the set still has room (or the line is
            // somehow already resident).  The candidate is borrowed straight
            // out of the slice — no clone on this hot path.
            let candidate = self.tiles[replica_core.index()].llc.victim_for(line);
            let set_has_free_way = candidate.is_none();
            let class = *self.line_class.get(&line).unwrap_or(&DataClass::Private);
            let install = policy.replicate_on_l1_evict(EvictDecision {
                class,
                set_has_free_way,
                victim: candidate.map(|(_, entry)| entry),
                rng: &mut self.rng,
            });
            if install && home != replica_core {
                self.energy
                    .record(Component::L2Cache, self.energy_model.llc_data_write_pj);
                let mut rep = ReplicaEntry::new(state, self.replication.replication_threshold);
                rep.l1_copy = false;
                rep.dirty = dirty;
                let evicted = self.tiles[replica_core.index()]
                    .llc
                    .fill(line, LlcEntry::Replica(rep));
                self.replicas_created += 1;
                if let Some((victim_line, victim_entry)) = evicted {
                    self.handle_llc_victim(replica_core, victim_line, victim_entry, now);
                }
                return;
            }
        }

        // Otherwise notify the home that this core no longer holds the line.
        self.notify_home_of_eviction(core, home, line, dirty, None, now);
    }

    /// Handles the eviction of an LLC entry (replica or home line) from
    /// `slice_core`'s slice.
    fn handle_llc_victim(
        &mut self,
        slice_core: CoreId,
        line: CacheLine,
        entry: LlcEntry,
        now: Cycle,
    ) {
        match entry {
            LlcEntry::Replica(rep) => {
                // Back-invalidate the local L1 copies (the LLC slice is
                // inclusive of the local L1 for replicas).
                let tile = &mut self.tiles[slice_core.index()];
                let l1d = tile.l1d.invalidate(line);
                let l1i = tile.l1i.invalidate(line);
                if l1d.is_some() || l1i.is_some() {
                    self.back_invalidations += 1;
                }
                let dirty = rep.dirty || matches!(l1d, Some(MesiState::Modified));
                let home = self.home_map.home_for(line, slice_core);
                self.notify_home_of_eviction(
                    slice_core,
                    home,
                    line,
                    dirty,
                    Some(rep.reuse.value()),
                    now,
                );
            }
            LlcEntry::Home(home_entry) => {
                // The entry's classifier dies with it: fold its variance
                // counters into the retired accumulators so report() still
                // sees the whole run.
                self.retired_classifier_flips += home_entry.classifier.mode_flips();
                self.retired_classifier_peak = self
                    .retired_classifier_peak
                    .max(home_entry.classifier.peak_tracked() as u64);
                // Inclusive LLC: every sharer's copy must be invalidated.
                let targets = home_entry
                    .directory
                    .back_invalidation_targets(self.system.num_cores);
                for target in targets {
                    let tile = &mut self.tiles[target.index()];
                    let had_l1 =
                        tile.l1d.invalidate(line).is_some() | tile.l1i.invalidate(line).is_some();
                    let had_replica = tile
                        .llc
                        .probe(line)
                        .map(|e| e.is_replica())
                        .unwrap_or(false);
                    if had_replica {
                        tile.llc.invalidate(line);
                    }
                    if had_l1 || had_replica {
                        self.back_invalidations += 1;
                        if target != slice_core {
                            self.network
                                .send(slice_core, target, MessageKind::Control, now);
                            self.network
                                .send(target, slice_core, MessageKind::Control, now);
                        }
                    }
                }
                if home_entry.dirty {
                    // Write the line back to DRAM.
                    let ctrl_core = self.dram.controller_core_for(line.index());
                    if ctrl_core != slice_core {
                        self.network
                            .send(slice_core, ctrl_core, MessageKind::Data, now);
                    }
                    self.dram.access(line.index(), now);
                }
                self.run_lengths.record_eviction(line);
                self.line_busy_until.remove(&line);
            }
        }
    }

    /// Notifies the home that `core`'s hierarchy no longer holds `line`
    /// (an eviction acknowledgement, optionally carrying dirty data and the
    /// replica-reuse counter).  Eviction messages are off the critical path:
    /// they cost network traffic and energy but do not delay the evicting
    /// core.
    fn notify_home_of_eviction(
        &mut self,
        core: CoreId,
        home: CoreId,
        line: CacheLine,
        dirty: bool,
        replica_reuse: Option<u32>,
        now: Cycle,
    ) {
        if home != core {
            let kind = if dirty {
                MessageKind::Data
            } else {
                MessageKind::Control
            };
            self.network.send(core, home, kind, now);
        }
        self.energy
            .record(Component::Directory, self.energy_model.directory_access_pj);
        if let Some(LlcEntry::Home(entry)) = self.tiles[home.index()].llc.probe_mut(line) {
            entry.directory.handle_eviction(core);
            if dirty {
                entry.dirty = true;
            }
            if self.policy.uses_classifier() {
                match replica_reuse {
                    Some(reuse) => entry.classifier.on_replica_evicted(core, reuse),
                    None => entry.classifier.on_sharer_evicted(core),
                }
            }
        }
    }

    fn record_l1_energy(&mut self, instruction: bool, write: bool) {
        if instruction {
            self.energy
                .record(Component::L1I, self.energy_model.l1i_access_pj);
        } else if write {
            self.energy
                .record(Component::L1D, self.energy_model.l1d_write_pj);
        } else {
            self.energy
                .record(Component::L1D, self.energy_model.l1d_read_pj);
        }
    }
}

/// How many [`Simulator::step`]s `run_source` executes between runtime
/// sweeps of the invariant catalog in debug builds.  Each sweep walks every
/// resident line across every tile, so the interval trades checking density
/// against replay speed; 4096 checks each engine-suite trace several times
/// mid-run (a final sweep after the stream drains covers the end state
/// regardless) while keeping the suite's debug runtime close to unchecked.
#[cfg(debug_assertions)]
const RUNTIME_CHECK_INTERVAL: u32 = 4096;

/// The live engine as a [`ProtocolView`]: the runtime face of the shared
/// invariant catalog (`lad-check` explores the abstract model through the
/// identical trait and checks).
struct EngineView<'a> {
    sim: &'a Simulator,
}

impl ProtocolView for EngineView<'_> {
    fn num_cores(&self) -> usize {
        self.sim.system.num_cores
    }

    fn lines(&self) -> Vec<CacheLine> {
        let mut lines = BTreeSet::new();
        for tile in &self.sim.tiles {
            lines.extend(tile.l1i.iter().map(|(line, _)| line));
            lines.extend(tile.l1d.iter().map(|(line, _)| line));
            lines.extend(tile.llc.iter().map(|(line, _)| line));
        }
        lines.into_iter().collect()
    }

    fn l1_states(&self, core: CoreId, line: CacheLine) -> Vec<MesiState> {
        let tile = &self.sim.tiles[core.index()];
        tile.l1i
            .probe(line)
            .into_iter()
            .chain(tile.l1d.probe(line))
            .copied()
            .collect()
    }

    fn replica(&self, core: CoreId, line: CacheLine) -> Option<ReplicaEntry> {
        self.sim.tiles[core.index()]
            .llc
            .probe(line)
            .and_then(LlcEntry::as_replica)
            .cloned()
    }

    fn home_slice(&self, line: CacheLine, core: CoreId) -> CoreId {
        self.sim.home_map.home_for(line, core)
    }

    fn home_at(&self, line: CacheLine, slice: CoreId) -> Option<HomeSummary> {
        self.sim.tiles[slice.index()]
            .llc
            .probe(line)
            .and_then(LlcEntry::as_home)
            .map(HomeSummary::from_entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_trace::benchmarks::Benchmark;
    use lad_trace::generator::TraceGenerator;

    fn small_trace(benchmark: Benchmark, accesses: usize, seed: u64) -> WorkloadTrace {
        TraceGenerator::new(benchmark.profile()).generate(16, accesses, seed)
    }

    fn run(config: ReplicationConfig, benchmark: Benchmark, accesses: usize) -> SimulationReport {
        let mut sim = Simulator::new(SystemConfig::small_test(), config);
        sim.run(&small_trace(benchmark, accesses, 42))
    }

    #[test]
    fn simulation_completes_and_accounts_every_access() {
        let report = run(
            ReplicationConfig::locality_aware(3),
            Benchmark::Barnes,
            1600,
        );
        assert_eq!(
            report.total_accesses,
            report.misses.l1_hits + report.misses.l1_misses()
        );
        assert!(report.completion_time.value() > 0);
        assert!(report.energy.total() > 0.0);
        assert!(report.latency.total() > 0);
    }

    #[test]
    fn report_carries_classifier_variance_counters() {
        let report = run(
            ReplicationConfig::locality_aware(3),
            Benchmark::Barnes,
            1600,
        );
        // The run creates replicas, and every replica grant is preceded by
        // a non-replica → replica promotion of some tracked core.
        assert!(report.replicas_created > 0);
        assert!(
            report.classifier.mode_flips > 0,
            "promotions must be counted as mode flips"
        );
        assert!(
            report.classifier.peak_tracked > 0,
            "tracked-core occupancy must leave a high-water mark"
        );
        // S-NUCA never instantiates per-line locality tracking state that
        // changes mode: its variance counters stay flat.
        let snuca = run(ReplicationConfig::static_nuca(), Benchmark::Barnes, 1600);
        assert_eq!(snuca.classifier.mode_flips, 0);
    }

    #[test]
    fn run_source_over_a_recorded_stream_matches_run() {
        use lad_traceio::source::ReaderSource;
        use lad_traceio::writer::encode_workload;

        let trace = small_trace(Benchmark::Barnes, 300, 42);
        let bytes = encode_workload(&trace, 42).unwrap();

        let mut sim = Simulator::new(
            SystemConfig::small_test(),
            ReplicationConfig::locality_aware(3),
        );
        let in_memory = sim.run(&trace);
        let mut source = ReaderSource::new(std::io::Cursor::new(bytes)).unwrap();
        let replayed = sim.run_source(&mut source).unwrap();
        assert_eq!(format!("{in_memory:?}"), format!("{replayed:?}"));
    }

    #[test]
    fn cancel_checkpoint_resume_matches_straight_run() {
        // The tentpole equivalence: step → checkpoint → resume on a FRESH
        // simulator must produce a report byte-identical to the straight run,
        // across schemes (including ASR, which consumes the RNG).
        for config in [
            ReplicationConfig::locality_aware(3),
            ReplicationConfig::static_nuca(),
            ReplicationConfig::asr(0.5),
        ] {
            let trace = small_trace(Benchmark::Barnes, 600, 42);
            let mut straight = Simulator::new(SystemConfig::small_test(), config.clone());
            let expected = straight.run(&trace);

            let mut first = Simulator::new(SystemConfig::small_test(), config.clone());
            let mut source = MemorySource::new(&trace);
            let mut stop = StopAfter::new(250);
            let checkpoint = match first.run_source_observed(&mut source, Some(&mut stop)) {
                Ok(RunOutcome::Cancelled(checkpoint)) => checkpoint,
                other => panic!("expected cancellation, got {other:?}"),
            };
            assert_eq!(checkpoint.total_accesses, 250);
            assert_eq!(checkpoint.consumed.iter().sum::<u64>(), 250);

            // Spill through JSON, as the service does, then resume elsewhere.
            let spilled = checkpoint.to_json().pretty();
            let reloaded =
                EngineCheckpoint::from_json(&lad_common::json::JsonValue::parse(&spilled).unwrap())
                    .unwrap();
            let mut resumed = Simulator::new(SystemConfig::small_test(), config);
            let mut source = MemorySource::new(&trace);
            let report = match resumed.resume_source(&mut source, &reloaded, None) {
                Ok(RunOutcome::Completed(report)) => *report,
                other => panic!("expected completion, got {other:?}"),
            };
            assert_eq!(format!("{report:?}"), format!("{expected:?}"));
        }
    }

    #[test]
    fn repeated_cancel_resume_chains_match_straight_run() {
        // Crash/restart robustness: stopping every 150 accesses and resuming
        // from the spilled checkpoint each time still lands on the straight
        // run's exact report.
        let trace = small_trace(Benchmark::OceanContiguous, 40, 9);
        let config = ReplicationConfig::locality_aware(3);
        let mut straight = Simulator::new(SystemConfig::small_test(), config.clone());
        let expected = straight.run(&trace);

        let mut source = MemorySource::new(&trace);
        let mut sim = Simulator::new(SystemConfig::small_test(), config.clone());
        let mut stop = StopAfter::new(150);
        let mut outcome = sim
            .run_source_observed(&mut source, Some(&mut stop))
            .unwrap();
        let mut hops = 0;
        let report = loop {
            match outcome {
                RunOutcome::Completed(report) => break *report,
                RunOutcome::Cancelled(checkpoint) => {
                    hops += 1;
                    assert!(hops < 20, "resume chain must terminate");
                    let mut fresh = Simulator::new(SystemConfig::small_test(), config.clone());
                    let mut source = MemorySource::new(&trace);
                    let mut stop = StopAfter::new(150);
                    outcome = fresh
                        .resume_source(&mut source, &checkpoint, Some(&mut stop))
                        .unwrap();
                }
            }
        };
        assert!(hops >= 2, "the trace must span several checkpoints");
        assert_eq!(format!("{report:?}"), format!("{expected:?}"));
    }

    #[test]
    fn observer_progress_reports_live_state() {
        struct Spy {
            calls: u64,
            last_total: u64,
        }
        impl RunObserver for Spy {
            fn interval(&self) -> u64 {
                100
            }
            fn observe(&mut self, progress: RunProgress<'_>) -> RunControl {
                self.calls += 1;
                let total = progress.total_accesses();
                assert!(total > self.last_total, "progress must be monotonic");
                assert_eq!(progress.consumed().iter().sum::<u64>(), total);
                // A mid-stream report is available without consuming state.
                assert_eq!(progress.simulator().report().total_accesses, total);
                self.last_total = total;
                RunControl::Continue
            }
        }
        let trace = small_trace(Benchmark::Barnes, 450, 3);
        let mut sim = Simulator::new(
            SystemConfig::small_test(),
            ReplicationConfig::locality_aware(3),
        );
        let mut spy = Spy {
            calls: 0,
            last_total: 0,
        };
        let mut source = MemorySource::new(&trace);
        let outcome = sim
            .run_source_observed(&mut source, Some(&mut spy))
            .unwrap();
        let RunOutcome::Completed(report) = outcome else {
            panic!("a Continue-only observer cannot cancel");
        };
        assert_eq!(spy.calls, report.total_accesses / 100);
        assert!(spy.calls > 0, "the stream must span several intervals");
    }

    #[test]
    #[should_panic(expected = "different scheme")]
    fn resume_rejects_checkpoints_from_another_scheme() {
        let trace = small_trace(Benchmark::Barnes, 300, 42);
        let mut sim = Simulator::new(
            SystemConfig::small_test(),
            ReplicationConfig::locality_aware(3),
        );
        let mut source = MemorySource::new(&trace);
        let mut stop = StopAfter::new(100);
        let checkpoint = match sim.run_source_observed(&mut source, Some(&mut stop)) {
            Ok(RunOutcome::Cancelled(checkpoint)) => checkpoint,
            other => panic!("expected cancellation, got {other:?}"),
        };
        let mut other =
            Simulator::new(SystemConfig::small_test(), ReplicationConfig::static_nuca());
        let mut source = MemorySource::new(&trace);
        let _ = other.resume_source(&mut source, &checkpoint, None);
    }

    #[test]
    fn run_source_propagates_decode_errors() {
        use lad_traceio::source::ReaderSource;
        use lad_traceio::writer::encode_workload;

        let trace = small_trace(Benchmark::Dedup, 100, 1);
        let mut bytes = encode_workload(&trace, 1).unwrap();
        bytes.truncate(bytes.len() / 2);
        let mut sim = Simulator::new(SystemConfig::small_test(), ReplicationConfig::static_nuca());
        match ReaderSource::new(std::io::Cursor::new(bytes)) {
            Ok(mut source) => assert!(sim.run_source(&mut source).is_err()),
            Err(_) => panic!("truncating half the stream should leave the header intact"),
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run(ReplicationConfig::locality_aware(3), Benchmark::Barnes, 200);
        let b = run(ReplicationConfig::locality_aware(3), Benchmark::Barnes, 200);
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.misses.llc_replica_hits, b.misses.llc_replica_hits);
        assert!((a.energy.total() - b.energy.total()).abs() < 1e-6);
    }

    #[test]
    fn rerunning_the_same_simulator_resets_state() {
        let mut sim = Simulator::new(
            SystemConfig::small_test(),
            ReplicationConfig::locality_aware(3),
        );
        let trace = small_trace(Benchmark::Barnes, 200, 42);
        let a = sim.run(&trace);
        let b = sim.run(&trace);
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.total_accesses, b.total_accesses);
    }

    #[test]
    fn snuca_never_creates_replicas() {
        let report = run(ReplicationConfig::static_nuca(), Benchmark::Barnes, 1600);
        assert_eq!(report.replicas_created, 0);
        assert_eq!(report.misses.llc_replica_hits, 0);
    }

    #[test]
    fn locality_aware_creates_replicas_for_high_reuse_benchmarks() {
        let report = run(
            ReplicationConfig::locality_aware(3),
            Benchmark::Barnes,
            1600,
        );
        assert!(
            report.replicas_created > 0,
            "BARNES has high reuse and must replicate"
        );
        assert!(report.misses.llc_replica_hits > 0);
    }

    #[test]
    fn locality_aware_replicates_less_for_low_reuse_benchmarks() {
        let high = run(
            ReplicationConfig::locality_aware(3),
            Benchmark::Barnes,
            1600,
        );
        let low = run(
            ReplicationConfig::locality_aware(3),
            Benchmark::Fluidanimate,
            1600,
        );
        let high_rate = high.misses.replica_hit_fraction();
        let low_rate = low.misses.replica_hit_fraction();
        assert!(
            high_rate > low_rate,
            "replica hit fraction: BARNES {high_rate:.3} vs FLUIDANIMATE {low_rate:.3}"
        );
    }

    #[test]
    fn rt1_replicates_more_aggressively_than_rt8() {
        let rt1 = run(
            ReplicationConfig::locality_aware(1),
            Benchmark::Barnes,
            1600,
        );
        let rt8 = run(
            ReplicationConfig::locality_aware(8),
            Benchmark::Barnes,
            1600,
        );
        assert!(rt1.replicas_created >= rt8.replicas_created);
    }

    #[test]
    fn victim_replication_creates_replicas_on_evictions() {
        let report = run(
            ReplicationConfig::victim_replication(),
            Benchmark::Barnes,
            1600,
        );
        assert!(report.replicas_created > 0);
    }

    #[test]
    fn asr_level_zero_matches_no_replication() {
        let report = run(ReplicationConfig::asr(0.0), Benchmark::Streamcluster, 1200);
        assert_eq!(report.replicas_created, 0);
        let report = run(ReplicationConfig::asr(1.0), Benchmark::Streamcluster, 1200);
        assert!(
            report.replicas_created > 0,
            "ASR at level 1 must replicate shared read-only data"
        );
    }

    #[test]
    fn offchip_misses_dominate_for_llc_exceeding_working_sets() {
        let big = run(
            ReplicationConfig::static_nuca(),
            Benchmark::Fluidanimate,
            1600,
        );
        let small = run(
            ReplicationConfig::static_nuca(),
            Benchmark::WaterNsquared,
            1600,
        );
        assert!(
            big.misses.offchip_fraction() > small.misses.offchip_fraction(),
            "FLUIDANIMATE {:.3} vs WATER-NSQ {:.3}",
            big.misses.offchip_fraction(),
            small.misses.offchip_fraction()
        );
    }

    #[test]
    fn run_length_profile_reflects_benchmark_reuse() {
        let barnes = run(ReplicationConfig::static_nuca(), Benchmark::Barnes, 1600);
        let fluid = run(
            ReplicationConfig::static_nuca(),
            Benchmark::Fluidanimate,
            1600,
        );
        let barnes_mean = barnes
            .run_lengths
            .mean_run_length(DataClass::SharedReadWrite)
            .unwrap_or(0.0);
        let fluid_mean = fluid
            .run_lengths
            .mean_run_length(DataClass::SharedReadWrite)
            .unwrap_or(0.0);
        assert!(
            barnes_mean > fluid_mean,
            "BARNES mean run {barnes_mean:.2} vs FLUIDANIMATE {fluid_mean:.2}"
        );
    }

    #[test]
    fn latency_breakdown_components_are_populated() {
        let report = run(
            ReplicationConfig::locality_aware(3),
            Benchmark::Barnes,
            1600,
        );
        assert!(report.latency.compute > 0);
        assert!(report.latency.l1_to_llc_home > 0);
        assert!(report.latency.l1_to_llc_replica > 0);
        // Writes to shared data trigger invalidations.
        assert!(report.latency.llc_home_to_sharers > 0);
    }

    #[test]
    fn dram_energy_appears_only_with_offchip_misses() {
        let report = run(
            ReplicationConfig::static_nuca(),
            Benchmark::Fluidanimate,
            1200,
        );
        assert!(report.energy.component(Component::Dram) > 0.0);
        assert!(report.misses.offchip_misses > 0);
    }

    #[test]
    #[should_panic(expected = "trace has")]
    fn trace_with_too_many_cores_is_rejected() {
        let mut sim = Simulator::new(SystemConfig::small_test(), ReplicationConfig::static_nuca());
        let trace = TraceGenerator::new(Benchmark::Dedup.profile()).generate(64, 10, 1);
        sim.run(&trace);
    }
}
