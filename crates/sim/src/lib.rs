//! Full-system simulator: 64 tiles (core + L1 caches + LLC slice +
//! directory), a 2-D mesh NoC, DRAM controllers and the LLC management
//! scheme under evaluation.
//!
//! The simulator is transaction-level (in the spirit of the Graphite
//! simulator the paper uses): every memory access issued by a core is driven
//! through the complete protocol path —
//!
//! 1. private L1 lookup,
//! 2. local (or cluster) LLC slice lookup for a replica,
//! 3. the LLC home slice: serialization with conflicting requests, directory
//!    actions (downgrades, invalidations), classifier decisions,
//! 4. off-chip DRAM on an LLC miss,
//! 5. L1 / replica fills and the resulting evictions and notifications —
//!
//! and every step contributes to the completion-time breakdown of Figure 7,
//! the L1-miss-type breakdown of Figure 8 and the per-component energy
//! breakdown of Figure 6.
//!
//! # Example
//!
//! ```
//! use lad_common::config::SystemConfig;
//! use lad_replication::config::ReplicationConfig;
//! use lad_sim::engine::Simulator;
//! use lad_trace::{Benchmark, TraceGenerator};
//!
//! let system = SystemConfig::small_test();
//! let trace = TraceGenerator::new(Benchmark::Barnes.profile())
//!     .generate(system.num_cores, 200, 1);
//! let mut sim = Simulator::new(system, ReplicationConfig::locality_aware(3));
//! let report = sim.run(&trace);
//! assert!(report.completion_time.value() > 0);
//! assert!(report.energy.total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod experiment;
pub mod metrics;
pub mod schedule;
pub mod tile;

pub use checkpoint::{EngineCheckpoint, TileCheckpoint};
pub use engine::{
    AccessOutcome, RunControl, RunObserver, RunOutcome, RunProgress, ServedBy, Simulator, StopAfter,
};
pub use experiment::{ExperimentRunner, SchemeComparison};
pub use metrics::{
    ClassifierStats, LatencyBreakdown, MissBreakdown, RunLengthProfile, SimulationReport,
};
pub use schedule::CoreScheduler;
