//! Mid-stream engine checkpoints: a plain-data snapshot of every piece of
//! mutable simulator state plus the per-core stream cursor, with exact JSON
//! round-tripping through [`lad_common::json`].
//!
//! Two things are deliberately **not** serialized:
//!
//! * the R-NUCA home map and the per-line data classes — both are rebuilt by
//!   re-running the profiling pass on resume (`profile_access` is their only
//!   writer and converges to the same state in any complete order), and
//! * the per-core pending accesses — [`EngineCheckpoint::consumed`] counts
//!   the accesses each core has *stepped*, so resume fast-forwards each
//!   core's stream by that many accesses and re-fetches the pending window
//!   from the (deterministic) source.
//!
//! Full-range `u64` values (RNG state, cache tags, line indices) are encoded
//! as `"0x…"` hex strings: [`JsonValue`] numbers are `f64` and would
//! silently lose bits above 2^53.
//!
//! [`EngineCheckpoint::from_json`] reports *structural* problems (missing or
//! mistyped fields) as errors.  *Semantic* invariant violations — sharer
//! lists over budget, duplicate classifier entries, occupied-slot clashes —
//! panic inside the validating restore constructors of the lower crates:
//! checkpoints are produced by [`Simulator::capture_checkpoint`] and a
//! structurally well-formed document that violates protocol invariants means
//! the file was tampered with, not malformed.

use lad_cache::CacheState;
use lad_coherence::ackwise::AckwiseSharers;
use lad_coherence::directory::DirectoryEntry;
use lad_coherence::mesi::MesiState;
use lad_common::json::JsonValue;
use lad_common::types::{CacheLine, CoreId, Cycle, DataClass};
use lad_dram::DramControllerState;
use lad_energy::accounting::{Component, EnergyAccounting};
use lad_noc::{LinkState, NetworkState};
use lad_replication::classifier::{
    ClassifierKind, LocalityClassifier, ReplicationMode, TrackedCore,
};
use lad_replication::counter::SaturatingCounter;
use lad_replication::entry::{HomeEntry, LlcEntry, ReplicaEntry};

use crate::metrics::{ClassifierStats, LatencyBreakdown, MissBreakdown, RunLengthProfile};

#[cfg(doc)]
use crate::Simulator;

/// Snapshot of one tile: core clock plus the three cache arrays.
#[derive(Debug, Clone)]
pub struct TileCheckpoint {
    /// The core's local clock.
    pub clock: Cycle,
    /// The L1 instruction cache.
    pub l1i: CacheState<MesiState>,
    /// The L1 data cache.
    pub l1d: CacheState<MesiState>,
    /// The LLC slice (home lines and replicas).
    pub llc: CacheState<LlcEntry>,
}

/// A resumable mid-stream snapshot of a [`Simulator`].
///
/// Captured by [`Simulator::capture_checkpoint`] at a scheduling-loop
/// boundary; [`Simulator::resume_source`] continues the run from it with
/// results byte-identical to never having stopped.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint {
    /// Benchmark (stream) name — resume validates it against the source.
    pub benchmark: String,
    /// Cores the stream spans.
    pub num_cores: usize,
    /// Scheme label — resume validates it against the simulator.
    pub scheme: String,
    /// The replication threshold RT the classifier state was captured under.
    pub replication_threshold: u32,
    /// Classifier capacity: `None` = Complete, `Some(k)` = Limited_k.
    pub classifier_capacity: Option<usize>,
    /// Per-tile state, in core order (all tiles, not just active cores).
    pub tiles: Vec<TileCheckpoint>,
    /// Network link occupancy and traffic statistics.
    pub network: NetworkState,
    /// Per-controller DRAM state.
    pub dram: Vec<DramControllerState>,
    /// The deterministic RNG's word state.
    pub rng: [u64; 4],
    /// Dynamic energy accumulated so far (cache/directory events only; the
    /// network and DRAM components are re-derived from their event counts).
    pub energy: EnergyAccounting,
    /// Completion-time components accumulated so far.
    pub latency: LatencyBreakdown,
    /// L1 miss breakdown accumulated so far.
    pub misses: MissBreakdown,
    /// Run-length profile, including still-open runs.
    pub run_lengths: RunLengthProfile,
    /// Per-line home-serialization horizon, sorted by line.
    pub line_busy_until: Vec<(CacheLine, Cycle)>,
    /// Total LLC replicas created.
    pub replicas_created: u64,
    /// Total back-invalidations from LLC evictions.
    pub back_invalidations: u64,
    /// Total accesses stepped.
    pub total_accesses: u64,
    /// Capture-time classifier variance totals (retired + live).  The
    /// per-entry diagnostic counters are *not* serialized — restored
    /// classifiers restart at the `from_snapshot` baseline and these
    /// totals seed the simulator's retired accumulators instead.
    pub classifier: ClassifierStats,
    /// Accesses each core has stepped — the stream cursor used to
    /// fast-forward the source on resume.
    pub consumed: Vec<u64>,
}

fn hex(value: u64) -> JsonValue {
    JsonValue::String(format!("{value:#x}"))
}

fn parse_hex(value: &JsonValue, what: &str) -> Result<u64, String> {
    let text = value
        .as_str()
        .ok_or_else(|| format!("{what} must be a hex string"))?;
    let digits = text
        .strip_prefix("0x")
        .ok_or_else(|| format!("{what} must start with 0x"))?;
    u64::from_str_radix(digits, 16).map_err(|error| format!("{what}: {error}"))
}

fn u64_field(value: &JsonValue, name: &str) -> Result<u64, String> {
    value
        .get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("checkpoint is missing numeric field {name:?}"))
}

fn str_field(value: &JsonValue, name: &str) -> Result<String, String> {
    value
        .get(name)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("checkpoint is missing string field {name:?}"))
}

fn array_field<'a>(value: &'a JsonValue, name: &str) -> Result<&'a [JsonValue], String> {
    value
        .get(name)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("checkpoint is missing array field {name:?}"))
}

fn bool_field(value: &JsonValue, name: &str) -> Result<bool, String> {
    value
        .get(name)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("checkpoint is missing boolean field {name:?}"))
}

fn core_from(value: &JsonValue, what: &str) -> Result<CoreId, String> {
    let index = value
        .as_u64()
        .ok_or_else(|| format!("{what} must be a core index"))?;
    Ok(CoreId::new(index as usize))
}

fn mesi_from(value: &JsonValue, what: &str) -> Result<MesiState, String> {
    value
        .as_str()
        .and_then(MesiState::parse)
        .ok_or_else(|| format!("{what} must be one of \"M\", \"E\", \"S\", \"I\""))
}

fn class_from(value: &JsonValue, what: &str) -> Result<DataClass, String> {
    let label = value
        .as_str()
        .ok_or_else(|| format!("{what} must be a data-class label"))?;
    DataClass::ALL
        .iter()
        .copied()
        .find(|class| class.label() == label)
        .ok_or_else(|| format!("{what}: unknown data class {label:?}"))
}

fn cache_to_json<V>(state: &CacheState<V>, encode: impl Fn(&V) -> JsonValue) -> JsonValue {
    let slots: Vec<JsonValue> = state
        .slots
        .iter()
        .map(|(slot, tag, stamp, value)| {
            JsonValue::Array(vec![
                JsonValue::from(*slot),
                hex(*tag),
                JsonValue::from(*stamp),
                encode(value),
            ])
        })
        .collect();
    JsonValue::object([
        ("clock", JsonValue::from(state.clock)),
        ("hits", JsonValue::from(state.hits)),
        ("misses", JsonValue::from(state.misses)),
        ("evictions", JsonValue::from(state.evictions)),
        ("slots", JsonValue::Array(slots)),
    ])
}

fn cache_from_json<V>(
    value: &JsonValue,
    what: &str,
    decode: impl Fn(&JsonValue, &str) -> Result<V, String>,
) -> Result<CacheState<V>, String> {
    let mut slots = Vec::new();
    for (i, entry) in array_field(value, "slots")?.iter().enumerate() {
        let quad = entry.as_array().filter(|q| q.len() == 4);
        let Some([slot, tag, stamp, payload]) = quad else {
            return Err(format!(
                "{what} slot {i} must be a [slot, tag, stamp, value] quad"
            ));
        };
        let slot = slot
            .as_u64()
            .ok_or_else(|| format!("{what} slot {i}: slot index must be a number"))?;
        let tag = parse_hex(tag, &format!("{what} slot {i} tag"))?;
        let stamp = stamp
            .as_u64()
            .ok_or_else(|| format!("{what} slot {i}: stamp must be a number"))?;
        let payload = decode(payload, &format!("{what} slot {i}"))?;
        slots.push((slot as usize, tag, stamp, payload));
    }
    Ok(CacheState {
        slots,
        clock: u64_field(value, "clock")?,
        hits: u64_field(value, "hits")?,
        misses: u64_field(value, "misses")?,
        evictions: u64_field(value, "evictions")?,
    })
}

fn llc_entry_to_json(entry: &LlcEntry) -> JsonValue {
    match entry {
        LlcEntry::Home(home) => {
            let sharers = home.directory.sharers();
            let tracked: Vec<JsonValue> = sharers
                .tracked()
                .iter()
                .map(|core| JsonValue::from(core.index()))
                .collect();
            let classifier: Vec<JsonValue> = home
                .classifier
                .snapshot()
                .iter()
                .map(|t| {
                    JsonValue::Array(vec![
                        JsonValue::from(t.core.index()),
                        JsonValue::from(t.mode.allows_replica()),
                        JsonValue::from(t.home_reuse),
                        JsonValue::from(t.active),
                    ])
                })
                .collect();
            JsonValue::object([
                ("kind", JsonValue::from("home")),
                ("dirty", JsonValue::from(home.dirty)),
                (
                    "owner",
                    home.directory
                        .owner()
                        .map_or(JsonValue::Null, |core| JsonValue::from(core.index())),
                ),
                ("max_pointers", JsonValue::from(sharers.max_pointers())),
                ("tracked", JsonValue::Array(tracked)),
                ("global", JsonValue::from(sharers.is_global())),
                ("sharer_count", JsonValue::from(sharers.count())),
                ("classifier", JsonValue::Array(classifier)),
            ])
        }
        LlcEntry::Replica(replica) => JsonValue::object([
            ("kind", JsonValue::from("replica")),
            ("state", JsonValue::from(replica.state.to_string())),
            ("dirty", JsonValue::from(replica.dirty)),
            ("l1_copy", JsonValue::from(replica.l1_copy)),
            ("reuse", JsonValue::from(replica.reuse.value())),
        ]),
    }
}

fn llc_entry_from_json(
    value: &JsonValue,
    what: &str,
    rt: u32,
    kind: ClassifierKind,
) -> Result<LlcEntry, String> {
    match str_field(value, "kind")?.as_str() {
        "home" => {
            let mut tracked = Vec::new();
            for core in array_field(value, "tracked")? {
                tracked.push(core_from(core, &format!("{what} tracked sharer"))?);
            }
            let sharers = AckwiseSharers::from_parts(
                u64_field(value, "max_pointers")? as usize,
                &tracked,
                bool_field(value, "global")?,
                u64_field(value, "sharer_count")? as usize,
            );
            let owner = match value.get("owner") {
                None => return Err(format!("{what} home entry is missing \"owner\"")),
                Some(JsonValue::Null) => None,
                Some(core) => Some(core_from(core, &format!("{what} owner"))?),
            };
            let mut entries = Vec::new();
            for (i, entry) in array_field(value, "classifier")?.iter().enumerate() {
                let quad = entry.as_array().filter(|q| q.len() == 4);
                let Some([core, replica, reuse, active]) = quad else {
                    return Err(format!(
                        "{what} classifier entry {i} must be a [core, replica, reuse, active] quad"
                    ));
                };
                let mode = if replica
                    .as_bool()
                    .ok_or_else(|| format!("{what} classifier entry {i}: mode must be a bool"))?
                {
                    ReplicationMode::Replica
                } else {
                    ReplicationMode::NonReplica
                };
                entries.push(TrackedCore {
                    core: core_from(core, &format!("{what} classifier entry {i}"))?,
                    mode,
                    home_reuse: reuse.as_u64().ok_or_else(|| {
                        format!("{what} classifier entry {i}: reuse must be a number")
                    })? as u32,
                    active: active.as_bool().ok_or_else(|| {
                        format!("{what} classifier entry {i}: active must be a bool")
                    })?,
                });
            }
            Ok(LlcEntry::Home(HomeEntry {
                directory: DirectoryEntry::from_parts(sharers, owner),
                classifier: LocalityClassifier::from_snapshot(kind, rt, &entries),
                dirty: bool_field(value, "dirty")?,
            }))
        }
        "replica" => Ok(LlcEntry::Replica(ReplicaEntry {
            state: mesi_from(
                value
                    .get("state")
                    .ok_or_else(|| format!("{what} replica is missing \"state\""))?,
                &format!("{what} replica state"),
            )?,
            reuse: SaturatingCounter::with_value(rt, u64_field(value, "reuse")? as u32),
            l1_copy: bool_field(value, "l1_copy")?,
            dirty: bool_field(value, "dirty")?,
        })),
        kind => Err(format!("{what}: unknown LLC entry kind {kind:?}")),
    }
}

fn network_to_json(state: &NetworkState) -> JsonValue {
    let links: Vec<JsonValue> = state
        .links
        .iter()
        .map(|link| {
            JsonValue::Array(vec![
                JsonValue::from(link.busy_until.value()),
                JsonValue::from(link.flits),
            ])
        })
        .collect();
    let latency: Vec<JsonValue> = state
        .latency
        .iter()
        .map(|(value, count)| {
            JsonValue::Array(vec![JsonValue::from(*value), JsonValue::from(*count)])
        })
        .collect();
    JsonValue::object([
        ("links", JsonValue::Array(links)),
        ("messages", JsonValue::from(state.messages)),
        ("control_messages", JsonValue::from(state.control_messages)),
        ("data_messages", JsonValue::from(state.data_messages)),
        ("flit_hops", JsonValue::from(state.flit_hops)),
        (
            "router_traversals",
            JsonValue::from(state.router_traversals),
        ),
        ("latency", JsonValue::Array(latency)),
    ])
}

fn pair_u64(value: &JsonValue, what: &str) -> Result<(u64, u64), String> {
    let pair = value.as_array().filter(|p| p.len() == 2);
    let (first, second) = match pair {
        Some([a, b]) => (a.as_u64(), b.as_u64()),
        _ => (None, None),
    };
    match (first, second) {
        (Some(first), Some(second)) => Ok((first, second)),
        _ => Err(format!("{what} must be a pair of numbers")),
    }
}

fn network_from_json(value: &JsonValue) -> Result<NetworkState, String> {
    let mut links = Vec::new();
    for (i, link) in array_field(value, "links")?.iter().enumerate() {
        let (busy_until, flits) = pair_u64(link, &format!("network link {i}"))?;
        links.push(LinkState {
            busy_until: Cycle::new(busy_until),
            flits,
        });
    }
    let mut latency = Vec::new();
    for (i, sample) in array_field(value, "latency")?.iter().enumerate() {
        latency.push(pair_u64(sample, &format!("network latency sample {i}"))?);
    }
    Ok(NetworkState {
        links,
        messages: u64_field(value, "messages")?,
        control_messages: u64_field(value, "control_messages")?,
        data_messages: u64_field(value, "data_messages")?,
        flit_hops: u64_field(value, "flit_hops")?,
        router_traversals: u64_field(value, "router_traversals")?,
        latency,
    })
}

impl EngineCheckpoint {
    /// The checkpoint as a JSON document.  Numeric state round-trips exactly
    /// through [`EngineCheckpoint::from_json`]; full-range `u64` words are
    /// hex strings (see the module docs).
    pub fn to_json(&self) -> JsonValue {
        let tiles: Vec<JsonValue> = self
            .tiles
            .iter()
            .map(|tile| {
                JsonValue::object([
                    ("clock", JsonValue::from(tile.clock.value())),
                    (
                        "l1i",
                        cache_to_json(&tile.l1i, |s| JsonValue::from(s.to_string())),
                    ),
                    (
                        "l1d",
                        cache_to_json(&tile.l1d, |s| JsonValue::from(s.to_string())),
                    ),
                    ("llc", cache_to_json(&tile.llc, llc_entry_to_json)),
                ])
            })
            .collect();
        let dram: Vec<JsonValue> = self
            .dram
            .iter()
            .map(|controller| {
                JsonValue::Array(vec![
                    JsonValue::from(controller.free_at.value()),
                    JsonValue::from(controller.accesses),
                    JsonValue::from(controller.busy_cycles),
                ])
            })
            .collect();
        let rng: Vec<JsonValue> = self.rng.iter().map(|word| hex(*word)).collect();
        let energy = JsonValue::Object(
            self.energy
                .iter()
                .map(|(component, pj)| (component.label().to_string(), JsonValue::from(pj)))
                .collect(),
        );
        let open_runs: Vec<JsonValue> = self
            .run_lengths
            .open_runs()
            .iter()
            .map(|(line, core, count, class)| {
                JsonValue::Array(vec![
                    hex(line.index()),
                    JsonValue::from(core.index()),
                    JsonValue::from(*count),
                    JsonValue::from(class.label()),
                ])
            })
            .collect();
        let line_busy: Vec<JsonValue> = self
            .line_busy_until
            .iter()
            .map(|(line, cycle)| {
                JsonValue::Array(vec![hex(line.index()), JsonValue::from(cycle.value())])
            })
            .collect();
        let consumed: Vec<JsonValue> = self.consumed.iter().map(|n| JsonValue::from(*n)).collect();
        JsonValue::object([
            ("benchmark", JsonValue::from(self.benchmark.as_str())),
            ("num_cores", JsonValue::from(self.num_cores)),
            ("scheme", JsonValue::from(self.scheme.as_str())),
            (
                "replication_threshold",
                JsonValue::from(self.replication_threshold),
            ),
            (
                "classifier_capacity",
                self.classifier_capacity
                    .map_or(JsonValue::Null, JsonValue::from),
            ),
            ("tiles", JsonValue::Array(tiles)),
            ("network", network_to_json(&self.network)),
            ("dram", JsonValue::Array(dram)),
            ("rng", JsonValue::Array(rng)),
            ("energy", energy),
            ("latency", self.latency.to_json()),
            ("misses", self.misses.to_json()),
            ("run_lengths", self.run_lengths.to_json()),
            ("open_runs", JsonValue::Array(open_runs)),
            ("line_busy_until", JsonValue::Array(line_busy)),
            ("replicas_created", JsonValue::from(self.replicas_created)),
            (
                "back_invalidations",
                JsonValue::from(self.back_invalidations),
            ),
            ("total_accesses", JsonValue::from(self.total_accesses)),
            ("classifier", self.classifier.to_json()),
            ("consumed", JsonValue::Array(consumed)),
        ])
    }

    /// Rebuilds a checkpoint from [`EngineCheckpoint::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    ///
    /// # Panics
    ///
    /// Structurally valid documents whose state violates protocol invariants
    /// (sharer lists over budget, duplicate classifier entries, …) panic in
    /// the lower crates' validating constructors — see the module docs.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let replication_threshold = u64_field(value, "replication_threshold")? as u32;
        let classifier_capacity = match value.get("classifier_capacity") {
            None => return Err("checkpoint is missing \"classifier_capacity\"".to_string()),
            Some(JsonValue::Null) => None,
            Some(capacity) => Some(
                capacity
                    .as_u64()
                    .ok_or("\"classifier_capacity\" must be null or a number")?
                    as usize,
            ),
        };
        let kind = match classifier_capacity {
            None => ClassifierKind::Complete,
            Some(k) => ClassifierKind::Limited(k),
        };

        let mut tiles = Vec::new();
        for (i, tile) in array_field(value, "tiles")?.iter().enumerate() {
            let l1i = tile
                .get("l1i")
                .ok_or_else(|| format!("tile {i} is missing \"l1i\""))?;
            let l1d = tile
                .get("l1d")
                .ok_or_else(|| format!("tile {i} is missing \"l1d\""))?;
            let llc = tile
                .get("llc")
                .ok_or_else(|| format!("tile {i} is missing \"llc\""))?;
            tiles.push(TileCheckpoint {
                clock: Cycle::new(u64_field(tile, "clock")?),
                l1i: cache_from_json(l1i, &format!("tile {i} l1i"), mesi_from)?,
                l1d: cache_from_json(l1d, &format!("tile {i} l1d"), mesi_from)?,
                llc: cache_from_json(llc, &format!("tile {i} llc"), |entry, what| {
                    llc_entry_from_json(entry, what, replication_threshold, kind)
                })?,
            });
        }

        let network = network_from_json(
            value
                .get("network")
                .ok_or("checkpoint is missing the network state")?,
        )?;

        let mut dram = Vec::new();
        for (i, controller) in array_field(value, "dram")?.iter().enumerate() {
            let triple = controller.as_array().filter(|t| t.len() == 3);
            let values = match triple {
                Some([a, b, c]) => match (a.as_u64(), b.as_u64(), c.as_u64()) {
                    (Some(a), Some(b), Some(c)) => Some((a, b, c)),
                    _ => None,
                },
                _ => None,
            };
            let (free_at, accesses, busy_cycles) = values.ok_or_else(|| {
                format!("dram controller {i} must be a [free_at, accesses, busy_cycles] triple")
            })?;
            dram.push(DramControllerState {
                free_at: Cycle::new(free_at),
                accesses,
                busy_cycles,
            });
        }

        let rng_words = array_field(value, "rng")?;
        if rng_words.len() != 4 {
            return Err(format!(
                "rng state must have 4 words, not {}",
                rng_words.len()
            ));
        }
        let mut rng = [0u64; 4];
        for (slot, word) in rng.iter_mut().zip(rng_words) {
            *slot = parse_hex(word, "rng word")?;
        }

        let energy_obj = value
            .get("energy")
            .and_then(JsonValue::as_object)
            .ok_or("checkpoint is missing the energy breakdown")?;
        let mut energy = EnergyAccounting::new();
        for (label, pj) in energy_obj {
            let component = Component::ALL
                .iter()
                .copied()
                .find(|c| c.label() == label)
                .ok_or_else(|| format!("unknown energy component {label:?}"))?;
            let pj = pj
                .as_f64()
                .filter(|pj| *pj >= 0.0)
                .ok_or_else(|| format!("energy of {label:?} must be a non-negative number"))?;
            energy.record(component, pj);
        }

        let mut run_lengths = RunLengthProfile::from_json(
            value
                .get("run_lengths")
                .ok_or("checkpoint is missing the run-length profile")?,
        )?;
        for (i, run) in array_field(value, "open_runs")?.iter().enumerate() {
            let quad = run.as_array().filter(|q| q.len() == 4);
            let Some([line, core, count, class]) = quad else {
                return Err(format!(
                    "open run {i} must be a [line, core, length, class] quad"
                ));
            };
            run_lengths.restore_open_run(
                CacheLine::from_index(parse_hex(line, &format!("open run {i} line"))?),
                core_from(core, &format!("open run {i} core"))?,
                count
                    .as_u64()
                    .ok_or_else(|| format!("open run {i}: length must be a number"))?,
                class_from(class, &format!("open run {i} class"))?,
            );
        }

        let mut line_busy_until = Vec::new();
        for (i, entry) in array_field(value, "line_busy_until")?.iter().enumerate() {
            let pair = entry.as_array().filter(|p| p.len() == 2);
            let Some([line, cycle]) = pair else {
                return Err(format!(
                    "line_busy_until entry {i} must be a [line, cycle] pair"
                ));
            };
            line_busy_until.push((
                CacheLine::from_index(parse_hex(line, &format!("line_busy_until entry {i}"))?),
                Cycle::new(
                    cycle.as_u64().ok_or_else(|| {
                        format!("line_busy_until entry {i}: cycle must be a number")
                    })?,
                ),
            ));
        }

        let mut consumed = Vec::new();
        for (i, count) in array_field(value, "consumed")?.iter().enumerate() {
            consumed.push(
                count
                    .as_u64()
                    .ok_or_else(|| format!("consumed[{i}] must be a number"))?,
            );
        }

        Ok(EngineCheckpoint {
            benchmark: str_field(value, "benchmark")?,
            num_cores: u64_field(value, "num_cores")? as usize,
            scheme: str_field(value, "scheme")?,
            replication_threshold,
            classifier_capacity,
            tiles,
            network,
            dram,
            rng,
            energy,
            latency: LatencyBreakdown::from_json(
                value
                    .get("latency")
                    .ok_or("checkpoint is missing the latency breakdown")?,
            )?,
            misses: MissBreakdown::from_json(
                value
                    .get("misses")
                    .ok_or("checkpoint is missing the miss breakdown")?,
            )?,
            run_lengths,
            line_busy_until,
            replicas_created: u64_field(value, "replicas_created")?,
            back_invalidations: u64_field(value, "back_invalidations")?,
            total_accesses: u64_field(value, "total_accesses")?,
            classifier: ClassifierStats::from_json(
                value
                    .get("classifier")
                    .ok_or("checkpoint is missing the classifier variance totals")?,
            )?,
            consumed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use lad_common::config::SystemConfig;
    use lad_replication::config::ReplicationConfig;
    use lad_trace::benchmarks::Benchmark;
    use lad_trace::generator::TraceGenerator;
    use lad_traceio::source::MemorySource;

    fn captured_checkpoint() -> EngineCheckpoint {
        let trace = TraceGenerator::new(Benchmark::Barnes.profile()).generate(16, 400, 7);
        let mut sim = Simulator::new(
            SystemConfig::small_test(),
            ReplicationConfig::locality_aware(3),
        );
        let mut source = MemorySource::new(&trace);
        let mut stop = crate::engine::StopAfter::new(200);
        match sim.run_source_observed(&mut source, Some(&mut stop)) {
            Ok(crate::engine::RunOutcome::Cancelled(checkpoint)) => *checkpoint,
            other => panic!("expected a cancelled run, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_json_roundtrips_exactly() {
        let checkpoint = captured_checkpoint();
        let json = checkpoint.to_json();
        let text = json.pretty();
        let reparsed = JsonValue::parse(&text).unwrap();
        assert_eq!(reparsed, json);
        let decoded = EngineCheckpoint::from_json(&reparsed).unwrap();
        // Re-encoding the decoded checkpoint must reproduce the document
        // byte-for-byte: the JSON form is canonical (sorted open runs and
        // busy lines, hex words, exact floats), so equality here covers
        // every field — cache slots, RNG words, energy totals, cursors.
        assert_eq!(decoded.to_json().pretty(), text);
        assert_eq!(decoded.consumed, checkpoint.consumed);
        assert_eq!(decoded.total_accesses, checkpoint.total_accesses);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let json = captured_checkpoint().to_json();
        let JsonValue::Object(pairs) = &json else {
            panic!("checkpoint JSON must be an object");
        };
        for i in 0..pairs.len() {
            let mut broken = pairs.clone();
            broken.remove(i);
            assert!(
                EngineCheckpoint::from_json(&JsonValue::Object(broken)).is_err(),
                "dropping field {} must fail",
                pairs[i].0
            );
        }
        assert!(EngineCheckpoint::from_json(&JsonValue::Null).is_err());
    }

    #[test]
    fn hex_encoding_preserves_full_range_words() {
        for word in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d, 1 << 53] {
            let encoded = hex(word);
            assert_eq!(parse_hex(&encoded, "word"), Ok(word));
        }
        assert!(parse_hex(&JsonValue::from("123"), "word").is_err());
        assert!(parse_hex(&JsonValue::from(123u64), "word").is_err());
    }
}
