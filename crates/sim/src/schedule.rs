//! Core-interleaving scheduler for the execution pass.
//!
//! [`Simulator::run_source`](crate::Simulator::run_source) must always
//! advance the core whose local clock is furthest behind, breaking ties
//! toward the lowest core index.  The original implementation rescanned all
//! cores with `min_by_key` before every access — O(cores) per access, which
//! dominates at 256+ tiles.  [`CoreScheduler`] keeps the same schedule with
//! a binary min-heap keyed by `(clock, core)`.
//!
//! The heap never holds stale keys: executing an access mutates only the
//! issuing core's clock (coherence probes to sharers model *latency*, not
//! remote time), so the only entry whose key changes between pops is the one
//! currently checked out via [`CoreScheduler::pop`].  Re-inserting it with
//! its new clock therefore reproduces the linear scan's choice exactly,
//! including ties: `Reverse<(Cycle, usize)>` orders equal clocks by lowest
//! core index first, which is the element `min_by_key` returns (it keeps
//! the *first* minimum).
//!
//! The scheduler also enables batched dispatch: after stepping a core, if
//! its new key is still `<=` every other key ([`CoreScheduler::runs_next`]),
//! the engine keeps stepping the same core without touching the heap at all
//! — the common case whenever one core falls behind by more than one access.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lad_common::types::Cycle;

/// A min-heap of `(clock, core)` pairs scheduling the next core to step.
///
/// See the module docs for the equivalence argument with the linear
/// `min_by_key` scan.
#[derive(Debug, Clone, Default)]
pub struct CoreScheduler {
    heap: BinaryHeap<Reverse<(Cycle, usize)>>,
}

impl CoreScheduler {
    /// Creates an empty scheduler with room for `cores` entries.
    pub fn with_capacity(cores: usize) -> Self {
        CoreScheduler {
            heap: BinaryHeap::with_capacity(cores),
        }
    }

    /// Number of scheduled cores.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no cores are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `core` at local time `clock`.
    pub fn push(&mut self, core: usize, clock: Cycle) {
        self.heap.push(Reverse((clock, core)));
    }

    /// Removes and returns the scheduled core with the smallest
    /// `(clock, core)` key — the core the linear scan would pick.
    pub fn pop(&mut self) -> Option<usize> {
        self.heap.pop().map(|Reverse((_, core))| core)
    }

    /// `true` if a core at time `clock` would still be picked before every
    /// scheduled core: its `(clock, core)` key is `<=` the heap minimum.
    /// Used for batched dispatch — stepping the same core again without a
    /// pop/push round trip.
    pub fn runs_next(&self, core: usize, clock: Cycle) -> bool {
        match self.heap.peek() {
            None => true,
            Some(Reverse(min)) => (clock, core) <= *min,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the original linear scan over pending cores
    /// (first minimum wins, i.e. ties go to the lowest core index).
    fn linear_scan(clocks: &[Cycle], pending: &[bool]) -> Option<usize> {
        (0..clocks.len())
            .filter(|&c| pending[c])
            .min_by_key(|&c| clocks[c])
    }

    #[test]
    fn pop_matches_linear_scan_with_ties() {
        let clocks = [Cycle::new(5), Cycle::new(3), Cycle::new(3), Cycle::new(9)];
        let pending = [true, true, true, true];
        let mut sched = CoreScheduler::with_capacity(4);
        for (core, clock) in clocks.iter().enumerate() {
            sched.push(core, *clock);
        }
        // Tie between cores 1 and 2 at clock 3: the scan keeps the first
        // minimum (core 1), and so must the heap.
        assert_eq!(linear_scan(&clocks, &pending), Some(1));
        assert_eq!(sched.pop(), Some(1));
        assert_eq!(sched.pop(), Some(2));
        assert_eq!(sched.pop(), Some(0));
        assert_eq!(sched.pop(), Some(3));
        assert_eq!(sched.pop(), None);
    }

    #[test]
    fn runs_next_is_le_against_heap_minimum() {
        let mut sched = CoreScheduler::with_capacity(4);
        assert!(sched.runs_next(7, Cycle::new(1_000_000)), "empty heap");
        sched.push(2, Cycle::new(10));
        // Strictly earlier, equal-clock-lower-core, and equal-key all run
        // next; equal-clock-higher-core and later do not.
        assert!(sched.runs_next(5, Cycle::new(9)));
        assert!(sched.runs_next(1, Cycle::new(10)));
        assert!(sched.runs_next(2, Cycle::new(10)));
        assert!(!sched.runs_next(3, Cycle::new(10)));
        assert!(!sched.runs_next(0, Cycle::new(11)));
    }

    #[test]
    fn full_schedule_replays_linear_scan() {
        // Simulate a whole run: every core has a queue of per-access
        // latencies; both schedulers must produce the identical step
        // sequence.  Latencies are from a fixed pseudo-random sequence with
        // plenty of collisions to exercise tie-breaking.
        let num_cores = 7;
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rand = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let queues: Vec<Vec<u64>> = (0..num_cores)
            .map(|_| (0..50).map(|_| rand() % 4).collect())
            .collect();

        // Reference: linear scan.
        let mut clocks = vec![Cycle::ZERO; num_cores];
        let mut next = vec![0usize; num_cores];
        let mut reference = Vec::new();
        loop {
            let pending: Vec<bool> = (0..num_cores).map(|c| next[c] < queues[c].len()).collect();
            let Some(core) = linear_scan(&clocks, &pending) else {
                break;
            };
            reference.push(core);
            clocks[core] += queues[core][next[core]];
            next[core] += 1;
        }

        // Heap with batched dispatch, as run_source drives it.
        let mut clocks = vec![Cycle::ZERO; num_cores];
        let mut next = vec![0usize; num_cores];
        let mut sched = CoreScheduler::with_capacity(num_cores);
        for (core, clock) in clocks.iter().enumerate() {
            sched.push(core, *clock);
        }
        let mut heap_order = Vec::new();
        let mut current = sched.pop();
        while let Some(core) = current {
            heap_order.push(core);
            clocks[core] += queues[core][next[core]];
            next[core] += 1;
            let exhausted = next[core] >= queues[core].len();
            current = if exhausted {
                sched.pop()
            } else if sched.runs_next(core, clocks[core]) {
                Some(core)
            } else {
                sched.push(core, clocks[core]);
                sched.pop()
            };
        }

        assert_eq!(heap_order, reference);
        assert_eq!(heap_order.len(), num_cores * 50);
    }
}
