//! Experiment orchestration: run benchmark × scheme matrices, normalize
//! against a baseline and aggregate, the way the paper's figures do.
//!
//! The paper evaluates seven configurations per benchmark
//! (S-NUCA, R-NUCA, VR, ASR, RT-1, RT-3, RT-8), normalizes energy and
//! completion time to S-NUCA (Figures 6 and 7), and reports the ASR result
//! at the per-benchmark replication level with the lowest energy-delay
//! product.  [`SchemeComparison`] reproduces exactly that procedure;
//! [`ExperimentRunner`] parallelizes the independent simulations across
//! threads.

use std::collections::BTreeMap;

use lad_common::config::SystemConfig;
use lad_common::stats::{geometric_mean, mean, normalized};
use lad_energy::model::EnergyModel;
use lad_replication::config::ReplicationConfig;
use lad_replication::policies::AsrPolicy;
use lad_trace::benchmarks::Benchmark;
use lad_trace::suite::BenchmarkSuite;

use crate::engine::Simulator;
use crate::metrics::SimulationReport;

/// Runs simulations for a benchmark suite, optionally in parallel.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    system: SystemConfig,
    suite: BenchmarkSuite,
    energy_model: EnergyModel,
    threads: usize,
}

impl ExperimentRunner {
    /// Creates a runner for one system configuration and benchmark suite.
    pub fn new(system: SystemConfig, suite: BenchmarkSuite) -> Self {
        ExperimentRunner {
            system,
            suite,
            energy_model: EnergyModel::paper_default(),
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    }

    /// Limits the number of worker threads (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Uses a custom energy model (builder style).
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// The benchmark suite being run.
    pub fn suite(&self) -> &BenchmarkSuite {
        &self.suite
    }

    /// Runs one benchmark under one configuration.
    pub fn run_one(&self, benchmark: Benchmark, config: &ReplicationConfig) -> SimulationReport {
        let trace = self.suite.trace_for(benchmark, self.system.num_cores);
        let mut sim = Simulator::with_energy_model(
            self.system.clone(),
            config.clone(),
            self.energy_model.clone(),
        );
        sim.run(&trace)
    }

    /// Runs every benchmark of the suite under every configuration, in
    /// parallel across worker threads.  Results are keyed by
    /// `(benchmark, configuration label)`.
    pub fn run_matrix(
        &self,
        configs: &[ReplicationConfig],
    ) -> BTreeMap<(Benchmark, String), SimulationReport> {
        let jobs: Vec<(Benchmark, ReplicationConfig)> = self
            .suite
            .benchmarks()
            .iter()
            .flat_map(|b| configs.iter().map(move |c| (*b, c.clone())))
            .collect();

        let mut results = BTreeMap::new();
        std::thread::scope(|scope| {
            let chunk_size = jobs.len().div_ceil(self.threads).max(1);
            let handles: Vec<_> = jobs
                .chunks(chunk_size)
                .map(|chunk| {
                    let runner = self;
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|(benchmark, config)| {
                                let report = runner.run_one(*benchmark, config);
                                ((*benchmark, config.label()), report)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (key, report) in handle.join().expect("worker thread panicked") {
                    results.insert(key, report);
                }
            }
        });
        results
    }

    /// Runs the paper's standard seven-configuration comparison
    /// (S-NUCA, R-NUCA, VR, ASR at its best level, RT-1, RT-3, RT-8) for the
    /// whole suite.
    pub fn run_paper_comparison(&self) -> SchemeComparison {
        let mut configs = vec![
            ReplicationConfig::static_nuca(),
            ReplicationConfig::reactive_nuca(),
            ReplicationConfig::victim_replication(),
            ReplicationConfig::locality_aware(1),
            ReplicationConfig::locality_aware(3),
            ReplicationConfig::locality_aware(8),
        ];
        for level in AsrPolicy::LEVELS {
            configs.push(ReplicationConfig::asr(level));
        }
        let results = self.run_matrix(&configs);
        SchemeComparison::from_results(self.suite.benchmarks().to_vec(), results)
    }
}

/// The normalized cross-scheme comparison of Figures 6–8.
#[derive(Debug, Clone)]
pub struct SchemeComparison {
    benchmarks: Vec<Benchmark>,
    /// Reports keyed by `(benchmark, scheme label)`, with ASR already
    /// collapsed to its best level per benchmark (label `"ASR"`).
    reports: BTreeMap<(Benchmark, String), SimulationReport>,
}

impl SchemeComparison {
    /// The scheme labels of the paper's figures, in plotting order.
    pub const SCHEME_ORDER: [&'static str; 7] =
        ["S-NUCA", "R-NUCA", "VR", "ASR", "RT-1", "RT-3", "RT-8"];

    /// Builds the comparison from a raw result matrix, selecting ASR's best
    /// replication level per benchmark by energy-delay product (the paper's
    /// methodology, Section 3.3).
    pub fn from_results(
        benchmarks: Vec<Benchmark>,
        results: BTreeMap<(Benchmark, String), SimulationReport>,
    ) -> Self {
        let mut reports: BTreeMap<(Benchmark, String), SimulationReport> = BTreeMap::new();
        for ((benchmark, label), report) in results {
            if label.starts_with("ASR-") {
                let key = (benchmark, "ASR".to_string());
                let better = match reports.get(&key) {
                    None => true,
                    Some(existing) => {
                        report.energy_delay_product() < existing.energy_delay_product()
                    }
                };
                if better {
                    reports.insert(key, report);
                }
            } else {
                reports.insert((benchmark, label), report);
            }
        }
        SchemeComparison { benchmarks, reports }
    }

    /// The benchmarks included.
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// The report for one benchmark under one scheme label, if present.
    pub fn report(&self, benchmark: Benchmark, scheme: &str) -> Option<&SimulationReport> {
        self.reports.get(&(benchmark, scheme.to_string()))
    }

    /// Energy of `scheme` normalized to the `baseline` scheme for one
    /// benchmark (1.0 when either is missing).
    pub fn normalized_energy(&self, benchmark: Benchmark, scheme: &str, baseline: &str) -> f64 {
        match (self.report(benchmark, scheme), self.report(benchmark, baseline)) {
            (Some(s), Some(b)) => normalized(s.energy.total(), b.energy.total()),
            _ => 1.0,
        }
    }

    /// Completion time of `scheme` normalized to `baseline` for one
    /// benchmark.
    pub fn normalized_completion_time(
        &self,
        benchmark: Benchmark,
        scheme: &str,
        baseline: &str,
    ) -> f64 {
        match (self.report(benchmark, scheme), self.report(benchmark, baseline)) {
            (Some(s), Some(b)) => normalized(
                s.completion_time.value() as f64,
                b.completion_time.value() as f64,
            ),
            _ => 1.0,
        }
    }

    /// Arithmetic mean (over benchmarks) of the normalized energy of a
    /// scheme — the "Average" bar of Figure 6.
    pub fn average_normalized_energy(&self, scheme: &str, baseline: &str) -> f64 {
        let values: Vec<f64> = self
            .benchmarks
            .iter()
            .map(|b| self.normalized_energy(*b, scheme, baseline))
            .collect();
        mean(&values).unwrap_or(1.0)
    }

    /// Arithmetic mean (over benchmarks) of the normalized completion time —
    /// the "Average" bar of Figure 7.
    pub fn average_normalized_completion_time(&self, scheme: &str, baseline: &str) -> f64 {
        let values: Vec<f64> = self
            .benchmarks
            .iter()
            .map(|b| self.normalized_completion_time(*b, scheme, baseline))
            .collect();
        mean(&values).unwrap_or(1.0)
    }

    /// Geometric mean of normalized energy (used by Figures 9 and 10).
    pub fn geomean_normalized_energy(&self, scheme: &str, baseline: &str) -> f64 {
        let values: Vec<f64> = self
            .benchmarks
            .iter()
            .map(|b| self.normalized_energy(*b, scheme, baseline))
            .collect();
        geometric_mean(&values).unwrap_or(1.0)
    }

    /// Geometric mean of normalized completion time (Figures 9 and 10).
    pub fn geomean_normalized_completion_time(&self, scheme: &str, baseline: &str) -> f64 {
        let values: Vec<f64> = self
            .benchmarks
            .iter()
            .map(|b| self.normalized_completion_time(*b, scheme, baseline))
            .collect();
        geometric_mean(&values).unwrap_or(1.0)
    }

    /// The headline result of the paper: the percentage reduction in energy
    /// and completion time of `scheme` relative to each baseline, averaged
    /// over benchmarks.  Returns `(energy_reduction_pct, time_reduction_pct)`.
    pub fn reduction_vs(&self, scheme: &str, baseline: &str) -> (f64, f64) {
        let energy: Vec<f64> = self
            .benchmarks
            .iter()
            .map(|b| self.normalized_energy(*b, scheme, baseline))
            .collect();
        let time: Vec<f64> = self
            .benchmarks
            .iter()
            .map(|b| self.normalized_completion_time(*b, scheme, baseline))
            .collect();
        (
            (1.0 - mean(&energy).unwrap_or(1.0)) * 100.0,
            (1.0 - mean(&time).unwrap_or(1.0)) * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_common::types::Cycle;
    use lad_energy::accounting::{Component, EnergyAccounting};
    use crate::metrics::{LatencyBreakdown, MissBreakdown, RunLengthProfile};

    fn fake_report(benchmark: &str, scheme: &str, energy: f64, time: u64) -> SimulationReport {
        let mut acc = EnergyAccounting::new();
        acc.record(Component::L2Cache, energy);
        SimulationReport {
            benchmark: benchmark.to_string(),
            scheme: scheme.to_string(),
            completion_time: Cycle::new(time),
            latency: LatencyBreakdown::default(),
            misses: MissBreakdown::default(),
            energy: acc,
            run_lengths: RunLengthProfile::new(),
            total_accesses: 1,
            replicas_created: 0,
            back_invalidations: 0,
        }
    }

    #[test]
    fn comparison_normalizes_and_averages() {
        let mut results = BTreeMap::new();
        let benchmarks = vec![Benchmark::Barnes, Benchmark::Dedup];
        for b in &benchmarks {
            results.insert((*b, "S-NUCA".to_string()), fake_report(b.label(), "S-NUCA", 100.0, 1000));
            results.insert((*b, "RT-3".to_string()), fake_report(b.label(), "RT-3", 80.0, 900));
        }
        let cmp = SchemeComparison::from_results(benchmarks, results);
        assert!((cmp.normalized_energy(Benchmark::Barnes, "RT-3", "S-NUCA") - 0.8).abs() < 1e-12);
        assert!((cmp.average_normalized_energy("RT-3", "S-NUCA") - 0.8).abs() < 1e-12);
        assert!(
            (cmp.average_normalized_completion_time("RT-3", "S-NUCA") - 0.9).abs() < 1e-12
        );
        assert!((cmp.geomean_normalized_energy("RT-3", "S-NUCA") - 0.8).abs() < 1e-9);
        let (e_red, t_red) = cmp.reduction_vs("RT-3", "S-NUCA");
        assert!((e_red - 20.0).abs() < 1e-9);
        assert!((t_red - 10.0).abs() < 1e-9);
        // Missing scheme falls back to 1.0.
        assert_eq!(cmp.normalized_energy(Benchmark::Barnes, "VR", "S-NUCA"), 1.0);
    }

    #[test]
    fn asr_collapses_to_best_energy_delay_product() {
        let mut results = BTreeMap::new();
        let benchmarks = vec![Benchmark::Barnes];
        results.insert(
            (Benchmark::Barnes, "ASR-0.00".to_string()),
            fake_report("BARNES", "ASR-0.00", 100.0, 1000),
        );
        results.insert(
            (Benchmark::Barnes, "ASR-0.50".to_string()),
            fake_report("BARNES", "ASR-0.50", 50.0, 900),
        );
        results.insert(
            (Benchmark::Barnes, "ASR-1.00".to_string()),
            fake_report("BARNES", "ASR-1.00", 120.0, 800),
        );
        let cmp = SchemeComparison::from_results(benchmarks, results);
        let chosen = cmp.report(Benchmark::Barnes, "ASR").expect("ASR entry exists");
        assert_eq!(chosen.scheme, "ASR-0.50");
        assert_eq!(SchemeComparison::SCHEME_ORDER.len(), 7);
    }

    #[test]
    fn runner_executes_matrix_in_parallel() {
        let suite = BenchmarkSuite::custom(vec![Benchmark::Dedup, Benchmark::Barnes], 150, 1);
        let runner = ExperimentRunner::new(SystemConfig::small_test(), suite).with_threads(2);
        let configs = [ReplicationConfig::static_nuca(), ReplicationConfig::locality_aware(3)];
        let results = runner.run_matrix(&configs);
        assert_eq!(results.len(), 4);
        for ((_, label), report) in &results {
            assert!(report.total_accesses > 0, "{label} must simulate accesses");
        }
        // A single run agrees with the matrix entry (determinism).
        let single = runner.run_one(Benchmark::Dedup, &ReplicationConfig::static_nuca());
        let from_matrix = &results[&(Benchmark::Dedup, "S-NUCA".to_string())];
        assert_eq!(single.completion_time, from_matrix.completion_time);
    }
}
