//! Experiment orchestration: run benchmark × scheme matrices, normalize
//! against a baseline and aggregate, the way the paper's figures do.
//!
//! The paper evaluates seven configurations per benchmark
//! (S-NUCA, R-NUCA, VR, ASR, RT-1, RT-3, RT-8), normalizes energy and
//! completion time to S-NUCA (Figures 6 and 7), and reports the ASR result
//! at the per-benchmark replication level with the lowest energy-delay
//! product.  [`SchemeComparison`] reproduces exactly that procedure;
//! [`ExperimentRunner`] parallelizes the independent simulations across
//! threads.
//!
//! Everything is keyed by typed [`SchemeId`]s resolved through a
//! [`SchemeRegistry`], so custom out-of-crate [`ReplicationPolicy`]s sweep
//! through the same matrix machinery as the paper's built-ins, and a lookup
//! of a scheme that was never run is a typed [`UnknownScheme`] error instead
//! of a silent `NaN`.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lad_common::config::SystemConfig;
use lad_common::json::JsonValue;
use lad_common::stats::{geometric_mean, mean, normalized};
use lad_energy::model::EnergyModel;
use lad_replication::config::ReplicationConfig;
use lad_replication::policies::AsrPolicy;
use lad_replication::policy::{RegisteredScheme, ReplicationPolicy, SchemeRegistry};
use lad_replication::scheme::{SchemeId, UnknownScheme};
use lad_trace::benchmarks::Benchmark;
use lad_trace::suite::BenchmarkSuite;
use lad_traceio::error::TraceError;
use lad_traceio::source::{FileSource, TraceSource};

use crate::engine::Simulator;
use crate::metrics::SimulationReport;

/// Pre-resolved work-stealing-pool instrument handles, labelled by which
/// matrix entry point owns the pool.  Queue wait is measured from pool
/// start to the moment a worker pulls the cell (cells sit in the shared
/// queue from the start, so that *is* their wait); execution time is the
/// cell's own wall clock.
#[derive(Clone)]
struct PoolMetrics {
    queue_wait: lad_obs::LatencyHistogram,
    exec: lad_obs::LatencyHistogram,
    jobs: lad_obs::Counter,
    busy: lad_obs::Gauge,
}

impl PoolMetrics {
    fn resolve(pool: &str) -> Self {
        let registry = lad_obs::global();
        let labels = [("pool", pool)];
        PoolMetrics {
            queue_wait: registry.histogram_with(
                "lad_pool_queue_wait_us",
                &labels,
                "time a matrix cell waited in the work-stealing queue",
            ),
            exec: registry.histogram_with(
                "lad_pool_cell_exec_us",
                &labels,
                "wall-clock execution time of one matrix cell",
            ),
            jobs: registry.counter_with(
                "lad_pool_jobs_total",
                &labels,
                "matrix cells pulled from the work-stealing queue",
            ),
            busy: registry.gauge_with(
                "lad_pool_workers_busy",
                &labels,
                "workers currently executing a cell",
            ),
        }
    }
}

/// Why a file-backed replay failed: the scheme was never registered, the
/// trace could not be streamed, or two trace files claimed the same
/// benchmark name in a matrix replay.
#[derive(Debug)]
pub enum ReplayError {
    /// The requested scheme is not in the runner's registry.
    UnknownScheme(UnknownScheme),
    /// The trace file could not be opened or decoded.
    Trace(TraceError),
    /// Two trace files in one matrix replay carry the same benchmark name
    /// in their headers, so their reports would overwrite each other.
    DuplicateBenchmark {
        /// The benchmark name both headers claim.
        benchmark: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownScheme(err) => write!(f, "{err}"),
            ReplayError::Trace(err) => write!(f, "{err}"),
            ReplayError::DuplicateBenchmark { benchmark } => write!(
                f,
                "two trace files both claim benchmark {benchmark}; matrix results are keyed by \
                 benchmark name, so their reports would collide"
            ),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::UnknownScheme(err) => Some(err),
            ReplayError::Trace(err) => Some(err),
            ReplayError::DuplicateBenchmark { .. } => None,
        }
    }
}

impl From<UnknownScheme> for ReplayError {
    fn from(err: UnknownScheme) -> Self {
        ReplayError::UnknownScheme(err)
    }
}

impl From<TraceError> for ReplayError {
    fn from(err: TraceError) -> Self {
        ReplayError::Trace(err)
    }
}

/// Runs simulations for a benchmark suite, optionally in parallel.
///
/// The runner resolves schemes through its [`SchemeRegistry`] (the built-in
/// registry by default), so custom policies registered with
/// [`ExperimentRunner::register_scheme`] are swept exactly like the paper's
/// schemes.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    system: SystemConfig,
    suite: BenchmarkSuite,
    energy_model: EnergyModel,
    threads: usize,
    registry: SchemeRegistry,
}

impl ExperimentRunner {
    /// Creates a runner for one system configuration and benchmark suite,
    /// with the built-in scheme registry.
    ///
    /// Worker-thread count follows the workspace-wide selection rule
    /// ([`lad_common::workers::worker_count`]): the `LAD_THREADS`
    /// environment variable if set, the machine's parallelism otherwise;
    /// [`ExperimentRunner::with_threads`] overrides both.
    pub fn new(system: SystemConfig, suite: BenchmarkSuite) -> Self {
        ExperimentRunner {
            system,
            suite,
            energy_model: EnergyModel::paper_default(),
            threads: lad_common::workers::worker_count(None),
            registry: SchemeRegistry::builtin(),
        }
    }

    /// Limits the number of worker threads (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Uses a custom energy model (builder style).
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// Replaces the scheme registry (builder style).
    pub fn with_registry(mut self, registry: SchemeRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers a (typically out-of-crate) policy so the runner can sweep
    /// it by its [`SchemeId`].  `config` supplies the engine knobs the
    /// policy runs with; any previous entry under the same id is replaced.
    pub fn register_scheme(
        &mut self,
        policy: Arc<dyn ReplicationPolicy>,
        config: ReplicationConfig,
    ) {
        self.registry.register(policy, config);
    }

    /// The benchmark suite being run.
    pub fn suite(&self) -> &BenchmarkSuite {
        &self.suite
    }

    /// The scheme registry the runner resolves sweeps through.
    pub fn registry(&self) -> &SchemeRegistry {
        &self.registry
    }

    /// Number of worker threads actually spawned for a matrix of
    /// `job_count` cells: the configured thread count clamped so no worker
    /// is spawned just to find the job queue already empty, and at least
    /// one worker even for an empty matrix.
    fn worker_threads(&self, job_count: usize) -> usize {
        self.threads.min(job_count).max(1)
    }

    /// Runs one benchmark under one ad-hoc configuration (bypassing the
    /// registry), using the built-in policy of `config.scheme`.
    pub fn run_one(&self, benchmark: Benchmark, config: &ReplicationConfig) -> SimulationReport {
        let trace = self.suite.trace_for(benchmark, self.system.num_cores);
        let mut sim = Simulator::with_energy_model(
            self.system.clone(),
            config.clone(),
            self.energy_model.clone(),
        );
        sim.run(&trace)
    }

    /// Runs one benchmark under one registered scheme.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] when `scheme` is not in the registry.
    pub fn run_scheme(
        &self,
        benchmark: Benchmark,
        scheme: SchemeId,
    ) -> Result<SimulationReport, UnknownScheme> {
        let entry = self.registry.get(scheme)?;
        Ok(self.run_registered(benchmark, entry))
    }

    fn run_registered(&self, benchmark: Benchmark, scheme: &RegisteredScheme) -> SimulationReport {
        let trace = self.suite.trace_for(benchmark, self.system.num_cores);
        let mut sim = Simulator::with_policy_and_energy_model(
            self.system.clone(),
            scheme.config.clone(),
            Arc::clone(&scheme.policy),
            self.energy_model.clone(),
        );
        sim.run(&trace)
    }

    /// Replays any [`TraceSource`] (a recorded `.ladt` file, an external
    /// imported trace, ...) under one registered scheme.  The suite's
    /// generation parameters are bypassed entirely: the trace *is* the
    /// workload.
    ///
    /// # Errors
    ///
    /// [`ReplayError::UnknownScheme`] when `scheme` is not registered, or
    /// [`ReplayError::Trace`] when the source fails to stream.
    pub fn replay_source(
        &self,
        source: &mut dyn TraceSource,
        scheme: SchemeId,
    ) -> Result<SimulationReport, ReplayError> {
        let entry = self.registry.get(scheme)?;
        let mut sim = Simulator::with_policy_and_energy_model(
            self.system.clone(),
            entry.config.clone(),
            Arc::clone(&entry.policy),
            self.energy_model.clone(),
        );
        Ok(sim.run_source(source)?)
    }

    /// Replays one recorded `.ladt` trace file under one registered scheme.
    ///
    /// # Errors
    ///
    /// Like [`ExperimentRunner::replay_source`], plus file-open failures.
    pub fn replay_file(
        &self,
        path: impl AsRef<Path>,
        scheme: SchemeId,
    ) -> Result<SimulationReport, ReplayError> {
        // Resolve the scheme before touching the file so an unregistered
        // scheme fails fast with the right error even for a missing path.
        self.registry.get(scheme)?;
        let mut source = FileSource::open(path)?;
        self.replay_source(&mut source, scheme)
    }

    /// Replays every `.ladt` file under every requested scheme, in parallel
    /// across worker threads — the file-backed counterpart of
    /// [`ExperimentRunner::run_matrix`].  Results are keyed by
    /// `(benchmark name from the trace header, scheme id)`.
    ///
    /// # Errors
    ///
    /// Fails fast (before replaying anything) if any scheme is
    /// unregistered; trace errors surface per cell as the whole matrix's
    /// error, and two files whose headers claim the same benchmark name
    /// are [`ReplayError::DuplicateBenchmark`] rather than a silent
    /// overwrite.
    pub fn replay_file_matrix(
        &self,
        files: &[PathBuf],
        schemes: &[SchemeId],
    ) -> Result<BTreeMap<(String, SchemeId), SimulationReport>, ReplayError> {
        for &scheme in schemes {
            self.registry.get(scheme)?;
        }
        let jobs: Vec<(&PathBuf, SchemeId)> = files
            .iter()
            .flat_map(|path| schemes.iter().map(move |&scheme| (path, scheme)))
            .collect();

        // Work stealing: every worker pulls the next unclaimed job index
        // instead of owning a pre-cut chunk, so one slow trace cannot idle
        // the other workers the way static `chunks()` partitioning did.
        // Cells are tagged with their job index and merged in index order,
        // so the result map and the reported error are identical no matter
        // which worker ran which job.
        let workers = self.worker_threads(jobs.len());
        let next_job = AtomicUsize::new(0);
        let obs = PoolMetrics::resolve("replay_file_matrix");
        let pool_started = Instant::now();
        type ReplayCell = Result<((String, SchemeId), SimulationReport), ReplayError>;
        let mut collected: Vec<(usize, ReplayCell)> = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let runner = self;
                    let jobs = &jobs;
                    let next_job = &next_job;
                    let obs = obs.clone();
                    scope.spawn(move || {
                        let mut cells: Vec<(usize, ReplayCell)> = Vec::new();
                        loop {
                            let index = next_job.fetch_add(1, Ordering::Relaxed);
                            let Some((path, scheme)) = jobs.get(index) else {
                                break;
                            };
                            obs.queue_wait.record_duration(pool_started.elapsed());
                            obs.jobs.inc();
                            obs.busy.inc();
                            let cell_started = Instant::now();
                            let cell = runner
                                .replay_file(path, *scheme)
                                .map(|report| ((report.benchmark.clone(), *scheme), report));
                            obs.exec.record_duration(cell_started.elapsed());
                            obs.busy.dec();
                            cells.push((index, cell));
                        }
                        cells
                    })
                })
                .collect();
            for handle in handles {
                collected.extend(
                    handle
                        .join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic)),
                );
            }
        });
        collected.sort_unstable_by_key(|(index, _)| *index);

        let mut results = BTreeMap::new();
        let mut first_error = None;
        for (_, cell) in collected {
            match cell {
                Ok((key, report)) => {
                    let benchmark = key.0.clone();
                    if results.insert(key, report).is_some() && first_error.is_none() {
                        first_error = Some(ReplayError::DuplicateBenchmark { benchmark });
                    }
                }
                Err(err) => {
                    if first_error.is_none() {
                        first_error = Some(err);
                    }
                }
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(results),
        }
    }

    /// Runs every benchmark of the suite under every requested scheme, in
    /// parallel across worker threads.  Results are keyed by
    /// `(benchmark, scheme id)`.
    ///
    /// # Errors
    ///
    /// Fails fast with [`UnknownScheme`] (before simulating anything) if any
    /// requested scheme is not registered.
    pub fn run_matrix(
        &self,
        schemes: &[SchemeId],
    ) -> Result<BTreeMap<(Benchmark, SchemeId), SimulationReport>, UnknownScheme> {
        let resolved: Vec<(SchemeId, &RegisteredScheme)> = schemes
            .iter()
            .map(|&id| Ok((id, self.registry.get(id)?)))
            .collect::<Result<_, UnknownScheme>>()?;
        let jobs: Vec<(Benchmark, SchemeId, &RegisteredScheme)> = self
            .suite
            .benchmarks()
            .iter()
            .flat_map(|b| resolved.iter().map(move |(id, entry)| (*b, *id, *entry)))
            .collect();

        // Same work-stealing scheme as `replay_file_matrix`: an atomic
        // next-job index instead of static chunks, so an expensive
        // (benchmark, scheme) cell never strands the rest of a chunk
        // behind it.  Each cell is keyed by `(benchmark, scheme)` and every
        // simulation is deterministic, so the BTreeMap is byte-identical
        // however the jobs land on workers.
        let workers = self.worker_threads(jobs.len());
        let next_job = AtomicUsize::new(0);
        let obs = PoolMetrics::resolve("run_matrix");
        let pool_started = Instant::now();
        let mut results = BTreeMap::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let runner = self;
                    let jobs = &jobs;
                    let next_job = &next_job;
                    let obs = obs.clone();
                    scope.spawn(move || {
                        let mut cells = Vec::new();
                        loop {
                            let index = next_job.fetch_add(1, Ordering::Relaxed);
                            let Some((benchmark, id, entry)) = jobs.get(index) else {
                                break;
                            };
                            obs.queue_wait.record_duration(pool_started.elapsed());
                            obs.jobs.inc();
                            obs.busy.inc();
                            let cell_started = Instant::now();
                            let report = runner.run_registered(*benchmark, entry);
                            obs.exec.record_duration(cell_started.elapsed());
                            obs.busy.dec();
                            cells.push(((*benchmark, *id), report));
                        }
                        cells
                    })
                })
                .collect();
            for handle in handles {
                let cells = handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
                for (key, report) in cells {
                    results.insert(key, report);
                }
            }
        });
        Ok(results)
    }

    /// The scheme ids of the paper's standard sweep: the four baselines
    /// (with ASR at every level of [`AsrPolicy::LEVELS`]) and RT-1, RT-3,
    /// RT-8.
    pub fn paper_sweep() -> Vec<SchemeId> {
        let mut schemes = vec![
            SchemeId::StaticNuca,
            SchemeId::ReactiveNuca,
            SchemeId::VictimReplication,
            SchemeId::Rt(1),
            SchemeId::Rt(3),
            SchemeId::Rt(8),
        ];
        for level in AsrPolicy::LEVELS {
            schemes.push(SchemeId::asr_at_level(level));
        }
        schemes
    }

    /// Runs the paper's standard seven-configuration comparison
    /// (S-NUCA, R-NUCA, VR, ASR at its best level, RT-1, RT-3, RT-8) for the
    /// whole suite.
    ///
    /// # Panics
    ///
    /// Panics if a custom registry (see
    /// [`ExperimentRunner::with_registry`]) dropped one of the built-in
    /// schemes of the sweep.
    pub fn run_paper_comparison(&self) -> SchemeComparison {
        let results = match self.run_matrix(&Self::paper_sweep()) {
            Ok(results) => results,
            Err(error) => panic!(
                "the paper sweep must be registered \
                 (is a custom registry missing built-ins?): {error}"
            ),
        };
        SchemeComparison::from_results(self.suite.benchmarks().to_vec(), results)
    }
}

/// The normalized cross-scheme comparison of Figures 6–8.
#[derive(Debug, Clone)]
pub struct SchemeComparison {
    benchmarks: Vec<Benchmark>,
    /// Reports keyed by `(benchmark, scheme id)`, with the ASR level sweep
    /// already collapsed to its best level per benchmark under
    /// [`SchemeId::Asr`].
    reports: BTreeMap<(Benchmark, SchemeId), SimulationReport>,
}

impl SchemeComparison {
    /// The scheme columns of the paper's figures, in plotting order.
    pub const SCHEME_ORDER: [SchemeId; 7] = [
        SchemeId::StaticNuca,
        SchemeId::ReactiveNuca,
        SchemeId::VictimReplication,
        SchemeId::Asr,
        SchemeId::Rt(1),
        SchemeId::Rt(3),
        SchemeId::Rt(8),
    ];

    /// Builds the comparison from a raw result matrix, selecting ASR's best
    /// replication level per benchmark by energy-delay product (the paper's
    /// methodology, Section 3.3): every [`SchemeId::AsrAt`] entry competes
    /// for the collapsed [`SchemeId::Asr`] column.
    pub fn from_results(
        benchmarks: Vec<Benchmark>,
        results: BTreeMap<(Benchmark, SchemeId), SimulationReport>,
    ) -> Self {
        let mut reports: BTreeMap<(Benchmark, SchemeId), SimulationReport> = BTreeMap::new();
        for ((benchmark, id), report) in results {
            if let SchemeId::AsrAt(_) = id {
                let key = (benchmark, SchemeId::Asr);
                let better = match reports.get(&key) {
                    None => true,
                    Some(existing) => {
                        report.energy_delay_product() < existing.energy_delay_product()
                    }
                };
                if better {
                    reports.insert(key, report);
                }
            } else {
                reports.insert((benchmark, id), report);
            }
        }
        SchemeComparison {
            benchmarks,
            reports,
        }
    }

    /// The benchmarks included.
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// The scheme columns present for at least one benchmark, in
    /// [`SchemeId`] order.
    pub fn schemes(&self) -> Vec<SchemeId> {
        let mut ids: Vec<SchemeId> = self.reports.keys().map(|(_, id)| *id).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// The report for one benchmark under one scheme.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] when that cell of the matrix was never run.
    pub fn report(
        &self,
        benchmark: Benchmark,
        scheme: SchemeId,
    ) -> Result<&SimulationReport, UnknownScheme> {
        self.reports
            .get(&(benchmark, scheme))
            .ok_or_else(|| UnknownScheme::new(scheme, benchmark.label()))
    }

    /// Energy of `scheme` normalized to the `baseline` scheme for one
    /// benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] when either report is missing — a missing
    /// baseline is an experiment bug, not a 1.0.
    pub fn normalized_energy(
        &self,
        benchmark: Benchmark,
        scheme: SchemeId,
        baseline: SchemeId,
    ) -> Result<f64, UnknownScheme> {
        let s = self.report(benchmark, scheme)?;
        let b = self.report(benchmark, baseline)?;
        Ok(normalized(s.energy.total(), b.energy.total()))
    }

    /// Completion time of `scheme` normalized to `baseline` for one
    /// benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] when either report is missing.
    pub fn normalized_completion_time(
        &self,
        benchmark: Benchmark,
        scheme: SchemeId,
        baseline: SchemeId,
    ) -> Result<f64, UnknownScheme> {
        let s = self.report(benchmark, scheme)?;
        let b = self.report(benchmark, baseline)?;
        Ok(normalized(
            s.completion_time.value() as f64,
            b.completion_time.value() as f64,
        ))
    }

    fn normalized_over_benchmarks(
        &self,
        scheme: SchemeId,
        baseline: SchemeId,
        metric: impl Fn(&Self, Benchmark, SchemeId, SchemeId) -> Result<f64, UnknownScheme>,
    ) -> Result<Vec<f64>, UnknownScheme> {
        self.benchmarks
            .iter()
            .map(|b| metric(self, *b, scheme, baseline))
            .collect()
    }

    /// Arithmetic mean (over benchmarks) of the normalized energy of a
    /// scheme — the "Average" bar of Figure 6.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] when any benchmark is missing either
    /// report.
    pub fn average_normalized_energy(
        &self,
        scheme: SchemeId,
        baseline: SchemeId,
    ) -> Result<f64, UnknownScheme> {
        let values = self.normalized_over_benchmarks(scheme, baseline, Self::normalized_energy)?;
        Ok(mean(&values).unwrap_or(1.0))
    }

    /// Arithmetic mean (over benchmarks) of the normalized completion time —
    /// the "Average" bar of Figure 7.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] when any benchmark is missing either
    /// report.
    pub fn average_normalized_completion_time(
        &self,
        scheme: SchemeId,
        baseline: SchemeId,
    ) -> Result<f64, UnknownScheme> {
        let values =
            self.normalized_over_benchmarks(scheme, baseline, Self::normalized_completion_time)?;
        Ok(mean(&values).unwrap_or(1.0))
    }

    /// Geometric mean of normalized energy (used by Figures 9 and 10).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] when any benchmark is missing either
    /// report.
    pub fn geomean_normalized_energy(
        &self,
        scheme: SchemeId,
        baseline: SchemeId,
    ) -> Result<f64, UnknownScheme> {
        let values = self.normalized_over_benchmarks(scheme, baseline, Self::normalized_energy)?;
        Ok(geometric_mean(&values).unwrap_or(1.0))
    }

    /// Geometric mean of normalized completion time (Figures 9 and 10).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] when any benchmark is missing either
    /// report.
    pub fn geomean_normalized_completion_time(
        &self,
        scheme: SchemeId,
        baseline: SchemeId,
    ) -> Result<f64, UnknownScheme> {
        let values =
            self.normalized_over_benchmarks(scheme, baseline, Self::normalized_completion_time)?;
        Ok(geometric_mean(&values).unwrap_or(1.0))
    }

    /// The headline result of the paper: the percentage reduction in energy
    /// and completion time of `scheme` relative to `baseline`, averaged
    /// over benchmarks.  Returns `(energy_reduction_pct, time_reduction_pct)`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] when any benchmark is missing either
    /// report.
    pub fn reduction_vs(
        &self,
        scheme: SchemeId,
        baseline: SchemeId,
    ) -> Result<(f64, f64), UnknownScheme> {
        let energy = self.average_normalized_energy(scheme, baseline)?;
        let time = self.average_normalized_completion_time(scheme, baseline)?;
        Ok(((1.0 - energy) * 100.0, (1.0 - time) * 100.0))
    }

    /// The whole comparison as a JSON object (benchmarks plus one entry per
    /// matrix cell).  Round-trips through [`SchemeComparison::from_json`].
    pub fn to_json(&self) -> JsonValue {
        let benchmarks: Vec<JsonValue> = self
            .benchmarks
            .iter()
            .map(|b| JsonValue::from(b.label()))
            .collect();
        let entries: Vec<JsonValue> = self
            .reports
            .iter()
            .map(|((benchmark, scheme), report)| {
                JsonValue::object([
                    ("benchmark", JsonValue::from(benchmark.label())),
                    ("scheme", JsonValue::from(scheme.label())),
                    ("report", report.to_json()),
                ])
            })
            .collect();
        JsonValue::object([
            ("benchmarks", JsonValue::Array(benchmarks)),
            ("entries", JsonValue::Array(entries)),
        ])
    }

    /// Rebuilds a comparison from [`SchemeComparison::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry or unknown
    /// benchmark label.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let benchmark_for = |label: &str| {
            Benchmark::ALL
                .iter()
                .copied()
                .find(|b| b.label() == label)
                .ok_or_else(|| format!("unknown benchmark {label:?}"))
        };
        let benchmarks = value
            .get("benchmarks")
            .and_then(JsonValue::as_array)
            .ok_or("comparison is missing the benchmark list")?
            .iter()
            .map(|b| {
                b.as_str()
                    .ok_or_else(|| "benchmark labels must be strings".to_string())
                    .and_then(benchmark_for)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut reports = BTreeMap::new();
        for entry in value
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or("comparison is missing the entry list")?
        {
            let benchmark = benchmark_for(
                entry
                    .get("benchmark")
                    .and_then(JsonValue::as_str)
                    .ok_or("comparison entry is missing its benchmark")?,
            )?;
            let scheme = SchemeId::parse(
                entry
                    .get("scheme")
                    .and_then(JsonValue::as_str)
                    .ok_or("comparison entry is missing its scheme")?,
            );
            let report = SimulationReport::from_json(
                entry
                    .get("report")
                    .ok_or("comparison entry is missing its report")?,
            )?;
            reports.insert((benchmark, scheme), report);
        }
        Ok(SchemeComparison {
            benchmarks,
            reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{LatencyBreakdown, MissBreakdown, RunLengthProfile};
    use lad_common::types::Cycle;
    use lad_energy::accounting::{Component, EnergyAccounting};

    fn fake_report(benchmark: &str, scheme: SchemeId, energy: f64, time: u64) -> SimulationReport {
        let mut acc = EnergyAccounting::new();
        acc.record(Component::L2Cache, energy);
        SimulationReport {
            benchmark: benchmark.to_string(),
            scheme: scheme.label(),
            scheme_id: scheme,
            completion_time: Cycle::new(time),
            latency: LatencyBreakdown::default(),
            misses: MissBreakdown::default(),
            energy: acc,
            run_lengths: RunLengthProfile::new(),
            total_accesses: 1,
            replicas_created: 0,
            back_invalidations: 0,
            classifier: crate::metrics::ClassifierStats::default(),
        }
    }

    #[test]
    fn comparison_normalizes_and_averages() {
        let mut results = BTreeMap::new();
        let benchmarks = vec![Benchmark::Barnes, Benchmark::Dedup];
        for b in &benchmarks {
            results.insert(
                (*b, SchemeId::StaticNuca),
                fake_report(b.label(), SchemeId::StaticNuca, 100.0, 1000),
            );
            results.insert(
                (*b, SchemeId::Rt(3)),
                fake_report(b.label(), SchemeId::Rt(3), 80.0, 900),
            );
        }
        let cmp = SchemeComparison::from_results(benchmarks, results);
        let rt3 = SchemeId::Rt(3);
        let snuca = SchemeId::StaticNuca;
        assert!(
            (cmp.normalized_energy(Benchmark::Barnes, rt3, snuca)
                .unwrap()
                - 0.8)
                .abs()
                < 1e-12
        );
        assert!((cmp.average_normalized_energy(rt3, snuca).unwrap() - 0.8).abs() < 1e-12);
        assert!((cmp.average_normalized_completion_time(rt3, snuca).unwrap() - 0.9).abs() < 1e-12);
        assert!((cmp.geomean_normalized_energy(rt3, snuca).unwrap() - 0.8).abs() < 1e-9);
        assert!((cmp.geomean_normalized_completion_time(rt3, snuca).unwrap() - 0.9).abs() < 1e-9);
        let (e_red, t_red) = cmp.reduction_vs(rt3, snuca).unwrap();
        assert!((e_red - 20.0).abs() < 1e-9);
        assert!((t_red - 10.0).abs() < 1e-9);
        assert_eq!(cmp.schemes(), vec![snuca, rt3]);
    }

    #[test]
    fn missing_scheme_lookups_are_typed_errors_not_nan() {
        // Regression: the old string-keyed API silently produced 1.0 / NaN
        // when a scheme or the baseline was missing from the matrix.
        let mut results = BTreeMap::new();
        results.insert(
            (Benchmark::Barnes, SchemeId::StaticNuca),
            fake_report("BARNES", SchemeId::StaticNuca, 100.0, 1000),
        );
        let cmp = SchemeComparison::from_results(vec![Benchmark::Barnes], results);

        // Missing scheme.
        let err = cmp
            .normalized_energy(
                Benchmark::Barnes,
                SchemeId::VictimReplication,
                SchemeId::StaticNuca,
            )
            .unwrap_err();
        assert_eq!(err.scheme, SchemeId::VictimReplication);
        assert_eq!(err.context, "BARNES");

        // Missing baseline.
        let err = cmp
            .normalized_completion_time(Benchmark::Barnes, SchemeId::StaticNuca, SchemeId::Rt(3))
            .unwrap_err();
        assert_eq!(err.scheme, SchemeId::Rt(3));

        // Aggregates propagate the error.
        assert!(cmp
            .average_normalized_energy(SchemeId::Rt(3), SchemeId::StaticNuca)
            .is_err());
        assert!(cmp
            .geomean_normalized_energy(SchemeId::Rt(3), SchemeId::StaticNuca)
            .is_err());
        assert!(cmp
            .reduction_vs(SchemeId::Rt(3), SchemeId::StaticNuca)
            .is_err());
        assert!(cmp.report(Benchmark::Barnes, SchemeId::Asr).is_err());
        // The error is displayable for operators.
        let err = cmp.report(Benchmark::Barnes, SchemeId::Asr).unwrap_err();
        assert_eq!(err.to_string(), "unknown scheme ASR (BARNES)");
    }

    #[test]
    fn asr_collapses_to_best_energy_delay_product() {
        let mut results = BTreeMap::new();
        let benchmarks = vec![Benchmark::Barnes];
        results.insert(
            (Benchmark::Barnes, SchemeId::AsrAt(0)),
            fake_report("BARNES", SchemeId::AsrAt(0), 100.0, 1000),
        );
        results.insert(
            (Benchmark::Barnes, SchemeId::AsrAt(50)),
            fake_report("BARNES", SchemeId::AsrAt(50), 50.0, 900),
        );
        results.insert(
            (Benchmark::Barnes, SchemeId::AsrAt(100)),
            fake_report("BARNES", SchemeId::AsrAt(100), 120.0, 800),
        );
        let cmp = SchemeComparison::from_results(benchmarks, results);
        let chosen = cmp
            .report(Benchmark::Barnes, SchemeId::Asr)
            .expect("ASR entry exists");
        assert_eq!(chosen.scheme, "ASR-0.50");
        assert_eq!(chosen.scheme_id, SchemeId::AsrAt(50));
        assert_eq!(SchemeComparison::SCHEME_ORDER.len(), 7);
    }

    #[test]
    fn runner_executes_matrix_in_parallel() {
        let suite = BenchmarkSuite::custom(vec![Benchmark::Dedup, Benchmark::Barnes], 150, 1);
        let runner = ExperimentRunner::new(SystemConfig::small_test(), suite).with_threads(2);
        let schemes = [SchemeId::StaticNuca, SchemeId::Rt(3)];
        let results = runner.run_matrix(&schemes).unwrap();
        assert_eq!(results.len(), 4);
        for ((_, id), report) in &results {
            assert!(report.total_accesses > 0, "{id} must simulate accesses");
            assert_eq!(report.scheme_id, *id);
        }
        // A single run agrees with the matrix entry (determinism), whether
        // it goes through the registry or an ad-hoc config.
        let single = runner
            .run_scheme(Benchmark::Dedup, SchemeId::StaticNuca)
            .unwrap();
        let from_matrix = &results[&(Benchmark::Dedup, SchemeId::StaticNuca)];
        assert_eq!(single.completion_time, from_matrix.completion_time);
        let adhoc = runner.run_one(Benchmark::Dedup, &ReplicationConfig::static_nuca());
        assert_eq!(adhoc.completion_time, from_matrix.completion_time);
    }

    #[test]
    fn worker_threads_are_clamped_by_job_count() {
        let suite = BenchmarkSuite::custom(vec![Benchmark::Dedup], 50, 1);
        let runner = ExperimentRunner::new(SystemConfig::small_test(), suite);

        // More threads than jobs: spawn one worker per job, never more.
        assert_eq!(runner.clone().with_threads(64).worker_threads(3), 3);
        // Fewer threads than jobs: the configured count wins.
        assert_eq!(runner.clone().with_threads(2).worker_threads(22), 2);
        // Degenerate inputs still spawn exactly one worker.
        assert_eq!(runner.clone().with_threads(8).worker_threads(0), 1);
        assert_eq!(runner.clone().with_threads(0).worker_threads(5), 1);

        // And an over-threaded runner still produces a correct matrix.
        let results = runner
            .with_threads(64)
            .run_matrix(&[SchemeId::StaticNuca, SchemeId::Rt(3)])
            .unwrap();
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn parallel_matrix_is_byte_identical_to_sequential() {
        // The work-stealing matrix must be a pure scheduling change: for
        // every scheme column of the paper's figures (ASR via its level
        // sweep), threads=1, an uneven thread count and more-threads-than-
        // jobs must all produce byte-identical reports.
        let suite = BenchmarkSuite::custom(vec![Benchmark::Barnes, Benchmark::Dedup], 120, 3);
        let runner = ExperimentRunner::new(SystemConfig::small_test(), suite);
        let sweep = ExperimentRunner::paper_sweep();

        let sequential = runner.clone().with_threads(1).run_matrix(&sweep).unwrap();
        for threads in [3, 64] {
            let parallel = runner
                .clone()
                .with_threads(threads)
                .run_matrix(&sweep)
                .unwrap();
            assert_eq!(
                format!("{sequential:?}"),
                format!("{parallel:?}"),
                "threads={threads} must not change any report"
            );
        }

        // Every SCHEME_ORDER column is present after the ASR collapse, and
        // the collapsed comparisons agree too.
        let cmp = SchemeComparison::from_results(
            runner.suite().benchmarks().to_vec(),
            sequential.clone(),
        );
        for scheme in SchemeComparison::SCHEME_ORDER {
            for benchmark in [Benchmark::Barnes, Benchmark::Dedup] {
                assert!(
                    cmp.report(benchmark, scheme).is_ok(),
                    "{scheme} missing from the sequential sweep"
                );
            }
        }
    }

    #[test]
    fn file_backed_replay_matches_the_in_memory_matrix() {
        let suite = BenchmarkSuite::custom(vec![Benchmark::Dedup, Benchmark::Barnes], 120, 5);
        let runner =
            ExperimentRunner::new(SystemConfig::small_test(), suite.clone()).with_threads(2);
        let schemes = [SchemeId::StaticNuca, SchemeId::Rt(3)];
        let in_memory = runner.run_matrix(&schemes).unwrap();

        let dir = std::env::temp_dir().join(format!("ladt-replay-test-{}", std::process::id()));
        let recorded =
            lad_traceio::suite::record_suite(&suite, SystemConfig::small_test().num_cores, &dir)
                .unwrap();
        let files: Vec<std::path::PathBuf> = recorded.iter().map(|r| r.path.clone()).collect();
        let replayed = runner.replay_file_matrix(&files, &schemes).unwrap();
        assert_eq!(replayed.len(), in_memory.len());
        for ((benchmark, scheme), report) in &in_memory {
            let from_file = &replayed[&(benchmark.label().to_string(), *scheme)];
            assert_eq!(format!("{report:?}"), format!("{from_file:?}"));
        }

        // Single-file replay agrees too, and unknown schemes fail fast even
        // for nonexistent paths.
        let single = runner.replay_file(&files[0], SchemeId::StaticNuca).unwrap();
        let key = (recorded[0].benchmark.clone(), SchemeId::StaticNuca);
        assert_eq!(format!("{single:?}"), format!("{:?}", replayed[&key]));
        assert!(matches!(
            runner.replay_file("/nonexistent.ladt", SchemeId::Custom("NOPE")),
            Err(ReplayError::UnknownScheme(_))
        ));
        assert!(matches!(
            runner.replay_file(dir.join("missing.ladt"), SchemeId::StaticNuca),
            Err(ReplayError::Trace(_))
        ));

        // Two files whose headers claim the same benchmark name must be an
        // error, not a silent overwrite of one file's reports.
        let duplicate = dir.join("dedup-copy.ladt");
        std::fs::copy(&files[0], &duplicate).unwrap();
        let mut with_dup = files.clone();
        with_dup.push(duplicate);
        assert!(matches!(
            runner.replay_file_matrix(&with_dup, &schemes),
            Err(ReplayError::DuplicateBenchmark { benchmark }) if benchmark == recorded[0].benchmark
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_matrix_fails_fast_on_unregistered_schemes() {
        let suite = BenchmarkSuite::custom(vec![Benchmark::Dedup], 100, 1);
        let runner = ExperimentRunner::new(SystemConfig::small_test(), suite);
        let err = runner
            .run_matrix(&[SchemeId::StaticNuca, SchemeId::Custom("NOPE")])
            .unwrap_err();
        assert_eq!(err.scheme, SchemeId::Custom("NOPE"));
        assert!(runner
            .run_scheme(Benchmark::Dedup, SchemeId::Custom("NOPE"))
            .is_err());
    }

    #[test]
    fn paper_sweep_contains_every_figure_column() {
        let sweep = ExperimentRunner::paper_sweep();
        assert_eq!(sweep.len(), 11);
        let registry = SchemeRegistry::builtin();
        for id in &sweep {
            assert!(
                registry.contains(*id),
                "{id} missing from the built-in registry"
            );
        }
    }

    #[test]
    fn comparison_json_roundtrips() {
        let mut results = BTreeMap::new();
        let benchmarks = vec![Benchmark::Barnes, Benchmark::Dedup];
        for b in &benchmarks {
            for (id, energy, time) in [
                (SchemeId::StaticNuca, 100.0, 1000),
                (SchemeId::AsrAt(25), 90.0, 950),
                (SchemeId::AsrAt(75), 85.0, 940),
                (SchemeId::Rt(3), 80.0, 900),
            ] {
                results.insert((*b, id), fake_report(b.label(), id, energy, time));
            }
        }
        let cmp = SchemeComparison::from_results(benchmarks, results);
        let json = cmp.to_json();
        let text = json.pretty();
        let reparsed = JsonValue::parse(&text).unwrap();
        assert_eq!(reparsed, json);
        let decoded = SchemeComparison::from_json(&reparsed).unwrap();
        assert_eq!(decoded.benchmarks(), cmp.benchmarks());
        assert_eq!(decoded.to_json(), json);
        assert!(
            (decoded
                .normalized_energy(Benchmark::Barnes, SchemeId::Rt(3), SchemeId::StaticNuca)
                .unwrap()
                - 0.8)
                .abs()
                < 1e-12
        );
        // The collapsed ASR column survived the round trip.
        assert_eq!(
            decoded
                .report(Benchmark::Dedup, SchemeId::Asr)
                .unwrap()
                .scheme_id,
            SchemeId::AsrAt(75)
        );
    }
}
