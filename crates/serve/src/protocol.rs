//! Wire protocol of the experiment service: newline-delimited JSON frames
//! over TCP, a typed [`ServeError`] tree with stable HTTP-style codes, and
//! the job/trace specifications clients submit.
//!
//! # Frame grammar
//!
//! Every request is exactly one line of JSON (an object carrying a `"verb"`
//! string plus verb-specific fields), every response exactly one line:
//!
//! ```text
//! request  := json-object "\n"          (must contain "verb": string)
//! response := ok-response | error-response
//! ok-response    := {"ok": true, ...verb-specific fields...} "\n"
//! error-response := {"ok": false,
//!                    "error": {"code": u16, "kind": string,
//!                              "message": string}} "\n"
//! ```
//!
//! The verbs are `upload`, `submit`, `status`, `result`, `cancel`, `stats`,
//! `health`, `metrics` and `shutdown` (see the README's protocol
//! specification for the
//! per-verb fields).  Error `code`s follow the familiar HTTP meanings
//! (`400` malformed input, `404` unknown resource, `409` not finished,
//! `410` cancelled, `429` queue full, `500` execution failure, `503`
//! shutting down); `kind` is a stable machine-readable discriminator.

use std::fmt;
use std::path::PathBuf;

use lad_common::json::JsonValue;
use lad_sim::experiment::ReplayError;

/// Version tag of the wire protocol, reported by the `stats` verb.
pub const PROTOCOL_VERSION: u32 = 1;

/// Everything that can go wrong serving a request, with a stable
/// HTTP-style [`ServeError::code`] and machine-readable
/// [`ServeError::kind`] for the wire.
#[derive(Debug)]
pub enum ServeError {
    /// The frame was not a JSON object with a `"verb"` string (or a field
    /// had the wrong JSON type).  Code 400.
    MalformedFrame(String),
    /// The verb is not part of the protocol.  Code 400.
    UnknownVerb(String),
    /// The frame parsed but a verb-specific field is missing or invalid.
    /// Code 400.
    BadRequest(String),
    /// No job with that id (it may have been submitted to another server
    /// instance).  Code 404.
    UnknownJob(String),
    /// No uploaded trace with that digest in the server's trace store.
    /// Code 404.
    UnknownTrace(String),
    /// The builtin benchmark label is not in [`lad_trace`]'s suite.
    /// Code 404.
    UnknownBenchmark(String),
    /// The cell queue is at capacity; resubmit later.  Code 429.
    QueueFull {
        /// The configured queue capacity that was hit.
        limit: usize,
    },
    /// `result` was asked for a job that still has queued or running
    /// cells.  Code 409.
    NotFinished {
        /// The job being polled.
        job: String,
        /// How many of its cells are still queued or running.
        remaining: usize,
    },
    /// `result` was asked for a job with cancelled cells.  Code 410.
    JobCancelled {
        /// The cancelled job.
        job: String,
    },
    /// A cell of the job failed to execute (trace decode error, worker
    /// panic, ...).  Code 500.
    JobFailed {
        /// The failed job.
        job: String,
        /// The first cell's failure message.
        message: String,
    },
    /// The server is draining and accepts no new work.  Code 503.
    ShuttingDown,
    /// A replay-layer failure surfaced verbatim (unknown scheme, trace
    /// decode error, ...).  Code 500.
    Replay(ReplayError),
    /// A server-side I/O failure (spill directory, socket, ...).
    /// Code 500.
    Io(std::io::Error),
}

impl ServeError {
    /// The HTTP-style status code of this error.
    pub fn code(&self) -> u16 {
        match self {
            ServeError::MalformedFrame(_)
            | ServeError::UnknownVerb(_)
            | ServeError::BadRequest(_) => 400,
            ServeError::UnknownJob(_)
            | ServeError::UnknownTrace(_)
            | ServeError::UnknownBenchmark(_) => 404,
            ServeError::NotFinished { .. } => 409,
            ServeError::JobCancelled { .. } => 410,
            ServeError::QueueFull { .. } => 429,
            ServeError::JobFailed { .. } | ServeError::Replay(_) | ServeError::Io(_) => 500,
            ServeError::ShuttingDown => 503,
        }
    }

    /// The stable machine-readable discriminator of this error.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::MalformedFrame(_) => "malformed_frame",
            ServeError::UnknownVerb(_) => "unknown_verb",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::UnknownJob(_) => "unknown_job",
            ServeError::UnknownTrace(_) => "unknown_trace",
            ServeError::UnknownBenchmark(_) => "unknown_benchmark",
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::NotFinished { .. } => "not_finished",
            ServeError::JobCancelled { .. } => "job_cancelled",
            ServeError::JobFailed { .. } => "job_failed",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Replay(_) => "replay",
            ServeError::Io(_) => "io",
        }
    }

    /// The one-line error frame for this error.
    pub fn to_response(&self) -> JsonValue {
        JsonValue::object([
            ("ok", JsonValue::from(false)),
            (
                "error",
                JsonValue::object([
                    ("code", JsonValue::from(u64::from(self.code()))),
                    ("kind", JsonValue::from(self.kind())),
                    ("message", JsonValue::from(self.to_string())),
                ]),
            ),
        ])
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::MalformedFrame(detail) => write!(f, "malformed frame: {detail}"),
            ServeError::UnknownVerb(verb) => write!(f, "unknown verb {verb:?}"),
            ServeError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            ServeError::UnknownJob(job) => write!(f, "unknown job {job:?}"),
            ServeError::UnknownTrace(digest) => {
                write!(f, "no uploaded trace with digest {digest}")
            }
            ServeError::UnknownBenchmark(label) => {
                write!(f, "unknown builtin benchmark {label:?}")
            }
            ServeError::QueueFull { limit } => {
                write!(f, "cell queue is full ({limit} cells); resubmit later")
            }
            ServeError::NotFinished { job, remaining } => write!(
                f,
                "job {job} still has {remaining} cell(s) queued or running"
            ),
            ServeError::JobCancelled { job } => write!(f, "job {job} was cancelled"),
            ServeError::JobFailed { job, message } => {
                write!(f, "job {job} failed: {message}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Replay(err) => write!(f, "{err}"),
            ServeError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Replay(err) => Some(err),
            ServeError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ReplayError> for ServeError {
    fn from(err: ReplayError) -> Self {
        ServeError::Replay(err)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> Self {
        ServeError::Io(err)
    }
}

/// The workload a job runs: a server-local trace file, a previously
/// uploaded trace addressed by content digest, or a builtin synthetic
/// generator profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSpec {
    /// A `.ladt` file on the server's filesystem.
    File {
        /// Path of the trace file (as the server sees it).
        path: PathBuf,
    },
    /// A trace previously sent with the `upload` verb, addressed by its
    /// 16-hex-digit content digest.
    Stored {
        /// The content digest naming the stored trace.
        digest: String,
    },
    /// A deterministic synthetic workload from the builtin generator.
    Builtin {
        /// Benchmark label (e.g. `"BARNES"`).
        benchmark: String,
        /// Number of cores the trace spans.
        cores: usize,
        /// Accesses generated per core (approximately; the generator
        /// rounds per its profile).
        accesses_per_core: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl TraceSpec {
    /// The JSON form carried inside `submit` frames.
    pub fn to_json(&self) -> JsonValue {
        match self {
            TraceSpec::File { path } => JsonValue::object([
                ("kind", JsonValue::from("file")),
                ("path", JsonValue::from(path.display().to_string())),
            ]),
            TraceSpec::Stored { digest } => JsonValue::object([
                ("kind", JsonValue::from("stored")),
                ("digest", JsonValue::from(digest.as_str())),
            ]),
            TraceSpec::Builtin {
                benchmark,
                cores,
                accesses_per_core,
                seed,
            } => JsonValue::object([
                ("kind", JsonValue::from("builtin")),
                ("benchmark", JsonValue::from(benchmark.as_str())),
                ("cores", JsonValue::from(*cores as u64)),
                (
                    "accesses_per_core",
                    JsonValue::from(*accesses_per_core as u64),
                ),
                ("seed", JsonValue::from(*seed)),
            ]),
        }
    }

    /// Parses the JSON form back into a spec.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] naming the missing or ill-typed field.
    pub fn from_json(value: &JsonValue) -> Result<TraceSpec, ServeError> {
        let kind = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("trace spec needs a \"kind\" string"))?;
        match kind {
            "file" => {
                let path = value
                    .get("path")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("file trace spec needs a \"path\" string"))?;
                Ok(TraceSpec::File {
                    path: PathBuf::from(path),
                })
            }
            "stored" => {
                let digest = value
                    .get("digest")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("stored trace spec needs a \"digest\" string"))?;
                Ok(TraceSpec::Stored {
                    digest: digest.to_string(),
                })
            }
            "builtin" => {
                let benchmark = value
                    .get("benchmark")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("builtin trace spec needs a \"benchmark\" string"))?;
                let cores = value
                    .get("cores")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("builtin trace spec needs a \"cores\" count"))?;
                let accesses = value
                    .get("accesses_per_core")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("builtin trace spec needs \"accesses_per_core\""))?;
                let seed = value.get("seed").and_then(JsonValue::as_u64).unwrap_or(0);
                if cores == 0 || accesses == 0 {
                    return Err(bad("builtin trace spec needs non-zero cores and accesses"));
                }
                Ok(TraceSpec::Builtin {
                    benchmark: benchmark.to_string(),
                    cores: cores as usize,
                    accesses_per_core: accesses as usize,
                    seed,
                })
            }
            other => Err(bad(&format!(
                "trace spec kind must be \"file\", \"stored\" or \"builtin\", got {other:?}"
            ))),
        }
    }
}

/// The base [`lad_common::config::SystemConfig`] a job's cells run under
/// (its core count is always adjusted to the trace's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemPreset {
    /// [`SystemConfig::paper_default`](lad_common::config::SystemConfig::paper_default).
    Paper,
    /// [`SystemConfig::small_test`](lad_common::config::SystemConfig::small_test).
    SmallTest,
}

impl SystemPreset {
    /// The wire name of the preset.
    pub fn label(self) -> &'static str {
        match self {
            SystemPreset::Paper => "paper",
            SystemPreset::SmallTest => "small-test",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for unknown presets.
    pub fn parse(label: &str) -> Result<SystemPreset, ServeError> {
        match label {
            "paper" => Ok(SystemPreset::Paper),
            "small-test" => Ok(SystemPreset::SmallTest),
            other => Err(bad(&format!(
                "system preset must be \"paper\" or \"small-test\", got {other:?}"
            ))),
        }
    }

    /// The base configuration of this preset (before the core-count
    /// adjustment to the trace).
    pub fn config(self) -> lad_common::config::SystemConfig {
        match self {
            SystemPreset::Paper => lad_common::config::SystemConfig::paper_default(),
            SystemPreset::SmallTest => lad_common::config::SystemConfig::small_test(),
        }
    }
}

/// A client's `submit` payload: one workload × a list of schemes, run
/// under a system preset.  The server decomposes it into one cell per
/// scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The workload every cell replays.
    pub trace: TraceSpec,
    /// The scheme labels of the matrix row (each becomes one cell).
    pub schemes: Vec<String>,
    /// The base system configuration preset.
    pub system: SystemPreset,
}

impl JobSpec {
    /// The JSON form carried inside `submit` frames (under `"job"`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("trace", self.trace.to_json()),
            (
                "schemes",
                JsonValue::Array(
                    self.schemes
                        .iter()
                        .map(|s| JsonValue::from(s.as_str()))
                        .collect(),
                ),
            ),
            ("system", JsonValue::from(self.system.label())),
        ])
    }

    /// Parses the JSON form back into a spec.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] naming the missing or ill-typed field,
    /// including duplicate scheme labels (each cell must be unique).
    pub fn from_json(value: &JsonValue) -> Result<JobSpec, ServeError> {
        let trace = TraceSpec::from_json(
            value
                .get("trace")
                .ok_or_else(|| bad("job needs a \"trace\" spec"))?,
        )?;
        let schemes_json = value
            .get("schemes")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("job needs a \"schemes\" array"))?;
        if schemes_json.is_empty() {
            return Err(bad("job needs at least one scheme"));
        }
        let mut schemes = Vec::with_capacity(schemes_json.len());
        for scheme in schemes_json {
            let label = scheme
                .as_str()
                .ok_or_else(|| bad("scheme labels must be strings"))?;
            if schemes.iter().any(|s: &String| s == label) {
                return Err(bad(&format!("scheme {label:?} listed twice")));
            }
            schemes.push(label.to_string());
        }
        let system = match value.get("system").and_then(JsonValue::as_str) {
            Some(label) => SystemPreset::parse(label)?,
            None => SystemPreset::Paper,
        };
        Ok(JobSpec {
            trace,
            schemes,
            system,
        })
    }
}

fn bad(message: &str) -> ServeError {
    ServeError::BadRequest(message.to_string())
}

/// FNV-1a 64 over a byte string — the configuration fingerprint half of
/// the result-cache key (the trace half is the
/// [`lad_traceio::TraceDigest`] content digest).
pub fn fingerprint(text: &str) -> u64 {
    const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET_BASIS;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The canonical 16-hex-digit rendering of a fingerprint word.
pub fn fingerprint_hex(value: u64) -> String {
    format!("{value:016x}")
}

/// Encodes bytes as lowercase hex — the `upload` verb's dependency-free
/// body encoding (the workspace has no base64 codec).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// Decodes a lowercase/uppercase hex string back into bytes.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on odd length or non-hex characters.
pub fn hex_decode(text: &str) -> Result<Vec<u8>, ServeError> {
    if !text.len().is_multiple_of(2) {
        return Err(bad("hex body must have an even number of digits"));
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = hex_digit(pair[0]).ok_or_else(|| bad("hex body has a non-hex character"))?;
        let lo = hex_digit(pair[1]).ok_or_else(|| bad("hex body has a non-hex character"))?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn hex_digit(byte: u8) -> Option<u8> {
    match byte {
        b'0'..=b'9' => Some(byte - b'0'),
        b'a'..=b'f' => Some(byte - b'a' + 10),
        b'A'..=b'F' => Some(byte - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time exhaustiveness guard for
    /// [`error_codes_and_kinds_are_stable`]: adding a [`ServeError`]
    /// variant fails this wildcard-free match until the variant is listed
    /// here — and the paired assertion on the golden table's length fails
    /// until the new variant's `(code, kind)` row is added there too.
    fn exhaustiveness_guard(err: &ServeError) -> usize {
        match err {
            ServeError::MalformedFrame(_) => 0,
            ServeError::UnknownVerb(_) => 1,
            ServeError::BadRequest(_) => 2,
            ServeError::UnknownJob(_) => 3,
            ServeError::UnknownTrace(_) => 4,
            ServeError::UnknownBenchmark(_) => 5,
            ServeError::QueueFull { .. } => 6,
            ServeError::NotFinished { .. } => 7,
            ServeError::JobCancelled { .. } => 8,
            ServeError::JobFailed { .. } => 9,
            ServeError::ShuttingDown => 10,
            ServeError::Replay(_) => 11,
            ServeError::Io(_) => 12,
        }
    }

    #[test]
    fn error_codes_and_kinds_are_stable() {
        const VARIANTS: usize = 13;
        let cases: Vec<(ServeError, u16, &str)> = vec![
            (
                ServeError::MalformedFrame("x".into()),
                400,
                "malformed_frame",
            ),
            (ServeError::UnknownVerb("zap".into()), 400, "unknown_verb"),
            (ServeError::BadRequest("x".into()), 400, "bad_request"),
            (ServeError::UnknownJob("job-9".into()), 404, "unknown_job"),
            (ServeError::UnknownTrace("ff".into()), 404, "unknown_trace"),
            (
                ServeError::UnknownBenchmark("NOPE".into()),
                404,
                "unknown_benchmark",
            ),
            (ServeError::QueueFull { limit: 4 }, 429, "queue_full"),
            (
                ServeError::NotFinished {
                    job: "job-1".into(),
                    remaining: 2,
                },
                409,
                "not_finished",
            ),
            (
                ServeError::JobCancelled {
                    job: "job-1".into(),
                },
                410,
                "job_cancelled",
            ),
            (
                ServeError::JobFailed {
                    job: "job-1".into(),
                    message: "boom".into(),
                },
                500,
                "job_failed",
            ),
            (ServeError::ShuttingDown, 503, "shutting_down"),
            (
                ServeError::Replay(ReplayError::DuplicateBenchmark {
                    benchmark: "BARNES".into(),
                }),
                500,
                "replay",
            ),
            (ServeError::Io(std::io::Error::other("x")), 500, "io"),
        ];
        // Golden table covers every variant exactly once: the guard's
        // wildcard-free match makes a new variant a compile error, and
        // these assertions make it a test failure until a row is added.
        assert_eq!(cases.len(), VARIANTS);
        let mut seen = [false; VARIANTS];
        for (err, _, _) in &cases {
            let index = exhaustiveness_guard(err);
            assert!(!seen[index], "variant listed twice: {err}");
            seen[index] = true;
        }
        assert!(seen.iter().all(|covered| *covered));
        for (err, code, kind) in cases {
            assert_eq!(err.code(), code, "{err}");
            assert_eq!(err.kind(), kind, "{err}");
            let frame = err.to_response();
            assert_eq!(frame.get("ok").and_then(JsonValue::as_bool), Some(false));
            let error = frame.get("error").unwrap();
            assert_eq!(
                error.get("code").and_then(JsonValue::as_u64),
                Some(u64::from(code))
            );
            assert_eq!(error.get("kind").and_then(JsonValue::as_str), Some(kind));
            assert!(error.get("message").and_then(JsonValue::as_str).is_some());
            // The frame survives the strict parser (it is what goes on the
            // wire).
            let line = frame.to_string();
            assert_eq!(JsonValue::parse(&line).unwrap(), frame);
        }
    }

    #[test]
    fn job_spec_roundtrips_through_json() {
        let specs = vec![
            JobSpec {
                trace: TraceSpec::File {
                    path: PathBuf::from("/tmp/barnes.ladt"),
                },
                schemes: vec!["S-NUCA".into(), "RT-3".into()],
                system: SystemPreset::SmallTest,
            },
            JobSpec {
                trace: TraceSpec::Stored {
                    digest: "00ff00ff00ff00ff".into(),
                },
                schemes: vec!["ASR-0.50".into()],
                system: SystemPreset::Paper,
            },
            JobSpec {
                trace: TraceSpec::Builtin {
                    benchmark: "BARNES".into(),
                    cores: 16,
                    accesses_per_core: 400,
                    seed: 7,
                },
                schemes: vec!["RT-3".into()],
                system: SystemPreset::SmallTest,
            },
        ];
        for spec in specs {
            let json = spec.to_json();
            let line = json.to_string();
            let reparsed = JsonValue::parse(&line).unwrap();
            assert_eq!(JobSpec::from_json(&reparsed).unwrap(), spec);
        }
    }

    #[test]
    fn job_spec_rejects_malformed_fields() {
        let reject = |text: &str, needle: &str| {
            let err = JobSpec::from_json(&JsonValue::parse(text).unwrap()).unwrap_err();
            assert!(matches!(err, ServeError::BadRequest(_)), "{text}");
            assert!(err.to_string().contains(needle), "{err} !~ {needle}");
        };
        reject("{}", "trace");
        reject(r#"{"trace": {"kind": "warp"}}"#, "kind");
        reject(r#"{"trace": {"kind": "file"}}"#, "path");
        reject(r#"{"trace": {"kind": "stored"}}"#, "digest");
        reject(
            r#"{"trace": {"kind": "builtin", "benchmark": "BARNES", "cores": 0,
                "accesses_per_core": 10}}"#,
            "non-zero",
        );
        reject(r#"{"trace": {"kind": "file", "path": "x"}}"#, "schemes");
        reject(
            r#"{"trace": {"kind": "file", "path": "x"}, "schemes": []}"#,
            "at least one scheme",
        );
        reject(
            r#"{"trace": {"kind": "file", "path": "x"},
                "schemes": ["RT-3", "RT-3"]}"#,
            "twice",
        );
        reject(
            r#"{"trace": {"kind": "file", "path": "x"}, "schemes": ["RT-3"],
                "system": "huge"}"#,
            "preset",
        );
    }

    #[test]
    fn hex_codec_roundtrips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        let text = hex_encode(&bytes);
        assert_eq!(hex_decode(&text).unwrap(), bytes);
        assert_eq!(hex_decode(&text.to_uppercase()).unwrap(), bytes);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fingerprint_is_stable_and_separates_configs() {
        // The cache spill directory depends on fingerprint stability across
        // server restarts, so pin a known vector (FNV-1a 64 of "a").
        assert_eq!(fingerprint("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fingerprint("cores=16"), fingerprint("cores=64"));
        assert_eq!(fingerprint_hex(0xaf), "00000000000000af");
    }
}
