//! `lad-client` — CLI for the `lad-serve` experiment service.
//!
//! ```text
//! lad-client --addr HOST:PORT upload <FILE.ladt>
//! lad-client --addr HOST:PORT submit
//!            (--trace <FILE.ladt> | --stored <DIGEST> |
//!             --builtin <BENCH> --cores N --accesses N [--seed N])
//!            --scheme <S> [--scheme <S> ...] [--system paper|small-test]
//!            [--wait] [--json <PATH>]
//! lad-client --addr HOST:PORT status <JOB>
//! lad-client --addr HOST:PORT result <JOB> [--json <PATH>]
//! lad-client --addr HOST:PORT wait <JOB> [--json <PATH>]
//! lad-client --addr HOST:PORT cancel <JOB>
//! lad-client --addr HOST:PORT stats
//! lad-client --addr HOST:PORT health
//! lad-client --addr HOST:PORT shutdown
//! ```
//!
//! Every command prints the server's response frame pretty-printed;
//! `--json <PATH>` additionally writes it to a file.  Exit status is
//! non-zero on any server error frame.  `--retries N` bounds the client's
//! reconnect-and-resend policy (exponential backoff with deterministic
//! jitter; every verb is idempotent, so resending is safe — see
//! [`lad_serve::client`]).

use std::process::ExitCode;
use std::time::Duration;

use lad_common::json::JsonValue;
use lad_serve::client::{Client, RetryPolicy};
use lad_serve::protocol::{JobSpec, SystemPreset, TraceSpec};

const USAGE: &str = "\
lad-client: CLI for the lad-serve experiment service

USAGE:
  lad-client --addr HOST:PORT upload <FILE.ladt>
  lad-client --addr HOST:PORT submit
             (--trace <FILE.ladt> | --stored <DIGEST> |
              --builtin <BENCH> --cores N --accesses N [--seed N])
             --scheme <S> [--scheme <S> ...] [--system paper|small-test]
             [--wait] [--json <PATH>]
  lad-client --addr HOST:PORT status <JOB>
  lad-client --addr HOST:PORT result <JOB> [--json <PATH>]
  lad-client --addr HOST:PORT wait <JOB> [--json <PATH>]
  lad-client --addr HOST:PORT cancel <JOB>
  lad-client --addr HOST:PORT stats
  lad-client --addr HOST:PORT health
  lad-client --addr HOST:PORT shutdown

All commands accept `--retries N` (default 4): on a dropped connection
the client reconnects and resends with exponential backoff; every verb
is idempotent so a resend never double-executes work.

Schemes are the registry labels: S-NUCA, R-NUCA, VR, ASR-<level>, RT-<k>.
`upload` sends a local trace to the server's store and prints its digest
for use with `submit --stored`.";

/// How often `wait` (and `submit --wait`) polls the job status.
const POLL: Duration = Duration::from_millis(100);

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&mut args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("lad-client: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag value` out of `args`, removing both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(index) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if index + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let value = args.remove(index + 1);
    args.remove(index);
    Ok(Some(value))
}

/// Pulls a bare `--flag` out of `args`, reporting whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(index) => {
            args.remove(index);
            true
        }
        None => false,
    }
}

fn parse_number<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{what} must be a number, got {value:?}"))
}

fn no_leftovers(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(extra) => Err(format!("unexpected argument {extra:?}\n\n{USAGE}")),
        None => Ok(()),
    }
}

/// Prints a response frame and optionally writes it to `--json <PATH>`.
fn emit(response: &JsonValue, json_path: Option<&str>) -> Result<(), String> {
    println!("{}", response.pretty());
    if let Some(path) = json_path {
        lad_common::fs::atomic_write(std::path::Path::new(path), response.pretty().as_bytes())
            .map_err(|err| format!("cannot write {path}: {err}"))?;
    }
    Ok(())
}

fn run(args: &mut Vec<String>) -> Result<(), String> {
    let addr = take_flag(args, "--addr")?.ok_or(format!("--addr is required\n\n{USAGE}"))?;
    let mut policy = RetryPolicy::standard();
    if let Some(value) = take_flag(args, "--retries")? {
        policy.attempts = parse_number(&value, "--retries")?;
    }
    if args.is_empty() {
        return Err(format!("missing command\n\n{USAGE}"));
    }
    let command = args.remove(0);
    let mut client = Client::connect_with(&addr, policy)
        .map_err(|err| format!("cannot connect to {addr}: {err}"))?;
    match command.as_str() {
        "upload" => cmd_upload(&mut client, args),
        "submit" => cmd_submit(&mut client, args),
        "status" => cmd_job_verb(args, |job| client.status(job)),
        "result" => cmd_job_verb_json(args, |job| client.result(job)),
        "wait" => cmd_job_verb_json(args, |job| client.wait(job, POLL)),
        "cancel" => cmd_job_verb(args, |job| client.cancel(job)),
        "stats" => {
            no_leftovers(args)?;
            emit(&client.stats().map_err(|err| err.to_string())?, None)
        }
        "health" => {
            no_leftovers(args)?;
            emit(&client.health().map_err(|err| err.to_string())?, None)
        }
        "shutdown" => {
            no_leftovers(args)?;
            emit(&client.shutdown().map_err(|err| err.to_string())?, None)
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn cmd_upload(client: &mut Client, args: &mut Vec<String>) -> Result<(), String> {
    if args.len() != 1 {
        return Err(format!("upload takes exactly one <FILE.ladt>\n\n{USAGE}"));
    }
    let path = args.remove(0);
    let bytes = std::fs::read(&path).map_err(|err| format!("cannot read {path}: {err}"))?;
    emit(&client.upload(&bytes).map_err(|err| err.to_string())?, None)
}

fn cmd_submit(client: &mut Client, args: &mut Vec<String>) -> Result<(), String> {
    let trace = trace_spec(args)?;
    let mut schemes = Vec::new();
    while let Some(scheme) = take_flag(args, "--scheme")? {
        schemes.push(scheme);
    }
    if schemes.is_empty() {
        return Err(format!("submit needs at least one --scheme\n\n{USAGE}"));
    }
    let system = match take_flag(args, "--system")? {
        Some(label) => SystemPreset::parse(&label).map_err(|err| err.to_string())?,
        None => SystemPreset::Paper,
    };
    let wait = take_switch(args, "--wait");
    let json_path = take_flag(args, "--json")?;
    no_leftovers(args)?;

    let spec = JobSpec {
        trace,
        schemes,
        system,
    };
    let receipt = client.submit(&spec).map_err(|err| err.to_string())?;
    let job = receipt
        .get("job")
        .and_then(JsonValue::as_str)
        .ok_or("submit response is missing the job id")?
        .to_string();
    if wait {
        emit(
            &client.wait(&job, POLL).map_err(|err| err.to_string())?,
            json_path.as_deref(),
        )
    } else {
        emit(&receipt, json_path.as_deref())
    }
}

fn trace_spec(args: &mut Vec<String>) -> Result<TraceSpec, String> {
    let file = take_flag(args, "--trace")?;
    let stored = take_flag(args, "--stored")?;
    let builtin = take_flag(args, "--builtin")?;
    match (file, stored, builtin) {
        (Some(path), None, None) => Ok(TraceSpec::File { path: path.into() }),
        (None, Some(digest), None) => Ok(TraceSpec::Stored { digest }),
        (None, None, Some(benchmark)) => {
            let cores = take_flag(args, "--cores")?
                .ok_or("--builtin requires --cores")
                .and_then(|v| parse_number(&v, "--cores").map_err(|_| "--cores must be a number"))
                .map_err(str::to_string)?;
            let accesses = take_flag(args, "--accesses")?
                .ok_or("--builtin requires --accesses".to_string())
                .and_then(|v| parse_number(&v, "--accesses"))?;
            let seed = match take_flag(args, "--seed")? {
                Some(v) => parse_number(&v, "--seed")?,
                None => 0,
            };
            Ok(TraceSpec::Builtin {
                benchmark,
                cores,
                accesses_per_core: accesses,
                seed,
            })
        }
        _ => Err(format!(
            "submit needs exactly one of --trace, --stored or --builtin\n\n{USAGE}"
        )),
    }
}

fn cmd_job_verb(
    args: &mut Vec<String>,
    call: impl FnOnce(&str) -> Result<JsonValue, lad_serve::client::ClientError>,
) -> Result<(), String> {
    if args.len() != 1 {
        return Err(format!("this command takes exactly one <JOB>\n\n{USAGE}"));
    }
    let job = args.remove(0);
    emit(&call(&job).map_err(|err| err.to_string())?, None)
}

fn cmd_job_verb_json(
    args: &mut Vec<String>,
    call: impl FnOnce(&str) -> Result<JsonValue, lad_serve::client::ClientError>,
) -> Result<(), String> {
    let json_path = take_flag(args, "--json")?;
    if args.len() != 1 {
        return Err(format!("this command takes exactly one <JOB>\n\n{USAGE}"));
    }
    let job = args.remove(0);
    emit(
        &call(&job).map_err(|err| err.to_string())?,
        json_path.as_deref(),
    )
}
