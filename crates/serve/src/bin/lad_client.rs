//! `lad-client` — CLI for the `lad-serve` experiment service.
//!
//! ```text
//! lad-client --addr HOST:PORT upload <FILE.ladt>
//! lad-client --addr HOST:PORT submit
//!            (--trace <FILE.ladt> | --stored <DIGEST> |
//!             --builtin <BENCH> --cores N --accesses N [--seed N])
//!            --scheme <S> [--scheme <S> ...] [--system paper|small-test]
//!            [--wait] [--json <PATH>]
//! lad-client --addr HOST:PORT status <JOB>
//! lad-client --addr HOST:PORT result <JOB> [--json <PATH>]
//! lad-client --addr HOST:PORT wait <JOB> [--json <PATH>]
//! lad-client --addr HOST:PORT cancel <JOB>
//! lad-client --addr HOST:PORT stats
//! lad-client --addr HOST:PORT health
//! lad-client --addr HOST:PORT metrics [--prometheus] [--json <PATH>]
//! lad-client --addr HOST:PORT watch [--interval MS] [--count N]
//! lad-client --addr HOST:PORT shutdown
//! ```
//!
//! Every command prints the server's response frame pretty-printed;
//! `--json <PATH>` additionally writes it to a file.  Exit status is
//! non-zero on any server error frame.  `--retries N` bounds the client's
//! reconnect-and-resend policy (exponential backoff with deterministic
//! jitter; every verb is idempotent, so resending is safe — see
//! [`lad_serve::client`]).
//!
//! `stats` leads with a human-readable summary (queue, cache mode, reaped
//! connections) before the raw JSON; `metrics` fetches one observability
//! snapshot (`--prometheus` prints the text exposition alone, for
//! scraping); `watch` polls `stats` + `metrics` and redraws a one-screen
//! live view (jobs in flight, queue depth, cache hit rate, p50/p99 verb
//! latency, injected-fault counts).

use std::process::ExitCode;
use std::time::Duration;

use lad_common::json::JsonValue;
use lad_serve::client::{Client, RetryPolicy};
use lad_serve::protocol::{JobSpec, SystemPreset, TraceSpec};

const USAGE: &str = "\
lad-client: CLI for the lad-serve experiment service

USAGE:
  lad-client --addr HOST:PORT upload <FILE.ladt>
  lad-client --addr HOST:PORT submit
             (--trace <FILE.ladt> | --stored <DIGEST> |
              --builtin <BENCH> --cores N --accesses N [--seed N])
             --scheme <S> [--scheme <S> ...] [--system paper|small-test]
             [--wait] [--json <PATH>]
  lad-client --addr HOST:PORT status <JOB>
  lad-client --addr HOST:PORT result <JOB> [--json <PATH>]
  lad-client --addr HOST:PORT wait <JOB> [--json <PATH>]
  lad-client --addr HOST:PORT cancel <JOB>
  lad-client --addr HOST:PORT stats
  lad-client --addr HOST:PORT health
  lad-client --addr HOST:PORT metrics [--prometheus] [--json <PATH>]
  lad-client --addr HOST:PORT watch [--interval MS] [--count N]
  lad-client --addr HOST:PORT shutdown

All commands accept `--retries N` (default 4): on a dropped connection
the client reconnects and resends with exponential backoff; every verb
is idempotent so a resend never double-executes work.

`metrics` fetches one observability snapshot; `--prometheus` prints only
the text exposition (for scraping).  `watch` redraws a live one-screen
view every `--interval` ms (default 1000) until interrupted, or exactly
`--count` times.

Schemes are the registry labels: S-NUCA, R-NUCA, VR, ASR-<level>, RT-<k>.
`upload` sends a local trace to the server's store and prints its digest
for use with `submit --stored`.";

/// How often `wait` (and `submit --wait`) polls the job status.
const POLL: Duration = Duration::from_millis(100);

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&mut args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("lad-client: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag value` out of `args`, removing both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(index) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if index + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let value = args.remove(index + 1);
    args.remove(index);
    Ok(Some(value))
}

/// Pulls a bare `--flag` out of `args`, reporting whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(index) => {
            args.remove(index);
            true
        }
        None => false,
    }
}

fn parse_number<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{what} must be a number, got {value:?}"))
}

fn no_leftovers(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(extra) => Err(format!("unexpected argument {extra:?}\n\n{USAGE}")),
        None => Ok(()),
    }
}

/// Writes to stdout, exiting quietly when the consumer closed the pipe
/// early — `lad-client ... | head` or `| grep -q` must not panic or fail
/// the pipeline.  Any other stdout error is a real, reportable failure.
fn print_stdout(text: &str) {
    use std::io::Write as _;
    let mut stdout = std::io::stdout().lock();
    let result = stdout
        .write_all(text.as_bytes())
        .and_then(|()| stdout.flush());
    if let Err(err) = result {
        if err.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("lad-client: cannot write to stdout: {err}");
        std::process::exit(1);
    }
}

/// Prints a response frame and optionally writes it to `--json <PATH>`.
fn emit(response: &JsonValue, json_path: Option<&str>) -> Result<(), String> {
    print_stdout(&format!("{}\n", response.pretty()));
    if let Some(path) = json_path {
        lad_common::fs::atomic_write(std::path::Path::new(path), response.pretty().as_bytes())
            .map_err(|err| format!("cannot write {path}: {err}"))?;
    }
    Ok(())
}

fn run(args: &mut Vec<String>) -> Result<(), String> {
    let addr = take_flag(args, "--addr")?.ok_or(format!("--addr is required\n\n{USAGE}"))?;
    let mut policy = RetryPolicy::standard();
    if let Some(value) = take_flag(args, "--retries")? {
        policy.attempts = parse_number(&value, "--retries")?;
    }
    if args.is_empty() {
        return Err(format!("missing command\n\n{USAGE}"));
    }
    let command = args.remove(0);
    let mut client = Client::connect_with(&addr, policy)
        .map_err(|err| format!("cannot connect to {addr}: {err}"))?;
    match command.as_str() {
        "upload" => cmd_upload(&mut client, args),
        "submit" => cmd_submit(&mut client, args),
        "status" => cmd_job_verb(args, |job| client.status(job)),
        "result" => cmd_job_verb_json(args, |job| client.result(job)),
        "wait" => cmd_job_verb_json(args, |job| client.wait(job, POLL)),
        "cancel" => cmd_job_verb(args, |job| client.cancel(job)),
        "stats" => cmd_stats(&mut client, args),
        "health" => {
            no_leftovers(args)?;
            emit(&client.health().map_err(|err| err.to_string())?, None)
        }
        "metrics" => cmd_metrics(&mut client, args),
        "watch" => cmd_watch(&addr, &mut client, args),
        "shutdown" => {
            no_leftovers(args)?;
            emit(&client.shutdown().map_err(|err| err.to_string())?, None)
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn cmd_upload(client: &mut Client, args: &mut Vec<String>) -> Result<(), String> {
    if args.len() != 1 {
        return Err(format!("upload takes exactly one <FILE.ladt>\n\n{USAGE}"));
    }
    let path = args.remove(0);
    let bytes = std::fs::read(&path).map_err(|err| format!("cannot read {path}: {err}"))?;
    emit(&client.upload(&bytes).map_err(|err| err.to_string())?, None)
}

fn cmd_submit(client: &mut Client, args: &mut Vec<String>) -> Result<(), String> {
    let trace = trace_spec(args)?;
    let mut schemes = Vec::new();
    while let Some(scheme) = take_flag(args, "--scheme")? {
        schemes.push(scheme);
    }
    if schemes.is_empty() {
        return Err(format!("submit needs at least one --scheme\n\n{USAGE}"));
    }
    let system = match take_flag(args, "--system")? {
        Some(label) => SystemPreset::parse(&label).map_err(|err| err.to_string())?,
        None => SystemPreset::Paper,
    };
    let wait = take_switch(args, "--wait");
    let json_path = take_flag(args, "--json")?;
    no_leftovers(args)?;

    let spec = JobSpec {
        trace,
        schemes,
        system,
    };
    let receipt = client.submit(&spec).map_err(|err| err.to_string())?;
    let job = receipt
        .get("job")
        .and_then(JsonValue::as_str)
        .ok_or("submit response is missing the job id")?
        .to_string();
    if wait {
        emit(
            &client.wait(&job, POLL).map_err(|err| err.to_string())?,
            json_path.as_deref(),
        )
    } else {
        emit(&receipt, json_path.as_deref())
    }
}

fn trace_spec(args: &mut Vec<String>) -> Result<TraceSpec, String> {
    let file = take_flag(args, "--trace")?;
    let stored = take_flag(args, "--stored")?;
    let builtin = take_flag(args, "--builtin")?;
    match (file, stored, builtin) {
        (Some(path), None, None) => Ok(TraceSpec::File { path: path.into() }),
        (None, Some(digest), None) => Ok(TraceSpec::Stored { digest }),
        (None, None, Some(benchmark)) => {
            let cores = take_flag(args, "--cores")?
                .ok_or("--builtin requires --cores")
                .and_then(|v| parse_number(&v, "--cores").map_err(|_| "--cores must be a number"))
                .map_err(str::to_string)?;
            let accesses = take_flag(args, "--accesses")?
                .ok_or("--builtin requires --accesses".to_string())
                .and_then(|v| parse_number(&v, "--accesses"))?;
            let seed = match take_flag(args, "--seed")? {
                Some(v) => parse_number(&v, "--seed")?,
                None => 0,
            };
            Ok(TraceSpec::Builtin {
                benchmark,
                cores,
                accesses_per_core: accesses,
                seed,
            })
        }
        _ => Err(format!(
            "submit needs exactly one of --trace, --stored or --builtin\n\n{USAGE}"
        )),
    }
}

fn cmd_job_verb(
    args: &mut Vec<String>,
    call: impl FnOnce(&str) -> Result<JsonValue, lad_serve::client::ClientError>,
) -> Result<(), String> {
    if args.len() != 1 {
        return Err(format!("this command takes exactly one <JOB>\n\n{USAGE}"));
    }
    let job = args.remove(0);
    emit(&call(&job).map_err(|err| err.to_string())?, None)
}

/// `stats` with a human-readable lead: the summary surfaces the numbers
/// an operator scans for — queue pressure, cache mode (loud when
/// degraded) and reaped connections — before the raw JSON frame that
/// scripts parse.
fn cmd_stats(client: &mut Client, args: &[String]) -> Result<(), String> {
    no_leftovers(args)?;
    let stats = client.stats().map_err(|err| err.to_string())?;
    print_stdout(&format!("{}\n", stats_summary(&stats)));
    emit(&stats, None)
}

/// Reads a `u64` at a nested object path, defaulting to 0.
fn field_u64(value: &JsonValue, path: &[&str]) -> u64 {
    let mut cursor = value;
    for key in path {
        match cursor.get(key) {
            Some(next) => cursor = next,
            None => return 0,
        }
    }
    cursor.as_u64().unwrap_or(0)
}

/// Reads a string at a nested object path, defaulting to `"?"`.
fn field_str<'a>(value: &'a JsonValue, path: &[&str]) -> &'a str {
    let mut cursor = value;
    for key in path {
        match cursor.get(key) {
            Some(next) => cursor = next,
            None => return "?",
        }
    }
    cursor.as_str().unwrap_or("?")
}

fn stats_summary(stats: &JsonValue) -> String {
    let mode = match field_str(stats, &["cache", "mode"]) {
        "degraded" => "DEGRADED (memory-only after disk errors)".to_string(),
        other => other.to_string(),
    };
    format!(
        "workers {} | queue {}/{} | jobs {} active, {} submitted\n\
         cells: {} executed, {} resumed, {} failed\n\
         cache: {} entries, {} hits / {} misses, mode {mode}\n\
         connections: {} accepted, {} frames, {} errors, {} reaped\n",
        field_u64(stats, &["workers"]),
        field_u64(stats, &["queue", "depth"]),
        field_u64(stats, &["queue", "limit"]),
        field_u64(stats, &["jobs", "active"]),
        field_u64(stats, &["jobs", "submitted"]),
        field_u64(stats, &["cells", "executed"]),
        field_u64(stats, &["cells", "resumed"]),
        field_u64(stats, &["cells", "failed"]),
        field_u64(stats, &["cache", "entries"]),
        field_u64(stats, &["cache", "hits"]),
        field_u64(stats, &["cache", "misses"]),
        field_u64(stats, &["connections", "accepted"]),
        field_u64(stats, &["connections", "frames"]),
        field_u64(stats, &["connections", "errors"]),
        field_u64(stats, &["connections", "reaped"]),
    )
}

fn cmd_metrics(client: &mut Client, args: &mut Vec<String>) -> Result<(), String> {
    let prometheus = take_switch(args, "--prometheus");
    let json_path = take_flag(args, "--json")?;
    no_leftovers(args)?;
    let response = client.metrics().map_err(|err| err.to_string())?;
    if prometheus {
        let text = response
            .get("prometheus")
            .and_then(JsonValue::as_str)
            .ok_or("metrics response is missing the prometheus exposition")?;
        print_stdout(text);
        if let Some(path) = json_path {
            lad_common::fs::atomic_write(std::path::Path::new(&path), response.pretty().as_bytes())
                .map_err(|err| format!("cannot write {path}: {err}"))?;
        }
        Ok(())
    } else {
        emit(&response, json_path.as_deref())
    }
}

/// `watch`: polls `stats` + `metrics` and redraws a one-screen live view
/// every `--interval` ms (default 1000), forever or exactly `--count`
/// times.
fn cmd_watch(addr: &str, client: &mut Client, args: &mut Vec<String>) -> Result<(), String> {
    let interval = match take_flag(args, "--interval")? {
        Some(value) => Duration::from_millis(parse_number(&value, "--interval")?),
        None => Duration::from_millis(1000),
    };
    let count: u64 = match take_flag(args, "--count")? {
        Some(value) => parse_number(&value, "--count")?,
        None => 0,
    };
    no_leftovers(args)?;
    let mut drawn = 0u64;
    loop {
        let stats = client.stats().map_err(|err| err.to_string())?;
        let metrics = client.metrics().map_err(|err| err.to_string())?;
        let mut screen = String::new();
        if drawn > 0 {
            // Home + clear-to-end: redraw in place without scrollback spam.
            screen.push_str("\x1b[H\x1b[J");
        }
        screen.push_str(&watch_screen(addr, &stats, &metrics, interval));
        print_stdout(&screen);
        drawn += 1;
        if count != 0 && drawn >= count {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn watch_screen(addr: &str, stats: &JsonValue, metrics: &JsonValue, interval: Duration) -> String {
    let empty = Vec::new();
    let entries = metrics
        .get("metrics")
        .and_then(|m| m.get("metrics"))
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    let metric_u64 = |name: &str| -> u64 {
        entries
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some(name))
            .map(|e| e.get("value").and_then(JsonValue::as_u64).unwrap_or(0))
            .sum()
    };
    let hits = field_u64(stats, &["cache", "hits"]);
    let misses = field_u64(stats, &["cache", "misses"]);
    let lookups = hits + misses;
    let hit_rate = if lookups > 0 {
        format!("{:.1}%", 100.0 * hits as f64 / lookups as f64)
    } else {
        "n/a".to_string()
    };
    let mut screen = format!(
        "lad-serve @ {addr} — protocol v{}, {} workers{}\n\
         jobs   : {} in flight, {} submitted\n\
         queue  : {} / {} queued, {} workers busy\n\
         cells  : {} executed, {} resumed, {} failed, {} checkpoints\n\
         cache  : {} entries, hit rate {hit_rate} ({hits} hits / {misses} misses), mode {}\n\
         conns  : {} accepted, {} frames in / {} out, {} errors, {} reaped\n",
        field_u64(stats, &["protocol"]),
        field_u64(stats, &["workers"]),
        if stats.get("shutting_down").and_then(JsonValue::as_bool) == Some(true) {
            "  [DRAINING]"
        } else {
            ""
        },
        field_u64(stats, &["jobs", "active"]),
        field_u64(stats, &["jobs", "submitted"]),
        field_u64(stats, &["queue", "depth"]),
        field_u64(stats, &["queue", "limit"]),
        metric_u64("lad_serve_workers_busy"),
        field_u64(stats, &["cells", "executed"]),
        field_u64(stats, &["cells", "resumed"]),
        field_u64(stats, &["cells", "failed"]),
        field_u64(stats, &["cells", "checkpoints_written"]),
        field_u64(stats, &["cache", "entries"]),
        field_str(stats, &["cache", "mode"]),
        field_u64(stats, &["connections", "accepted"]),
        field_u64(stats, &["connections", "frames"]),
        metric_u64("lad_serve_frames_out_total"),
        field_u64(stats, &["connections", "errors"]),
        field_u64(stats, &["connections", "reaped"]),
    );
    let verbs: Vec<&JsonValue> = entries
        .iter()
        .filter(|e| {
            e.get("name").and_then(JsonValue::as_str) == Some("lad_serve_verb_latency_us")
                && e.get("count").and_then(JsonValue::as_u64).unwrap_or(0) > 0
        })
        .collect();
    if !verbs.is_empty() {
        screen.push_str("verb latency (p50 / p99 us):\n");
        for entry in verbs {
            screen.push_str(&format!(
                "  {:<10} {:>6} / {:<6} x{}\n",
                field_str(entry, &["labels", "verb"]),
                field_u64(entry, &["p50"]),
                field_u64(entry, &["p99"]),
                field_u64(entry, &["count"]),
            ));
        }
    }
    let faults: Vec<&JsonValue> = entries
        .iter()
        .filter(|e| {
            e.get("name").and_then(JsonValue::as_str) == Some("lad_serve_faults_injected_total")
        })
        .collect();
    if !faults.is_empty() {
        screen.push_str("faults injected (site/kind):\n");
        for entry in faults {
            screen.push_str(&format!(
                "  {}/{}  {}\n",
                field_str(entry, &["labels", "site"]),
                field_str(entry, &["labels", "kind"]),
                field_u64(entry, &["value"]),
            ));
        }
    }
    screen.push_str(&format!(
        "(refreshes every {} ms; Ctrl-C to stop)\n",
        interval.as_millis()
    ));
    screen
}

fn cmd_job_verb_json(
    args: &mut Vec<String>,
    call: impl FnOnce(&str) -> Result<JsonValue, lad_serve::client::ClientError>,
) -> Result<(), String> {
    let json_path = take_flag(args, "--json")?;
    if args.len() != 1 {
        return Err(format!("this command takes exactly one <JOB>\n\n{USAGE}"));
    }
    let job = args.remove(0);
    emit(
        &call(&job).map_err(|err| err.to_string())?,
        json_path.as_deref(),
    )
}
