//! `lad-serve` — the experiment service daemon.
//!
//! ```text
//! lad-serve --data-dir <DIR> [--addr HOST:PORT] [--workers N]
//!           [--queue-limit N] [--checkpoint-interval N]
//!           [--read-timeout-ms N] [--fault-plan PLAN]
//! ```
//!
//! Binds the address (port `0` picks an ephemeral port), prints
//! `lad-serve listening on <ADDR>` once ready, and serves until a client
//! sends the `shutdown` verb; in-flight cells checkpoint on the way down
//! so a restart over the same `--data-dir` resumes them.
//!
//! `--fault-plan` (or the `LAD_FAULT_PLAN` environment variable) arms the
//! deterministic fault injector for robustness testing — see
//! [`lad_common::fault::FaultPlan`] for the plan grammar
//! (`site:occurrence:kind[;...]` or `random:<seed>`).

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use lad_common::fault::{FaultInjector, FaultPlan};
use lad_serve::server::{self, ServerConfig};

const USAGE: &str = "\
lad-serve: multi-tenant experiment service daemon

USAGE:
  lad-serve --data-dir <DIR> [--addr HOST:PORT] [--workers N]
            [--queue-limit N] [--checkpoint-interval N]
            [--read-timeout-ms N] [--fault-plan PLAN]

Durable state (result cache, checkpoints, uploaded traces) lives under
--data-dir; restarting over the same directory keeps cached results and
resumes checkpointed cells.  Stop the daemon with `lad-client shutdown`.

--fault-plan (or env LAD_FAULT_PLAN) arms the deterministic fault
injector for robustness testing.  PLAN is `site:occurrence:kind[;...]`
(e.g. `conn-write:3:drop;cache-spill:1:enospc`) or `random:<seed>`.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("lad-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag value` out of `args`, removing both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(index) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if index + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let value = args.remove(index + 1);
    args.remove(index);
    Ok(Some(value))
}

fn parse_number<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{what} must be a number, got {value:?}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let data_dir =
        take_flag(&mut args, "--data-dir")?.ok_or(format!("--data-dir is required\n\n{USAGE}"))?;
    let mut config = ServerConfig::new(data_dir);
    if let Some(addr) = take_flag(&mut args, "--addr")? {
        config.addr = addr;
    }
    if let Some(value) = take_flag(&mut args, "--workers")? {
        config.workers = parse_number(&value, "--workers")?;
    }
    if let Some(value) = take_flag(&mut args, "--queue-limit")? {
        config.queue_limit = parse_number(&value, "--queue-limit")?;
    }
    if let Some(value) = take_flag(&mut args, "--checkpoint-interval")? {
        config.checkpoint_interval = parse_number(&value, "--checkpoint-interval")?;
    }
    if let Some(value) = take_flag(&mut args, "--read-timeout-ms")? {
        config.read_timeout = Duration::from_millis(parse_number(&value, "--read-timeout-ms")?);
    }
    let fault_plan = match take_flag(&mut args, "--fault-plan")? {
        Some(value) => Some(value),
        None => std::env::var("LAD_FAULT_PLAN")
            .ok()
            .filter(|v| !v.is_empty()),
    };
    if let Some(text) = fault_plan {
        let plan = FaultPlan::parse(&text).map_err(|err| format!("--fault-plan: {err}"))?;
        eprintln!("lad-serve: fault injector ARMED: {plan}");
        config.fault = FaultInjector::armed(plan);
    }
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}\n\n{USAGE}"));
    }
    server::run(config, |addr| {
        println!("lad-serve listening on {addr}");
        let _ = std::io::stdout().flush();
    })
    .map_err(|err| err.to_string())
}
