//! Client side of the experiment service: a persistent connection speaking
//! the newline-delimited JSON protocol, with typed errors and one method
//! per verb.  Used by the `lad-client` binary and the integration tests.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use lad_common::json::JsonValue;

use crate::protocol::{hex_encode, JobSpec};

/// Everything that can go wrong on the client side of a call.
#[derive(Debug)]
pub enum ClientError {
    /// The connection could not be established or the call's I/O failed
    /// (after one reconnect attempt).
    Io(std::io::Error),
    /// The server's response line was not a well-formed protocol frame.
    Protocol(String),
    /// The server replied with an error frame.
    Server {
        /// HTTP-style status code (`400`, `404`, `409`, `410`, `429`,
        /// `500`, `503`).
        code: u16,
        /// Stable machine-readable discriminator (e.g. `"queue_full"`).
        kind: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ClientError::Server {
                code,
                kind,
                message,
            } => write!(f, "server error {code} ({kind}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::other("server closed the connection"));
        }
        Ok(response)
    }
}

/// A client of one experiment service, holding a persistent connection
/// (re-established once per call if the server dropped it, e.g. after a
/// read timeout).
pub struct Client {
    addr: String,
    conn: Option<Connection>,
}

impl Client {
    /// Connects to a server at `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl Into<String>) -> Result<Client, ClientError> {
        let addr = addr.into();
        let conn = Connection::open(&addr)?;
        Ok(Client {
            addr,
            conn: Some(conn),
        })
    }

    /// Sends one frame and returns the parsed successful response body.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for error frames, [`ClientError::Protocol`]
    /// for responses that do not parse, [`ClientError::Io`] when the
    /// connection fails even after one reconnect.
    pub fn call(&mut self, frame: &JsonValue) -> Result<JsonValue, ClientError> {
        let line = frame.to_string();
        let response = match self.conn.as_mut().map(|conn| conn.round_trip(&line)) {
            Some(Ok(response)) => response,
            // Stale or missing connection: reconnect once and retry.
            Some(Err(_)) | None => {
                self.conn = None;
                let mut conn = Connection::open(&self.addr)?;
                let response = conn.round_trip(&line)?;
                self.conn = Some(conn);
                response
            }
        };
        let parsed = JsonValue::parse(response.trim())
            .map_err(|err| ClientError::Protocol(format!("unparseable response: {err}")))?;
        match parsed.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => Ok(parsed),
            Some(false) => {
                let error = parsed.get("error");
                let field = |name: &str| {
                    error
                        .and_then(|e| e.get(name))
                        .and_then(JsonValue::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                Err(ClientError::Server {
                    code: error
                        .and_then(|e| e.get("code"))
                        .and_then(JsonValue::as_u64)
                        .and_then(|c| u16::try_from(c).ok())
                        .unwrap_or(500),
                    kind: field("kind"),
                    message: field("message"),
                })
            }
            None => Err(ClientError::Protocol(
                "response frame is missing \"ok\"".to_string(),
            )),
        }
    }

    fn verb(
        &mut self,
        verb: &str,
        fields: Vec<(&str, JsonValue)>,
    ) -> Result<JsonValue, ClientError> {
        let mut frame = vec![("verb", JsonValue::from(verb))];
        frame.extend(fields);
        self.call(&JsonValue::object(frame))
    }

    /// Uploads a LADT trace; the response carries its content `digest`
    /// (usable in [`TraceSpec::Stored`](crate::protocol::TraceSpec)),
    /// `benchmark` and `cores`.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn upload(&mut self, bytes: &[u8]) -> Result<JsonValue, ClientError> {
        self.verb(
            "upload",
            vec![("bytes", JsonValue::from(hex_encode(bytes)))],
        )
    }

    /// Submits a job; the response carries the `job` id plus `cells`,
    /// `cached` and `attached` counts.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JsonValue, ClientError> {
        self.verb("submit", vec![("job", spec.to_json())])
    }

    /// Fetches per-cell progress of a job.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn status(&mut self, job: &str) -> Result<JsonValue, ClientError> {
        self.verb("status", vec![("job", JsonValue::from(job))])
    }

    /// Fetches the results of a finished job.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`]; notably [`ClientError::Server`] with kind
    /// `not_finished` while cells are still queued or running.
    pub fn result(&mut self, job: &str) -> Result<JsonValue, ClientError> {
        self.verb("result", vec![("job", JsonValue::from(job))])
    }

    /// Polls `status` until the job leaves the `running` state, then
    /// returns `result`'s response.
    ///
    /// # Errors
    ///
    /// As for [`Client::result`] — a job that finished `cancelled` or
    /// `failed` surfaces as the corresponding server error.
    pub fn wait(&mut self, job: &str, poll: Duration) -> Result<JsonValue, ClientError> {
        loop {
            let status = self.status(job)?;
            match status.get("state").and_then(JsonValue::as_str) {
                Some("running") => std::thread::sleep(poll),
                _ => return self.result(job),
            }
        }
    }

    /// Cancels a job's queued and running cells.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn cancel(&mut self, job: &str) -> Result<JsonValue, ClientError> {
        self.verb("cancel", vec![("job", JsonValue::from(job))])
    }

    /// Fetches service-wide counters (queue depth, cache hits, ...).
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn stats(&mut self) -> Result<JsonValue, ClientError> {
        self.verb("stats", vec![])
    }

    /// Asks the server to drain and exit.  The server closes the
    /// connection after acknowledging, so this client needs a reconnect
    /// (which will fail once the server is gone) for further calls.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn shutdown(&mut self) -> Result<JsonValue, ClientError> {
        let response = self.verb("shutdown", vec![]);
        self.conn = None;
        response
    }
}
