//! Client side of the experiment service: a persistent connection speaking
//! the newline-delimited JSON protocol, with typed errors, one method per
//! verb, and bounded retries with exponential backoff + deterministic
//! jitter on connection failures.  Used by the `lad-client` binary and the
//! integration tests.
//!
//! # Why retrying is safe (idempotency)
//!
//! A retried call may reach a server that already executed the lost
//! original, so every verb must tolerate being applied twice:
//!
//! * `submit` — cells are deduplicated through the content-addressed
//!   result cache and the in-flight subscriber list, so a resubmission
//!   either answers from cache or attaches to the already-running cell;
//!   it never simulates twice.  (It does mint a fresh job id, which is
//!   fine: job ids name views of cells, not work.)
//! * `upload` — traces are stored under their content digest; storing the
//!   same bytes twice writes the same file.
//! * `cancel` — cancelling an already-cancelled job is a no-op.
//! * `shutdown` — asking a draining server to drain again is a no-op (and
//!   a vanished server means the shutdown took effect).
//! * `status` / `result` / `stats` / `health` / `metrics` — read-only.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use lad_common::json::JsonValue;
use lad_common::rng::DeterministicRng;

use crate::protocol::{hex_encode, JobSpec};

/// Bounded-retry policy for connection-level failures: attempt `attempts`
/// times total, sleeping `base * 2^(attempt-1)` (capped at `cap`) scaled
/// by a deterministic jitter factor in `[0.5, 1.0)` between attempts.
///
/// The jitter is seeded, not sampled from wall-clock entropy, so a given
/// `(seed, attempt)` always sleeps the same duration — retry schedules are
/// replayable, which the fault-injection torture suite depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call (1 = no retries).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound any single backoff is clamped to.
    pub cap: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl RetryPolicy {
    /// The default client policy: 4 attempts, 25 ms base, 1 s cap.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            seed: 0,
        }
    }

    /// A single-attempt policy (fail fast, never sleep).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        }
    }

    /// The backoff slept after failed attempt number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.cap);
        // Deterministic jitter in [0.5, 1.0): full-jitter halves the
        // thundering-herd sync without making schedules unreproducible.
        let jitter = 0.5
            + 0.5
                * DeterministicRng::seed_from(self.seed)
                    .derive(u64::from(attempt))
                    .unit();
        capped.mul_f64(jitter)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// Everything that can go wrong on the client side of a call.
#[derive(Debug)]
pub enum ClientError {
    /// The connection could not be established or the call's I/O failed
    /// (after the retry policy's attempts were exhausted).
    Io(std::io::Error),
    /// The server's response line was not a well-formed protocol frame.
    Protocol(String),
    /// The server replied with an error frame.
    Server {
        /// HTTP-style status code (`400`, `404`, `409`, `410`, `429`,
        /// `500`, `503`).
        code: u16,
        /// Stable machine-readable discriminator (e.g. `"queue_full"`).
        kind: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ClientError::Server {
                code,
                kind,
                message,
            } => write!(f, "server error {code} ({kind}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::other("server closed the connection"));
        }
        Ok(response)
    }
}

/// A client of one experiment service, holding a persistent connection
/// that is re-established under the client's [`RetryPolicy`] when the
/// server drops it (read timeout, injected fault, restart).  Retried
/// calls are safe because every verb is idempotent — see the module docs.
pub struct Client {
    addr: String,
    conn: Option<Connection>,
    policy: RetryPolicy,
    retries: u64,
}

impl Client {
    /// Connects to a server at `addr` (`host:port`) with the standard
    /// retry policy ([`RetryPolicy::standard`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when no attempt could establish the connection.
    pub fn connect(addr: impl Into<String>) -> Result<Client, ClientError> {
        Client::connect_with(addr, RetryPolicy::standard())
    }

    /// Connects with an explicit retry policy (the initial connection
    /// itself is retried under it).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when no attempt could establish the connection.
    pub fn connect_with(
        addr: impl Into<String>,
        policy: RetryPolicy,
    ) -> Result<Client, ClientError> {
        let mut client = Client {
            addr: addr.into(),
            conn: None,
            policy,
            retries: 0,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Connection-level retries performed so far (re-opens and re-sends,
    /// not counting each call's first attempt) — observable so tests can
    /// assert a fault actually exercised the retry path.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// (Re-)establishes the connection under the retry policy.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.conn = None;
        let mut last = None;
        for attempt in 1..=self.policy.attempts.max(1) {
            match Connection::open(&self.addr) {
                Ok(conn) => {
                    self.conn = Some(conn);
                    return Ok(());
                }
                Err(err) => {
                    last = Some(err);
                    if attempt < self.policy.attempts.max(1) {
                        self.retries += 1;
                        std::thread::sleep(self.policy.backoff(attempt));
                    }
                }
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::other("connect failed with no attempts")
        })))
    }

    /// Sends one frame and returns the parsed successful response body.
    ///
    /// On connection-level failure (stale connection, dropped socket,
    /// vanished server) the call re-opens the connection and re-sends the
    /// frame, backing off per the retry policy, until an attempt succeeds
    /// or the policy is exhausted.  Re-sending is safe because every verb
    /// is idempotent (see the module docs).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for error frames, [`ClientError::Protocol`]
    /// for responses that do not parse, [`ClientError::Io`] when every
    /// attempt's I/O failed.
    pub fn call(&mut self, frame: &JsonValue) -> Result<JsonValue, ClientError> {
        let line = frame.to_string();
        let attempts = self.policy.attempts.max(1);
        let mut response = None;
        let mut last_io = None;
        for attempt in 1..=attempts {
            if self.conn.is_none()
                && Connection::open(&self.addr)
                    .map(|c| self.conn = Some(c))
                    .is_err()
            {
                last_io = Some(std::io::Error::other(format!(
                    "could not reconnect to {}",
                    self.addr
                )));
            } else if let Some(conn) = self.conn.as_mut() {
                match conn.round_trip(&line) {
                    Ok(text) => {
                        response = Some(text);
                        break;
                    }
                    Err(err) => {
                        // The connection is in an unknown state; drop it
                        // so the next attempt starts clean.
                        self.conn = None;
                        last_io = Some(err);
                    }
                }
            }
            if attempt < attempts {
                self.retries += 1;
                std::thread::sleep(self.policy.backoff(attempt));
            }
        }
        let Some(response) = response else {
            return Err(ClientError::Io(last_io.unwrap_or_else(|| {
                std::io::Error::other("call failed with no attempts")
            })));
        };
        let parsed = JsonValue::parse(response.trim())
            .map_err(|err| ClientError::Protocol(format!("unparseable response: {err}")))?;
        match parsed.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => Ok(parsed),
            Some(false) => {
                let error = parsed.get("error");
                let field = |name: &str| {
                    error
                        .and_then(|e| e.get(name))
                        .and_then(JsonValue::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                Err(ClientError::Server {
                    code: error
                        .and_then(|e| e.get("code"))
                        .and_then(JsonValue::as_u64)
                        .and_then(|c| u16::try_from(c).ok())
                        .unwrap_or(500),
                    kind: field("kind"),
                    message: field("message"),
                })
            }
            None => Err(ClientError::Protocol(
                "response frame is missing \"ok\"".to_string(),
            )),
        }
    }

    fn verb(
        &mut self,
        verb: &str,
        fields: Vec<(&str, JsonValue)>,
    ) -> Result<JsonValue, ClientError> {
        let mut frame = vec![("verb", JsonValue::from(verb))];
        frame.extend(fields);
        self.call(&JsonValue::object(frame))
    }

    /// Uploads a LADT trace; the response carries its content `digest`
    /// (usable in [`TraceSpec::Stored`](crate::protocol::TraceSpec)),
    /// `benchmark` and `cores`.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn upload(&mut self, bytes: &[u8]) -> Result<JsonValue, ClientError> {
        self.verb(
            "upload",
            vec![("bytes", JsonValue::from(hex_encode(bytes)))],
        )
    }

    /// Submits a job; the response carries the `job` id plus `cells`,
    /// `cached` and `attached` counts.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JsonValue, ClientError> {
        self.verb("submit", vec![("job", spec.to_json())])
    }

    /// Fetches per-cell progress of a job.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn status(&mut self, job: &str) -> Result<JsonValue, ClientError> {
        self.verb("status", vec![("job", JsonValue::from(job))])
    }

    /// Fetches the results of a finished job.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`]; notably [`ClientError::Server`] with kind
    /// `not_finished` while cells are still queued or running.
    pub fn result(&mut self, job: &str) -> Result<JsonValue, ClientError> {
        self.verb("result", vec![("job", JsonValue::from(job))])
    }

    /// Polls `status` until the job leaves the `running` state, then
    /// returns `result`'s response.
    ///
    /// # Errors
    ///
    /// As for [`Client::result`] — a job that finished `cancelled` or
    /// `failed` surfaces as the corresponding server error.
    pub fn wait(&mut self, job: &str, poll: Duration) -> Result<JsonValue, ClientError> {
        loop {
            let status = self.status(job)?;
            match status.get("state").and_then(JsonValue::as_str) {
                Some("running") => std::thread::sleep(poll),
                _ => return self.result(job),
            }
        }
    }

    /// Cancels a job's queued and running cells.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn cancel(&mut self, job: &str) -> Result<JsonValue, ClientError> {
        self.verb("cancel", vec![("job", JsonValue::from(job))])
    }

    /// Fetches service-wide counters (queue depth, cache hits, ...).
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn stats(&mut self) -> Result<JsonValue, ClientError> {
        self.verb("stats", vec![])
    }

    /// Fetches the service's health summary: overall status (`"ok"` or
    /// `"degraded"`), the cache's durability mode, and quarantine /
    /// spill-error counters.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn health(&mut self) -> Result<JsonValue, ClientError> {
        self.verb("health", vec![])
    }

    /// Fetches one metrics snapshot: the response carries the Prometheus
    /// text exposition under `"prometheus"` and the native JSON samples
    /// under `"metrics"`.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn metrics(&mut self) -> Result<JsonValue, ClientError> {
        self.verb("metrics", vec![])
    }

    /// Asks the server to drain and exit.  The server closes the
    /// connection after acknowledging, so this client needs a reconnect
    /// (which will fail once the server is gone) for further calls.
    ///
    /// # Errors
    ///
    /// As for [`Client::call`].
    pub fn shutdown(&mut self) -> Result<JsonValue, ClientError> {
        let response = self.verb("shutdown", vec![]);
        self.conn = None;
        response
    }
}
