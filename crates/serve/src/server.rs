//! The experiment service itself: a TCP listener speaking the
//! [`protocol`](crate::protocol) frames, a persistent work-stealing worker
//! pool executing (workload × scheme) cells, and the durable state — the
//! [`ResultCache`] plus a checkpoint spill directory that lets cancelled or
//! killed cells resume instead of recomputing.
//!
//! # Layout of the data directory
//!
//! ```text
//! <data_dir>/cache/        one JSON file per completed cell (result cache)
//! <data_dir>/checkpoints/  one JSON file per in-flight cell's last
//!                          EngineCheckpoint (removed on completion)
//! <data_dir>/traces/       uploaded LADT traces, named by content digest
//! ```
//!
//! # Concurrency
//!
//! One accept thread spawns a handler thread per connection (all inside a
//! `std::thread::scope`, so a draining server joins everything).  Worker
//! threads pull cells from a bounded queue guarded by a mutex + condvar —
//! the same "one shared cursor, workers steal the next job" shape as
//! [`ExperimentRunner::replay_file_matrix`](lad_sim::experiment::ExperimentRunner::replay_file_matrix),
//! persistent across jobs instead of per-matrix.  Identical cells submitted
//! concurrently are deduplicated *in flight*: later submissions subscribe
//! to the running cell rather than enqueueing a copy, so N parallel
//! submissions of the same job simulate once.
//!
//! Every cell runs under a [`RunObserver`] that publishes progress
//! (accesses done, accesses/sec), honours its cancel flag, and spills an
//! [`EngineCheckpoint`] every `checkpoint_interval` accesses; the `cancel`
//! and `shutdown` verbs flip the flag, so interrupted work resumes from
//! the last boundary when the same cell is submitted again — even in a new
//! server process over the same data directory.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use lad_common::config::SystemConfig;
use lad_common::fault::{FaultInjector, FaultSite, FaultyRead, FaultyWrite};
use lad_common::json::JsonValue;
use lad_energy::model::EnergyModel;
use lad_obs::{Counter, Gauge, LatencyHistogram, MetricSample, MetricsRegistry, SampleValue};
use lad_replication::policy::SchemeRegistry;
use lad_replication::scheme::SchemeId;
use lad_sim::checkpoint::EngineCheckpoint;
use lad_sim::engine::{RunControl, RunObserver, RunOutcome, RunProgress, Simulator};
use lad_sim::experiment::ReplayError;
use lad_sim::metrics::SimulationReport;
use lad_trace::benchmarks::Benchmark;
use lad_trace::generator::TraceGenerator;
use lad_traceio::source::{FaultyFileSource, FileSource, GeneratorSource, TraceSource};

use crate::cache::{CacheKey, ResultCache};
use crate::durable::{self, LoadOutcome};
use crate::protocol::{
    fingerprint, fingerprint_hex, hex_decode, JobSpec, ServeError, TraceSpec, PROTOCOL_VERSION,
};

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Durable state root (result cache, checkpoints, uploaded traces).
    pub data_dir: PathBuf,
    /// Worker threads executing cells.  The default follows the
    /// workspace-wide selection rule ([`lad_common::workers::worker_count`]).
    pub workers: usize,
    /// Maximum queued (not yet running) cells; submissions that would
    /// exceed it are rejected with a `429`-style
    /// [`ServeError::QueueFull`] instead of growing without bound.
    pub queue_limit: usize,
    /// Cells checkpoint (and publish progress) every this many accesses.
    pub checkpoint_interval: u64,
    /// Per-connection read timeout; a connection idle longer is dropped.
    pub read_timeout: Duration,
    /// Per-connection write timeout; a peer that stops draining its
    /// socket for longer is dropped instead of pinning the handler.
    pub write_timeout: Duration,
    /// Wall-clock budget for receiving one complete frame.  A slow-loris
    /// peer dribbling bytes (each arriving inside the read timeout, so the
    /// idle-drop never fires) is reaped once its frame exceeds this.
    pub frame_deadline: Duration,
    /// Maximum accepted `upload` body size in (decoded) bytes.
    pub max_upload_bytes: usize,
    /// Fault-injection plan (disarmed by default — zero cost).  Armed via
    /// `lad-serve --fault-plan` / `LAD_FAULT_PLAN` or directly by the
    /// torture harness; consulted at every I/O seam of the service.
    pub fault: FaultInjector,
}

impl ServerConfig {
    /// Defaults for a data directory: ephemeral loopback port, workspace
    /// worker-count rule, 256-cell queue, checkpoint every 10k accesses,
    /// 10 s read/write timeouts, 30 s frame deadline, 64 MB upload cap,
    /// no fault plan.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: data_dir.into(),
            workers: lad_common::workers::worker_count(None),
            queue_limit: 256,
            checkpoint_interval: 10_000,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            frame_deadline: Duration::from_secs(30),
            max_upload_bytes: 64 << 20,
            fault: FaultInjector::disarmed(),
        }
    }
}

/// Shared progress of one in-flight cell, published by its observer and
/// read by the `status` verb.
#[derive(Debug, Default)]
struct CellProgress {
    /// Accesses stepped so far (including any resumed prefix).
    done: AtomicU64,
    /// Wall-clock nanoseconds since the cell started executing.
    nanos: AtomicU64,
    /// Accesses covered by the last durable checkpoint spill.
    checkpointed: AtomicU64,
}

/// Everything a worker needs to execute one cell.
#[derive(Debug, Clone)]
struct CellSpec {
    trace: TraceSpec,
    scheme: SchemeId,
    system: SystemConfig,
    benchmark: String,
}

/// A queued-or-running cell, subscribed to by one or more job cells.
#[derive(Debug)]
struct PendingCell {
    spec: CellSpec,
    running: bool,
    cancel: Arc<AtomicBool>,
    progress: Arc<CellProgress>,
    subscribers: Vec<(String, usize)>,
    /// When the cell entered the queue — claimed-minus-enqueued is the
    /// queue-wait latency sample.
    enqueued: Instant,
}

#[derive(Debug, Clone)]
enum CellState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed(String),
}

impl CellState {
    fn label(&self) -> &'static str {
        match self {
            CellState::Queued => "queued",
            CellState::Running => "running",
            CellState::Done => "done",
            CellState::Cancelled => "cancelled",
            CellState::Failed(_) => "failed",
        }
    }
}

#[derive(Debug)]
struct JobCell {
    benchmark: String,
    scheme: SchemeId,
    key: CacheKey,
    state: CellState,
    progress: Arc<CellProgress>,
    report: Option<SimulationReport>,
}

#[derive(Debug)]
struct Job {
    cells: Vec<JobCell>,
}

#[derive(Debug, Default)]
struct State {
    next_job: u64,
    jobs: BTreeMap<String, Job>,
    queue: VecDeque<CacheKey>,
    pending: BTreeMap<CacheKey, PendingCell>,
}

/// The verbs the service answers, in dispatch order — the pre-resolved
/// per-verb latency histograms cover exactly this set.
const VERBS: [&str; 9] = [
    "upload", "submit", "status", "result", "cancel", "stats", "health", "metrics", "shutdown",
];

/// Service-wide instruments: every counter the `stats` verb reports plus
/// the latency histograms and gauges the `metrics` verb exports, all
/// pre-resolved on this server's own [`MetricsRegistry`].
///
/// The registry is per-instance (not [`lad_obs::global`]) so two servers
/// in one process — the restart tests — never share counters; the
/// `metrics` verb snapshots this registry *and* the process-wide one the
/// engine and worker pools record into.
#[derive(Debug)]
struct ServiceMetrics {
    registry: MetricsRegistry,
    jobs_submitted: Counter,
    cells_executed: Counter,
    cells_resumed: Counter,
    cells_failed: Counter,
    checkpoints_written: Counter,
    checkpoints_quarantined: Counter,
    connections: Counter,
    frames_in: Counter,
    frames_out: Counter,
    errors: Counter,
    /// Connections dropped by the slow-peer reaper (frame deadline or
    /// frame byte cap exceeded, or a stall mid-frame).
    reaped: Counter,
    /// Workers currently executing a cell (not parked on the condvar).
    workers_busy: Gauge,
    /// Scrape-time gauges, refreshed by the `metrics` verb.
    queue_depth: Gauge,
    jobs_active: Gauge,
    cache_entries: Gauge,
    /// 0 = durable, 1 = memory-only (no directory), 2 = degraded.
    cache_mode: Gauge,
    /// Time a cell sat queued before a worker claimed it.
    cell_queue_wait_us: LatencyHistogram,
    /// Wall clock of one cell execution (resume prefix excluded).
    cell_exec_us: LatencyHistogram,
    /// Duration of one durable checkpoint spill.
    checkpoint_spill_us: LatencyHistogram,
    /// Request-handling latency, one histogram per verb in [`VERBS`].
    verb_latency: Vec<(&'static str, LatencyHistogram)>,
}

impl ServiceMetrics {
    fn new() -> ServiceMetrics {
        let registry = MetricsRegistry::new();
        let counter = |name, help| registry.counter(name, help);
        let gauge = |name, help| registry.gauge(name, help);
        let verb_latency = VERBS
            .iter()
            .map(|verb| {
                (
                    *verb,
                    registry.histogram_with(
                        "lad_serve_verb_latency_us",
                        &[("verb", verb)],
                        "request-handling latency by verb",
                    ),
                )
            })
            .collect();
        ServiceMetrics {
            jobs_submitted: counter("lad_serve_jobs_submitted_total", "jobs accepted by submit"),
            cells_executed: counter(
                "lad_serve_cells_executed_total",
                "cells executed to completion",
            ),
            cells_resumed: counter(
                "lad_serve_cells_resumed_total",
                "cells resumed from a spilled checkpoint",
            ),
            cells_failed: counter(
                "lad_serve_cells_failed_total",
                "cells that failed (trace error or worker panic)",
            ),
            checkpoints_written: counter(
                "lad_serve_checkpoints_written_total",
                "durable checkpoint spills",
            ),
            checkpoints_quarantined: counter(
                "lad_serve_checkpoints_quarantined_total",
                "corrupt checkpoint files quarantined",
            ),
            connections: counter("lad_serve_connections_total", "connections accepted"),
            frames_in: counter("lad_serve_frames_in_total", "request frames received"),
            frames_out: counter("lad_serve_frames_out_total", "response frames written"),
            errors: counter("lad_serve_errors_total", "requests answered with an error"),
            reaped: counter(
                "lad_serve_reaped_total",
                "connections dropped by the slow-peer reaper",
            ),
            workers_busy: gauge(
                "lad_serve_workers_busy",
                "workers currently executing a cell",
            ),
            queue_depth: gauge("lad_serve_queue_depth", "cells queued, not yet running"),
            jobs_active: gauge("lad_serve_jobs_active", "jobs with queued or running cells"),
            cache_entries: gauge("lad_serve_cache_entries", "results held by the cache"),
            cache_mode: gauge(
                "lad_serve_cache_mode",
                "result-cache mode: 0 durable, 1 memory-only, 2 degraded",
            ),
            cell_queue_wait_us: registry.histogram(
                "lad_serve_cell_queue_wait_us",
                "microseconds a cell waited in the queue before a worker claimed it",
            ),
            cell_exec_us: registry.histogram(
                "lad_serve_cell_exec_us",
                "cell execution wall clock in microseconds",
            ),
            checkpoint_spill_us: registry.histogram(
                "lad_serve_checkpoint_spill_us",
                "durable checkpoint spill duration in microseconds",
            ),
            verb_latency,
            registry,
        }
    }

    fn verb_latency(&self, verb: &str) -> Option<&LatencyHistogram> {
        self.verb_latency
            .iter()
            .find(|(known, _)| *known == verb)
            .map(|(_, histogram)| histogram)
    }
}

struct Shared {
    config: ServerConfig,
    addr: SocketAddr,
    registry: SchemeRegistry,
    cache: ResultCache,
    state: Mutex<State>,
    work: Condvar,
    shutting_down: AtomicBool,
    metrics: ServiceMetrics,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn checkpoint_path(&self, key: &CacheKey) -> PathBuf {
        self.config
            .data_dir
            .join("checkpoints")
            .join(format!("{}.json", key.file_stem()))
    }

    fn trace_path(&self, digest: &str) -> PathBuf {
        self.config
            .data_dir
            .join("traces")
            .join(format!("{digest}.ladt"))
    }
}

/// A running service instance.
///
/// Dropping the handle drains the server exactly like the `shutdown` verb
/// (running cells are cancelled *with* a final checkpoint spill, so their
/// work is resumable), making an abrupt test teardown equivalent to a
/// SIGTERM.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr`, loads the durable state under
    /// `config.data_dir`, and starts the accept loop plus worker pool on a
    /// background thread.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the data directory cannot
    /// be prepared.
    pub fn spawn(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        std::fs::create_dir_all(config.data_dir.join("checkpoints"))?;
        std::fs::create_dir_all(config.data_dir.join("traces"))?;
        let metrics = ServiceMetrics::new();
        let cache = ResultCache::open(
            Some(config.data_dir.join("cache")),
            config.fault.clone(),
            &metrics.registry,
        )?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            config: ServerConfig { workers, ..config },
            addr,
            registry: SchemeRegistry::builtin(),
            cache,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            metrics,
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lad-serve".to_string())
                .spawn(move || serve(&shared, listener))?
        };
        Ok(Server {
            shared,
            addr,
            thread: Some(thread),
        })
    }

    /// The bound address (with the actual port when `addr` asked for `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server has drained (a client sent `shutdown`, or
    /// the handle initiated one).
    pub fn join(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.thread.is_some() {
            initiate_shutdown(&self.shared);
            self.finish();
        }
    }
}

/// Runs a server in the foreground until a client sends `shutdown` —
/// the daemon entry point.  Calls `ready` with the bound address once
/// listening (the binary prints it for operators and CI).
///
/// # Errors
///
/// As for [`Server::spawn`].
pub fn run(config: ServerConfig, ready: impl FnOnce(SocketAddr)) -> std::io::Result<()> {
    let server = Server::spawn(config)?;
    ready(server.addr());
    server.join();
    Ok(())
}

fn serve(shared: &Shared, listener: TcpListener) {
    std::thread::scope(|scope| {
        for _ in 0..shared.config.workers {
            scope.spawn(|| worker_loop(shared));
        }
        for conn in listener.incoming() {
            if shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            shared.metrics.connections.inc();
            scope.spawn(move || handle_connection(shared, stream));
        }
        // The accept loop can only break once the flag is set; make sure
        // every worker parked on the condvar re-checks it.
        shared.work.notify_all();
    });
}

/// The `shutdown` verb's body, shared with [`Server`]'s drop: flag the
/// drain, cancel queued cells, ask running cells to stop at their next
/// checkpoint boundary, and unblock the accept loop.
fn initiate_shutdown(shared: &Shared) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    {
        let mut state = shared.lock();
        let State {
            jobs,
            queue,
            pending,
            ..
        } = &mut *state;
        while let Some(key) = queue.pop_front() {
            if let Some(cell) = pending.remove(&key) {
                set_cells(jobs, &cell.subscribers, &CellState::Cancelled);
            }
        }
        for cell in pending.values() {
            cell.cancel.store(true, Ordering::SeqCst);
        }
    }
    shared.work.notify_all();
    // Unblock the accept loop with a throwaway connection so it observes
    // the flag even if no client ever connects again.
    let _ = TcpStream::connect(shared.addr);
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

/// A verb's successful response plus whether the connection should close
/// after it (only `shutdown` closes).
struct Reply {
    body: JsonValue,
    close: bool,
}

fn reply(body: JsonValue) -> Result<Reply, ServeError> {
    Ok(Reply { body, close: false })
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let injector = &shared.config.fault;
    let mut reader = BufReader::new(FaultyRead::new(
        read_half,
        FaultSite::ConnRead,
        injector.clone(),
    ));
    let mut writer = BufWriter::new(FaultyWrite::new(
        stream,
        FaultSite::ConnWrite,
        injector.clone(),
    ));
    // Upload frames carry hex bodies (2 bytes per payload byte) plus JSON
    // framing; anything bigger than this is no legitimate frame.
    let max_frame = shared
        .config
        .max_upload_bytes
        .saturating_mul(2)
        .saturating_add(4096);
    loop {
        let Some(line) = read_frame(shared, &mut reader, max_frame) else {
            return;
        };
        if line.trim().is_empty() {
            continue;
        }
        let (frame, close) = match handle_frame(shared, &line) {
            Ok(reply) => (reply.body, reply.close),
            Err(err) => {
                shared.metrics.errors.inc();
                (err.to_response(), false)
            }
        };
        if writeln!(writer, "{frame}").is_err() || writer.flush().is_err() {
            return;
        }
        shared.metrics.frames_out.inc();
        if close {
            return;
        }
    }
}

/// Reads one newline-terminated frame with a per-frame wall-clock deadline
/// and byte cap (the slow-peer reaper).  `None` means the connection is
/// done: clean EOF, an idle timeout with no frame in flight (the
/// pre-hardening behaviour), an I/O error, or a reaped slow peer.
fn read_frame(shared: &Shared, reader: &mut impl BufRead, max_bytes: usize) -> Option<String> {
    let started = Instant::now();
    let mut line = Vec::new();
    let reap = || {
        shared.metrics.reaped.inc();
        lad_obs::global_tracer().emit("reap", "slow or oversized peer dropped mid-frame");
        None
    };
    loop {
        if started.elapsed() > shared.config.frame_deadline {
            return reap();
        }
        let buf = match reader.fill_buf() {
            Ok([]) => return None,
            Ok(buf) => buf,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A read-timeout window passed with nothing arriving.
                // Mid-frame that is a stalled peer (reaped); with no frame
                // in flight it is the ordinary idle drop.
                return if line.is_empty() { None } else { reap() };
            }
            // Resets and the rest: drop the connection, the client
            // reconnects if it still cares.
            Err(_) => return None,
        };
        match buf.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                line.extend_from_slice(&buf[..newline]);
                reader.consume(newline + 1);
                if line.len() > max_bytes {
                    return reap();
                }
                // Invalid UTF-8 cannot be a JSON frame; drop the
                // connection as the pre-hardening read_line did.
                return String::from_utf8(line).ok();
            }
            None => {
                let taken = buf.len();
                line.extend_from_slice(buf);
                reader.consume(taken);
                if line.len() > max_bytes {
                    return reap();
                }
            }
        }
    }
}

fn handle_frame(shared: &Shared, line: &str) -> Result<Reply, ServeError> {
    shared.metrics.frames_in.inc();
    let frame =
        JsonValue::parse(line.trim()).map_err(|err| ServeError::MalformedFrame(err.to_string()))?;
    let verb = frame
        .get("verb")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| {
            ServeError::MalformedFrame(
                "frame must be a JSON object with a \"verb\" string".to_string(),
            )
        })?;
    let started = Instant::now();
    let result = match verb {
        "upload" => verb_upload(shared, &frame),
        "submit" => verb_submit(shared, &frame),
        "status" => verb_status(shared, &frame),
        "result" => verb_result(shared, &frame),
        "cancel" => verb_cancel(shared, &frame),
        "stats" => verb_stats(shared),
        "health" => verb_health(shared),
        "metrics" => verb_metrics(shared),
        "shutdown" => verb_shutdown(shared),
        other => Err(ServeError::UnknownVerb(other.to_string())),
    };
    if let Some(latency) = shared.metrics.verb_latency(verb) {
        latency.record_duration(started.elapsed());
    }
    result
}

fn job_field(frame: &JsonValue) -> Result<&str, ServeError> {
    frame
        .get("job")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServeError::BadRequest("frame needs a \"job\" id string".to_string()))
}

// ---------------------------------------------------------------------------
// Verbs
// ---------------------------------------------------------------------------

fn verb_upload(shared: &Shared, frame: &JsonValue) -> Result<Reply, ServeError> {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    let body = frame
        .get("bytes")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServeError::BadRequest("upload needs a \"bytes\" hex string".to_string()))?;
    if body.len() > shared.config.max_upload_bytes.saturating_mul(2) {
        return Err(ServeError::BadRequest(format!(
            "upload exceeds the {}-byte limit",
            shared.config.max_upload_bytes
        )));
    }
    let bytes = hex_decode(body)?;
    // Decode fully before storing: the digest pass validates every frame,
    // so a stored trace is always replayable.
    let digest = lad_traceio::digest::digest_reader(std::io::Cursor::new(&bytes))
        .map_err(|err| ServeError::Replay(ReplayError::Trace(err)))?;
    let header = lad_traceio::reader::TraceReader::new(std::io::Cursor::new(&bytes))
        .map_err(|err| ServeError::Replay(ReplayError::Trace(err)))?
        .header()
        .clone();
    let path = shared.trace_path(&digest.to_hex());
    lad_common::fs::atomic_write_faulty(
        &path,
        &bytes,
        &shared.config.fault,
        FaultSite::TraceStore,
    )?;
    reply(JsonValue::object([
        ("ok", JsonValue::from(true)),
        ("digest", JsonValue::from(digest.to_hex())),
        ("bytes", JsonValue::from(bytes.len() as u64)),
        ("benchmark", JsonValue::from(header.benchmark.as_str())),
        ("cores", JsonValue::from(header.num_cores as u64)),
    ]))
}

/// A trace spec resolved against the server's stores: its cache digest,
/// canonical benchmark name and core count.
struct ResolvedTrace {
    digest: String,
    benchmark: String,
    cores: usize,
}

fn resolve_trace(shared: &Shared, spec: &TraceSpec) -> Result<ResolvedTrace, ServeError> {
    let from_file = |path: &Path| -> Result<ResolvedTrace, ServeError> {
        let digest = lad_traceio::digest::digest_file(path)
            .map_err(|err| ServeError::Replay(ReplayError::Trace(err)))?;
        let source =
            FileSource::open(path).map_err(|err| ServeError::Replay(ReplayError::Trace(err)))?;
        Ok(ResolvedTrace {
            digest: digest.to_hex(),
            benchmark: source.name().to_string(),
            cores: source.num_cores(),
        })
    };
    match spec {
        TraceSpec::File { path } => from_file(path),
        TraceSpec::Stored { digest } => {
            let well_formed = digest.len() == 16 && digest.bytes().all(|b| b.is_ascii_hexdigit());
            if !well_formed {
                return Err(ServeError::BadRequest(format!(
                    "stored trace digest must be 16 hex digits, got {digest:?}"
                )));
            }
            let path = shared.trace_path(digest);
            if !path.is_file() {
                return Err(ServeError::UnknownTrace(digest.clone()));
            }
            from_file(&path)
        }
        TraceSpec::Builtin {
            benchmark,
            cores,
            accesses_per_core,
            seed,
        } => {
            let known = Benchmark::ALL
                .iter()
                .find(|b| b.label() == benchmark)
                .ok_or_else(|| ServeError::UnknownBenchmark(benchmark.clone()))?;
            // Generation is deterministic from the spec, so a spec
            // fingerprint is content-equivalent as a cache key without
            // materializing the trace at submit time.
            let spec_text = format!(
                "builtin:{}:{cores}:{accesses_per_core}:{seed}",
                known.label()
            );
            Ok(ResolvedTrace {
                digest: fingerprint_hex(fingerprint(&spec_text)),
                benchmark: known.label().to_string(),
                cores: *cores,
            })
        }
    }
}

fn verb_submit(shared: &Shared, frame: &JsonValue) -> Result<Reply, ServeError> {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    let spec = JobSpec::from_json(
        frame
            .get("job")
            .ok_or_else(|| ServeError::BadRequest("submit needs a \"job\" object".to_string()))?,
    )?;
    let mut schemes = Vec::with_capacity(spec.schemes.len());
    for label in &spec.schemes {
        let id = SchemeId::parse(label);
        shared
            .registry
            .get(id)
            .map_err(|err| ServeError::Replay(ReplayError::UnknownScheme(err)))?;
        schemes.push(id);
    }
    let resolved = resolve_trace(shared, &spec.trace)?;
    let system = spec.system.config().with_num_cores(resolved.cores);
    // The energy model is pinned to `EnergyModel::paper_default()`, so the
    // system configuration is the only free knob to fingerprint.
    let config_fp = fingerprint_hex(fingerprint(&format!("{system:?}")));

    enum Planned {
        Cached(Box<SimulationReport>),
        Attach,
        Enqueue,
    }
    let mut state = shared.lock();
    let mut plan: Vec<(CacheKey, Planned)> = Vec::with_capacity(schemes.len());
    let mut new_cells = 0usize;
    for id in &schemes {
        let key = CacheKey {
            trace: resolved.digest.clone(),
            config: config_fp.clone(),
            scheme: id.label(),
        };
        let planned = if let Some(report) = shared.cache.lookup(&key) {
            Planned::Cached(Box::new(report))
        } else if state.pending.contains_key(&key) {
            Planned::Attach
        } else {
            new_cells += 1;
            Planned::Enqueue
        };
        plan.push((key, planned));
    }
    if state.queue.len() + new_cells > shared.config.queue_limit {
        return Err(ServeError::QueueFull {
            limit: shared.config.queue_limit,
        });
    }

    let job_id = format!("job-{}", state.next_job);
    state.next_job += 1;
    let mut cells = Vec::with_capacity(plan.len());
    let mut cached = 0usize;
    let mut attached = 0usize;
    for (index, ((key, planned), id)) in plan.into_iter().zip(&schemes).enumerate() {
        let cell = match planned {
            Planned::Cached(report) => {
                cached += 1;
                JobCell {
                    benchmark: resolved.benchmark.clone(),
                    scheme: *id,
                    key,
                    state: CellState::Done,
                    progress: Arc::new(CellProgress::default()),
                    report: Some(*report),
                }
            }
            Planned::Attach => {
                attached += 1;
                let pending = match state.pending.get_mut(&key) {
                    Some(pending) => pending,
                    None => unreachable!("planned under the same lock"),
                };
                pending.subscribers.push((job_id.clone(), index));
                JobCell {
                    benchmark: resolved.benchmark.clone(),
                    scheme: *id,
                    key,
                    state: if pending.running {
                        CellState::Running
                    } else {
                        CellState::Queued
                    },
                    progress: Arc::clone(&pending.progress),
                    report: None,
                }
            }
            Planned::Enqueue => {
                let progress = Arc::new(CellProgress::default());
                state.pending.insert(
                    key.clone(),
                    PendingCell {
                        spec: CellSpec {
                            trace: spec.trace.clone(),
                            scheme: *id,
                            system: system.clone(),
                            benchmark: resolved.benchmark.clone(),
                        },
                        running: false,
                        cancel: Arc::new(AtomicBool::new(false)),
                        progress: Arc::clone(&progress),
                        subscribers: vec![(job_id.clone(), index)],
                        enqueued: Instant::now(),
                    },
                );
                state.queue.push_back(key.clone());
                JobCell {
                    benchmark: resolved.benchmark.clone(),
                    scheme: *id,
                    key,
                    state: CellState::Queued,
                    progress,
                    report: None,
                }
            }
        };
        cells.push(cell);
    }
    let total = cells.len();
    state.jobs.insert(job_id.clone(), Job { cells });
    drop(state);
    shared.work.notify_all();
    shared.metrics.jobs_submitted.inc();
    reply(JsonValue::object([
        ("ok", JsonValue::from(true)),
        ("job", JsonValue::from(job_id)),
        ("cells", JsonValue::from(total as u64)),
        ("cached", JsonValue::from(cached as u64)),
        ("attached", JsonValue::from(attached as u64)),
    ]))
}

fn verb_status(shared: &Shared, frame: &JsonValue) -> Result<Reply, ServeError> {
    let job_id = job_field(frame)?;
    let state = shared.lock();
    let job = state
        .jobs
        .get(job_id)
        .ok_or_else(|| ServeError::UnknownJob(job_id.to_string()))?;
    let mut cells = Vec::with_capacity(job.cells.len());
    for cell in &job.cells {
        let done = cell.progress.done.load(Ordering::Relaxed);
        let nanos = cell.progress.nanos.load(Ordering::Relaxed);
        let rate = if nanos > 0 {
            done as f64 * 1e9 / nanos as f64
        } else {
            0.0
        };
        let mut fields = vec![
            ("benchmark", JsonValue::from(cell.benchmark.as_str())),
            ("scheme", JsonValue::from(cell.scheme.label())),
            ("state", JsonValue::from(cell.state.label())),
            ("accesses_done", JsonValue::from(done)),
            ("accesses_per_sec", JsonValue::from(rate)),
            (
                "checkpointed_accesses",
                JsonValue::from(cell.progress.checkpointed.load(Ordering::Relaxed)),
            ),
        ];
        if let CellState::Failed(message) = &cell.state {
            fields.push(("error", JsonValue::from(message.as_str())));
        }
        cells.push(JsonValue::object(fields));
    }
    let overall = job_state(job);
    reply(JsonValue::object([
        ("ok", JsonValue::from(true)),
        ("job", JsonValue::from(job_id)),
        ("state", JsonValue::from(overall)),
        ("cells", JsonValue::Array(cells)),
    ]))
}

fn job_state(job: &Job) -> &'static str {
    let mut saw_failed = false;
    let mut saw_cancelled = false;
    for cell in &job.cells {
        match cell.state {
            CellState::Queued | CellState::Running => return "running",
            CellState::Failed(_) => saw_failed = true,
            CellState::Cancelled => saw_cancelled = true,
            CellState::Done => {}
        }
    }
    if saw_failed {
        "failed"
    } else if saw_cancelled {
        "cancelled"
    } else {
        "done"
    }
}

fn verb_result(shared: &Shared, frame: &JsonValue) -> Result<Reply, ServeError> {
    let job_id = job_field(frame)?;
    let state = shared.lock();
    let job = state
        .jobs
        .get(job_id)
        .ok_or_else(|| ServeError::UnknownJob(job_id.to_string()))?;
    let remaining = job
        .cells
        .iter()
        .filter(|c| matches!(c.state, CellState::Queued | CellState::Running))
        .count();
    if remaining > 0 {
        return Err(ServeError::NotFinished {
            job: job_id.to_string(),
            remaining,
        });
    }
    if let Some(message) = job.cells.iter().find_map(|c| match &c.state {
        CellState::Failed(message) => Some(message.clone()),
        _ => None,
    }) {
        return Err(ServeError::JobFailed {
            job: job_id.to_string(),
            message,
        });
    }
    if job
        .cells
        .iter()
        .any(|c| matches!(c.state, CellState::Cancelled))
    {
        return Err(ServeError::JobCancelled {
            job: job_id.to_string(),
        });
    }
    let mut results = Vec::with_capacity(job.cells.len());
    for cell in &job.cells {
        let report = cell
            .report
            .as_ref()
            .ok_or_else(|| ServeError::Io(std::io::Error::other("done cell lost its report")))?;
        results.push(JsonValue::object([
            ("benchmark", JsonValue::from(cell.benchmark.as_str())),
            ("scheme", JsonValue::from(cell.scheme.label())),
            ("report", report.to_json()),
        ]));
    }
    reply(JsonValue::object([
        ("ok", JsonValue::from(true)),
        ("job", JsonValue::from(job_id)),
        ("results", JsonValue::Array(results)),
    ]))
}

fn verb_cancel(shared: &Shared, frame: &JsonValue) -> Result<Reply, ServeError> {
    let job_id = job_field(frame)?.to_string();
    let mut state = shared.lock();
    if !state.jobs.contains_key(&job_id) {
        return Err(ServeError::UnknownJob(job_id));
    }
    let State {
        jobs,
        queue,
        pending,
        ..
    } = &mut *state;
    let job = match jobs.get_mut(&job_id) {
        Some(job) => job,
        None => unreachable!("checked above under the same lock"),
    };
    let mut cancelled = 0usize;
    let mut finished = 0usize;
    for (index, cell) in job.cells.iter_mut().enumerate() {
        match cell.state {
            CellState::Queued | CellState::Running => {
                if let Some(pending_cell) = pending.get_mut(&cell.key) {
                    pending_cell
                        .subscribers
                        .retain(|(job, i)| !(*job == job_id && *i == index));
                    if pending_cell.subscribers.is_empty() {
                        if pending_cell.running {
                            // The worker stops at its next checkpoint
                            // boundary and spills a resumable checkpoint.
                            pending_cell.cancel.store(true, Ordering::SeqCst);
                        } else {
                            queue.retain(|key| key != &cell.key);
                            pending.remove(&cell.key);
                        }
                    }
                }
                cell.state = CellState::Cancelled;
                cancelled += 1;
            }
            _ => finished += 1,
        }
    }
    reply(JsonValue::object([
        ("ok", JsonValue::from(true)),
        ("job", JsonValue::from(job_id)),
        ("cancelled", JsonValue::from(cancelled as u64)),
        ("finished", JsonValue::from(finished as u64)),
    ]))
}

fn verb_stats(shared: &Shared) -> Result<Reply, ServeError> {
    let (queue_depth, active_jobs) = {
        let state = shared.lock();
        let active = state
            .jobs
            .values()
            .filter(|job| {
                job.cells
                    .iter()
                    .any(|c| matches!(c.state, CellState::Queued | CellState::Running))
            })
            .count();
        (state.queue.len(), active)
    };
    let stat = |counter: &Counter| JsonValue::from(counter.value());
    reply(JsonValue::object([
        ("ok", JsonValue::from(true)),
        ("protocol", JsonValue::from(u64::from(PROTOCOL_VERSION))),
        ("workers", JsonValue::from(shared.config.workers as u64)),
        (
            "queue",
            JsonValue::object([
                ("depth", JsonValue::from(queue_depth as u64)),
                ("limit", JsonValue::from(shared.config.queue_limit as u64)),
            ]),
        ),
        (
            "jobs",
            JsonValue::object([
                ("submitted", stat(&shared.metrics.jobs_submitted)),
                ("active", JsonValue::from(active_jobs as u64)),
            ]),
        ),
        (
            "cells",
            JsonValue::object([
                ("executed", stat(&shared.metrics.cells_executed)),
                ("resumed", stat(&shared.metrics.cells_resumed)),
                ("failed", stat(&shared.metrics.cells_failed)),
                (
                    "checkpoints_written",
                    stat(&shared.metrics.checkpoints_written),
                ),
                (
                    "checkpoints_quarantined",
                    stat(&shared.metrics.checkpoints_quarantined),
                ),
            ]),
        ),
        (
            "cache",
            JsonValue::object([
                ("entries", JsonValue::from(shared.cache.len() as u64)),
                ("hits", JsonValue::from(shared.cache.hits())),
                ("misses", JsonValue::from(shared.cache.misses())),
                ("mode", JsonValue::from(shared.cache.mode())),
                ("quarantined", JsonValue::from(shared.cache.quarantined())),
                ("spill_errors", JsonValue::from(shared.cache.spill_errors())),
            ]),
        ),
        (
            "connections",
            JsonValue::object([
                ("accepted", stat(&shared.metrics.connections)),
                ("frames", stat(&shared.metrics.frames_in)),
                ("errors", stat(&shared.metrics.errors)),
                ("reaped", stat(&shared.metrics.reaped)),
            ]),
        ),
        (
            "shutting_down",
            JsonValue::from(shared.shutting_down.load(Ordering::SeqCst)),
        ),
    ]))
}

/// The `health` verb: a cheap liveness + degradation probe.  `"status"`
/// is `"ok"` while every subsystem operates durably and `"degraded"` once
/// persistent disk errors have flipped the result cache to memory-only
/// operation (the server keeps answering either way).
fn verb_health(shared: &Shared) -> Result<Reply, ServeError> {
    let status = if shared.cache.is_degraded() {
        "degraded"
    } else {
        "ok"
    };
    reply(JsonValue::object([
        ("ok", JsonValue::from(true)),
        ("status", JsonValue::from(status)),
        ("cache_mode", JsonValue::from(shared.cache.mode())),
        (
            "quarantined",
            JsonValue::object([
                ("cache", JsonValue::from(shared.cache.quarantined())),
                (
                    "checkpoints",
                    JsonValue::from(shared.metrics.checkpoints_quarantined.value()),
                ),
            ]),
        ),
        ("spill_errors", JsonValue::from(shared.cache.spill_errors())),
        (
            "shutting_down",
            JsonValue::from(shared.shutting_down.load(Ordering::SeqCst)),
        ),
    ]))
}

/// The `metrics` verb: one point-in-time snapshot of every instrument,
/// exported both ways at once — `"prometheus"` carries the text
/// exposition, `"metrics"` the native JSON samples.
///
/// The snapshot merges three sources: this server's own registry (verb
/// latencies, cell/connection/cache counters), the process-wide
/// [`lad_obs::global`] registry the simulation engine and worker pools
/// record into, and per-(site, kind) counts synthesized from the fault
/// injector's fired-fault log.  Scrape-time gauges (queue depth, active
/// jobs, cache entries and mode) are refreshed before the snapshot.
fn verb_metrics(shared: &Shared) -> Result<Reply, ServeError> {
    let (queue_depth, active_jobs) = {
        let state = shared.lock();
        let active = state
            .jobs
            .values()
            .filter(|job| {
                job.cells
                    .iter()
                    .any(|c| matches!(c.state, CellState::Queued | CellState::Running))
            })
            .count();
        (state.queue.len(), active)
    };
    shared.metrics.queue_depth.set(queue_depth as i64);
    shared.metrics.jobs_active.set(active_jobs as i64);
    shared.metrics.cache_entries.set(shared.cache.len() as i64);
    shared.metrics.cache_mode.set(match shared.cache.mode() {
        "durable" => 0,
        "memory" => 1,
        _ => 2,
    });

    let mut samples = shared.metrics.registry.snapshot();
    samples.extend(lad_obs::global().snapshot());
    let mut fired_counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    for fault in shared.config.fault.fired() {
        *fired_counts
            .entry((fault.site.label().to_string(), fault.kind.label()))
            .or_insert(0) += 1;
    }
    for ((site, kind), count) in fired_counts {
        samples.push(MetricSample {
            name: "lad_serve_faults_injected_total".to_string(),
            help: "faults fired by the injector, by site and kind".to_string(),
            labels: vec![("kind".to_string(), kind), ("site".to_string(), site)],
            value: SampleValue::Counter(count),
        });
    }
    // The exposition groups HELP/TYPE headers by name, so the merged
    // snapshot must arrive name-sorted like a single registry's would.
    samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));

    reply(JsonValue::object([
        ("ok", JsonValue::from(true)),
        (
            "prometheus",
            JsonValue::from(lad_obs::prometheus_text(&samples)),
        ),
        ("metrics", lad_obs::metrics_json(&samples)),
    ]))
}

fn verb_shutdown(shared: &Shared) -> Result<Reply, ServeError> {
    initiate_shutdown(shared);
    Ok(Reply {
        body: JsonValue::object([
            ("ok", JsonValue::from(true)),
            ("draining", JsonValue::from(true)),
        ]),
        close: true,
    })
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

struct WorkItem {
    key: CacheKey,
    spec: CellSpec,
    cancel: Arc<AtomicBool>,
    progress: Arc<CellProgress>,
}

fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut state = shared.lock();
            loop {
                if let Some(key) = state.queue.pop_front() {
                    let claimed = match state.pending.get_mut(&key) {
                        Some(pending) => {
                            pending.running = true;
                            Some((
                                pending.spec.clone(),
                                Arc::clone(&pending.cancel),
                                Arc::clone(&pending.progress),
                                pending.subscribers.clone(),
                                pending.enqueued,
                            ))
                        }
                        // Cancelled out from under the queue entry.
                        None => None,
                    };
                    let Some((spec, cancel, progress, subscribers, enqueued)) = claimed else {
                        continue;
                    };
                    set_cells(&mut state.jobs, &subscribers, &CellState::Running);
                    shared
                        .metrics
                        .cell_queue_wait_us
                        .record_duration(enqueued.elapsed());
                    break Some(WorkItem {
                        key,
                        spec,
                        cancel,
                        progress,
                    });
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(item) = item else { return };
        execute_cell(shared, item);
    }
}

/// What one executed cell produced (errors are carried as strings so a
/// panicking worker and a trace error land in the same `Failed` path).
enum CellOutcome {
    Completed(Box<SimulationReport>),
    Cancelled,
}

fn execute_cell(shared: &Shared, item: WorkItem) {
    shared.metrics.workers_busy.inc();
    let started = Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_cell(shared, &item)));
    shared
        .metrics
        .cell_exec_us
        .record_duration(started.elapsed());
    shared.metrics.workers_busy.dec();
    let result: Result<CellOutcome, String> = match result {
        Ok(result) => result,
        // `as_ref` matters: `&panic` would unsize the `Box` itself into
        // `dyn Any` and every downcast of the payload would miss.
        Err(panic) => Err(format!("cell panicked: {}", panic_text(panic.as_ref()))),
    };
    let mut state = shared.lock();
    let subscribers = match state.pending.remove(&item.key) {
        Some(pending) => pending.subscribers,
        None => Vec::new(),
    };
    match result {
        Ok(CellOutcome::Completed(report)) => {
            shared.metrics.cells_executed.inc();
            complete_cells(&mut state.jobs, &subscribers, &report);
        }
        Ok(CellOutcome::Cancelled) => {
            set_cells(&mut state.jobs, &subscribers, &CellState::Cancelled);
        }
        Err(message) => {
            shared.metrics.cells_failed.inc();
            set_cells(&mut state.jobs, &subscribers, &CellState::Failed(message));
        }
    }
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = panic.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = panic.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn set_cells(jobs: &mut BTreeMap<String, Job>, subscribers: &[(String, usize)], to: &CellState) {
    for (job_id, index) in subscribers {
        if let Some(cell) = jobs
            .get_mut(job_id)
            .and_then(|job| job.cells.get_mut(*index))
        {
            cell.state = to.clone();
        }
    }
}

fn complete_cells(
    jobs: &mut BTreeMap<String, Job>,
    subscribers: &[(String, usize)],
    report: &SimulationReport,
) {
    for (job_id, index) in subscribers {
        if let Some(cell) = jobs
            .get_mut(job_id)
            .and_then(|job| job.cells.get_mut(*index))
        {
            cell.state = CellState::Done;
            cell.report = Some(report.clone());
        }
    }
}

fn open_source(shared: &Shared, spec: &TraceSpec) -> Result<Box<dyn TraceSource>, String> {
    // File-backed sources route reads through the injector only when a
    // plan is armed, so the disarmed hot path stays a plain FileSource.
    let open_file = |path: PathBuf| -> Result<Box<dyn TraceSource>, String> {
        if shared.config.fault.is_armed() {
            FaultyFileSource::open_faulty(&path, shared.config.fault.clone())
                .map(|s| Box::new(s) as Box<dyn TraceSource>)
                .map_err(|err| err.to_string())
        } else {
            FileSource::open(&path)
                .map(|s| Box::new(s) as Box<dyn TraceSource>)
                .map_err(|err| err.to_string())
        }
    };
    match spec {
        TraceSpec::File { path } => open_file(path.clone()),
        TraceSpec::Stored { digest } => open_file(shared.trace_path(digest)),
        TraceSpec::Builtin {
            benchmark,
            cores,
            accesses_per_core,
            seed,
        } => {
            let known = Benchmark::ALL
                .iter()
                .find(|b| b.label() == benchmark)
                .ok_or_else(|| format!("unknown builtin benchmark {benchmark:?}"))?;
            Ok(Box::new(GeneratorSource::new(
                TraceGenerator::new(known.profile()),
                *cores,
                *accesses_per_core,
                *seed,
            )))
        }
    }
}

/// The per-cell [`RunObserver`]: publishes progress, honours the cancel
/// flag, and spills a resumable checkpoint every interval.
struct CellObserver<'a> {
    interval: u64,
    key: &'a CacheKey,
    cancel: &'a AtomicBool,
    progress: &'a CellProgress,
    started: Instant,
    checkpoint_path: &'a Path,
    shared: &'a Shared,
}

impl RunObserver for CellObserver<'_> {
    fn interval(&self) -> u64 {
        self.interval
    }

    fn observe(&mut self, run: RunProgress<'_>) -> RunControl {
        let total = run.total_accesses();
        self.progress.done.store(total, Ordering::Relaxed);
        self.progress.nanos.store(
            u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        if self.cancel.load(Ordering::SeqCst) {
            // The engine returns `Cancelled` with a checkpoint built at
            // this exact boundary; the worker spills it.
            return RunControl::Cancel;
        }
        let checkpoint = run.checkpoint();
        if write_checkpoint(self.shared, self.checkpoint_path, self.key, &checkpoint).is_ok() {
            self.progress.checkpointed.store(total, Ordering::Relaxed);
        }
        RunControl::Continue
    }
}

fn run_cell(shared: &Shared, item: &WorkItem) -> Result<CellOutcome, String> {
    // The span's open/close events land in this worker's ring buffer, so
    // a post-mortem drain answers "what was this worker doing".
    let _span = lad_obs::global_tracer().span("execute_cell", &item.key.to_string());
    // A seeded plan can panic a worker cell here to prove the
    // catch_unwind isolation holds (the panic fails this cell and nothing
    // else).
    shared.config.fault.maybe_panic(FaultSite::Cell);
    let entry = shared
        .registry
        .get(item.spec.scheme)
        .map_err(|err| err.to_string())?;
    let mut source = open_source(shared, &item.spec.trace)?;
    let mut sim = Simulator::with_policy_and_energy_model(
        item.spec.system.clone(),
        entry.config.clone(),
        Arc::clone(&entry.policy),
        EnergyModel::paper_default(),
    );
    let checkpoint_path = shared.checkpoint_path(&item.key);
    let restored = load_checkpoint(shared, &checkpoint_path, &item.key, &item.spec);
    let mut observer = CellObserver {
        interval: shared.config.checkpoint_interval.max(1),
        key: &item.key,
        cancel: &item.cancel,
        progress: &item.progress,
        started: Instant::now(),
        checkpoint_path: &checkpoint_path,
        shared,
    };
    let outcome = match &restored {
        Some(checkpoint) => {
            shared.metrics.cells_resumed.inc();
            sim.resume_source(source.as_mut(), checkpoint, Some(&mut observer))
        }
        None => sim.run_source_observed(source.as_mut(), Some(&mut observer)),
    }
    .map_err(|err| err.to_string())?;
    match outcome {
        RunOutcome::Completed(report) => {
            let _ = std::fs::remove_file(&checkpoint_path);
            // The in-memory cache entry lands regardless; a failed spill
            // only costs restart durability.
            let _ = shared.cache.insert(item.key.clone(), (*report).clone());
            Ok(CellOutcome::Completed(report))
        }
        RunOutcome::Cancelled(checkpoint) => {
            let _ = write_checkpoint(shared, &checkpoint_path, &item.key, &checkpoint);
            item.progress
                .checkpointed
                .store(checkpoint.total_accesses, Ordering::Relaxed);
            Ok(CellOutcome::Cancelled)
        }
    }
}

/// Durably spills a checkpoint as a digest-sealed envelope (temp file +
/// `fsync` + rename), consulting the fault injector at
/// [`FaultSite::CheckpointSpill`].  Successful spills are counted and
/// their duration recorded on the spill histogram.
fn write_checkpoint(
    shared: &Shared,
    path: &Path,
    key: &CacheKey,
    checkpoint: &EngineCheckpoint,
) -> std::io::Result<()> {
    let body = JsonValue::object([("key", key.to_json()), ("checkpoint", checkpoint.to_json())]);
    let started = Instant::now();
    durable::write_sealed(path, body, &shared.config.fault, FaultSite::CheckpointSpill)?;
    shared
        .metrics
        .checkpoint_spill_us
        .record_duration(started.elapsed());
    shared.metrics.checkpoints_written.inc();
    Ok(())
}

/// Loads and validates a spilled checkpoint for `key`.  A corrupt or torn
/// file is quarantined to `<file>.quarantine` (counted in
/// `checkpoints_quarantined`); a digest-valid but stale or mismatched one
/// (including a file for a different spec that landed on the same stem)
/// is ignored.  Either way the cell simply runs from access 0 — never a
/// panic, never a resume from bad state.
fn load_checkpoint(
    shared: &Shared,
    path: &Path,
    key: &CacheKey,
    spec: &CellSpec,
) -> Option<EngineCheckpoint> {
    let note_quarantine = || {
        shared.metrics.checkpoints_quarantined.inc();
    };
    let body = match durable::load_sealed(path) {
        LoadOutcome::Loaded(body) => body,
        LoadOutcome::Missing => return None,
        LoadOutcome::Quarantined(_) => {
            note_quarantine();
            return None;
        }
    };
    let Some(stored) = body.get("key") else {
        durable::quarantine_file(path);
        note_quarantine();
        return None;
    };
    let matches = |field: &str, expected: &str| {
        stored.get(field).and_then(JsonValue::as_str) == Some(expected)
    };
    if !(matches("trace", &key.trace)
        && matches("config", &key.config)
        && matches("scheme", &key.scheme))
    {
        return None;
    }
    let checkpoint = EngineCheckpoint::from_json(body.get("checkpoint")?).ok()?;
    // `resume_source` asserts these; a stale spill must fall back to a
    // fresh run instead of panicking the worker.
    if checkpoint.benchmark != spec.benchmark
        || checkpoint.num_cores != spec.system.num_cores
        || checkpoint.consumed.len() != checkpoint.num_cores
    {
        return None;
    }
    Some(checkpoint)
}
