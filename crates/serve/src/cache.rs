//! Content-addressed result cache: completed [`SimulationReport`]s keyed
//! by `(trace digest, config fingerprint, scheme label)`, held in memory
//! and spilled to a JSON directory so repeat submissions stay free across
//! server restarts.
//!
//! The key is *content*-addressed on the workload side — the trace half is
//! the streaming FNV-1a content digest of the decoded frames
//! ([`lad_traceio::digest`]), so re-encoded or re-uploaded copies of the
//! same trace share cache entries — and *configuration*-addressed on the
//! system side (an FNV-1a fingerprint of the full
//! [`SystemConfig`](lad_common::config::SystemConfig) debug rendering, so
//! any knob change invalidates cleanly).  Scheme identity is the label,
//! which pins the replication configuration through the scheme registry.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use lad_common::fault::{FaultInjector, FaultSite};
use lad_common::json::JsonValue;
use lad_obs::{Counter, MetricsRegistry};
use lad_sim::metrics::SimulationReport;

use crate::durable::{self, LoadOutcome};

/// Consecutive spill failures after which the cache degrades to
/// memory-only operation (an `ENOSPC` degrades immediately: retrying a
/// full disk only burns cycles).
const DEGRADE_AFTER: u64 = 3;

/// The cache key of one (workload, system, scheme) cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// 16-hex-digit content digest of the trace (or builtin-spec
    /// fingerprint for generator workloads).
    pub trace: String,
    /// 16-hex-digit fingerprint of the system configuration.
    pub config: String,
    /// Scheme label (e.g. `"RT-3"`).
    pub scheme: String,
}

impl CacheKey {
    /// The spill-file stem of this key: `<trace>-<config>-<scheme>` with
    /// the scheme label sanitized to filesystem-safe characters.
    pub fn file_stem(&self) -> String {
        let scheme: String = self
            .scheme
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("{}-{}-{}", self.trace, self.config, scheme)
    }

    /// The JSON form stored in spill files and status frames.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("trace", JsonValue::from(self.trace.as_str())),
            ("config", JsonValue::from(self.config.as_str())),
            ("scheme", JsonValue::from(self.scheme.as_str())),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<CacheKey, String> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cache key is missing {name:?}"))
        };
        Ok(CacheKey {
            trace: field("trace")?,
            config: field("config")?,
            scheme: field("scheme")?,
        })
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.trace, self.config, self.scheme)
    }
}

/// In-memory result cache with a digest-sealed JSON spill directory,
/// hit/miss counters (reported by the `stats` verb), and a degraded
/// memory-only mode it falls back to on persistent disk errors so the
/// service keeps answering instead of dying.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    entries: Mutex<BTreeMap<CacheKey, SimulationReport>>,
    hits: Counter,
    misses: Counter,
    quarantined: Counter,
    spill_errors: Counter,
    consecutive_failures: AtomicU64,
    degraded: AtomicBool,
    injector: FaultInjector,
}

impl ResultCache {
    /// Opens a cache over `dir` (created if missing), loading every
    /// spill entry already there that passes digest verification; `None`
    /// keeps the cache memory-only.  Spill writes consult `injector` at
    /// [`FaultSite::CacheSpill`].
    ///
    /// Corrupt or torn spill files are quarantined to
    /// `<entry>.json.quarantine` and counted, not fatal: a half-written
    /// entry from a crashed server must not brick the restart, and must
    /// never be served as a result.
    ///
    /// The cache's hit/miss/quarantine/spill-error counters live on
    /// `registry` (the owning server's per-instance registry) so the
    /// `metrics` verb exports them alongside the rest of the service.
    ///
    /// # Errors
    ///
    /// Fails only when the directory cannot be created or listed.
    pub fn open(
        dir: Option<PathBuf>,
        injector: FaultInjector,
        registry: &MetricsRegistry,
    ) -> std::io::Result<ResultCache> {
        let mut entries = BTreeMap::new();
        let mut quarantined = 0u64;
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                if path.extension().and_then(|e| e.to_str()) != Some("json") {
                    continue;
                }
                match load_entry(&path) {
                    Ok(Some((key, report))) => {
                        entries.insert(key, report);
                    }
                    Ok(None) => {}
                    Err(()) => quarantined += 1,
                }
            }
        }
        let quarantine_counter = registry.counter(
            "lad_serve_cache_quarantined_total",
            "spill files quarantined as corrupt, torn, or schema-foreign",
        );
        quarantine_counter.add(quarantined);
        Ok(ResultCache {
            dir,
            entries: Mutex::new(entries),
            hits: registry.counter("lad_serve_cache_hits_total", "result-cache lookup hits"),
            misses: registry.counter("lad_serve_cache_misses_total", "result-cache lookup misses"),
            quarantined: quarantine_counter,
            spill_errors: registry.counter(
                "lad_serve_cache_spill_errors_total",
                "failed spill writes to the cache directory",
            ),
            consecutive_failures: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            injector,
        })
    }

    /// Looks a key up, counting a hit or miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<SimulationReport> {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        match entries.get(key) {
            Some(report) => {
                self.hits.inc();
                Some(report.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts a completed report and spills it to the cache directory as
    /// a digest-sealed envelope (atomically: temp file + `fsync` +
    /// rename).
    ///
    /// Spill failures degrade, never poison: after [`DEGRADE_AFTER`]
    /// consecutive failures (or one `ENOSPC`) the cache flips to
    /// memory-only mode and stops touching the disk — surfaced through
    /// [`ResultCache::mode`] and the `stats`/`health` verbs.
    ///
    /// # Errors
    ///
    /// Fails when the spill write fails; the in-memory entry is kept
    /// either way, so the running server still serves it.
    pub fn insert(&self, key: CacheKey, report: SimulationReport) -> std::io::Result<()> {
        let body = JsonValue::object([("key", key.to_json()), ("report", report.to_json())]);
        let stem = key.file_stem();
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, report);
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        if self.degraded.load(Ordering::SeqCst) {
            return Ok(());
        }
        let path = dir.join(format!("{stem}.json"));
        match durable::write_sealed(&path, body, &self.injector, FaultSite::CacheSpill) {
            Ok(()) => {
                self.consecutive_failures.store(0, Ordering::SeqCst);
                Ok(())
            }
            Err(err) => {
                self.spill_errors.inc();
                let run = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
                if err.kind() == std::io::ErrorKind::StorageFull || run >= DEGRADE_AFTER {
                    self.degraded.store(true, Ordering::SeqCst);
                }
                Err(err)
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.value()
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.value()
    }

    /// Spill files quarantined (corrupt, torn, or legacy-format) since
    /// this instance opened.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.value()
    }

    /// Failed spill writes since this instance opened.
    pub fn spill_errors(&self) -> u64 {
        self.spill_errors.value()
    }

    /// Whether persistent disk errors have flipped the cache to
    /// memory-only operation.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// The cache's current operating mode: `"durable"` (spilling to
    /// disk), `"degraded"` (has a directory but stopped spilling after
    /// persistent errors), or `"memory"` (opened without a directory).
    pub fn mode(&self) -> &'static str {
        if self.dir.is_none() {
            "memory"
        } else if self.is_degraded() {
            "degraded"
        } else {
            "durable"
        }
    }
}

/// `Ok(Some(..))` for a verified entry, `Ok(None)` for a missing file,
/// `Err(())` for a corrupt one (already quarantined).
#[allow(clippy::result_unit_err)]
fn load_entry(path: &Path) -> Result<Option<(CacheKey, SimulationReport)>, ()> {
    let body = match durable::load_sealed(path) {
        LoadOutcome::Loaded(body) => body,
        LoadOutcome::Missing => return Ok(None),
        LoadOutcome::Quarantined(_) => return Err(()),
    };
    let parse = || -> Option<(CacheKey, SimulationReport)> {
        let key = CacheKey::from_json(body.get("key")?).ok()?;
        let report = SimulationReport::from_json(body.get("report")?).ok()?;
        Some((key, report))
    };
    match parse() {
        Some(entry) => Ok(Some(entry)),
        None => {
            // Digest-valid but schema-foreign: quarantine it too.
            durable::quarantine_file(path);
            Err(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_common::config::SystemConfig;
    use lad_replication::config::ReplicationConfig;
    use lad_sim::engine::Simulator;
    use lad_trace::benchmarks::Benchmark;
    use lad_trace::generator::TraceGenerator;

    fn small_report() -> SimulationReport {
        let system = SystemConfig::small_test();
        let trace =
            TraceGenerator::new(Benchmark::Barnes.profile()).generate(system.num_cores, 60, 3);
        let mut sim = Simulator::new(system, ReplicationConfig::locality_aware(3));
        sim.run(&trace)
    }

    fn key(scheme: &str) -> CacheKey {
        CacheKey {
            trace: "00112233aabbccdd".into(),
            config: "ffeeddccbbaa0011".into(),
            scheme: scheme.into(),
        }
    }

    #[test]
    fn cache_spills_and_reloads_across_instances() {
        let dir = std::env::temp_dir().join(format!("lad-serve-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let report = small_report();

        let cache = ResultCache::open(
            Some(dir.clone()),
            FaultInjector::disarmed(),
            &MetricsRegistry::new(),
        )
        .unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.mode(), "durable");
        assert!(cache.lookup(&key("RT-3")).is_none());
        assert_eq!(cache.misses(), 1);
        cache.insert(key("RT-3"), report.clone()).unwrap();
        let hit = cache.lookup(&key("RT-3")).unwrap();
        assert_eq!(hit.to_json().pretty(), report.to_json().pretty());
        assert_eq!(cache.hits(), 1);

        // A second instance over the same directory sees the entry;
        // corrupt extra files are quarantined, not fatal, and never
        // served.
        std::fs::write(dir.join("garbage.json"), "{not json").unwrap();
        std::fs::write(dir.join("not-a-report.json"), "{\"key\": 3}").unwrap();
        let reloaded = ResultCache::open(
            Some(dir.clone()),
            FaultInjector::disarmed(),
            &MetricsRegistry::new(),
        )
        .unwrap();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.quarantined(), 2);
        assert!(dir.join("garbage.json.quarantine").is_file());
        assert!(!dir.join("garbage.json").exists());
        let hit = reloaded.lookup(&key("RT-3")).unwrap();
        assert_eq!(hit.to_json().pretty(), report.to_json().pretty());
        // Different scheme, same trace/config: distinct entry.
        assert!(reloaded.lookup(&key("S-NUCA")).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn one_flipped_byte_in_a_spilled_entry_is_quarantined_not_served() {
        let dir = std::env::temp_dir().join(format!("lad-serve-cache-flip-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let report = small_report();
        let cache = ResultCache::open(
            Some(dir.clone()),
            FaultInjector::disarmed(),
            &MetricsRegistry::new(),
        )
        .unwrap();
        cache.insert(key("RT-3"), report).unwrap();
        drop(cache);

        let path = dir.join(format!("{}.json", key("RT-3").file_stem()));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let reloaded = ResultCache::open(
            Some(dir.clone()),
            FaultInjector::disarmed(),
            &MetricsRegistry::new(),
        )
        .unwrap();
        assert!(
            reloaded.lookup(&key("RT-3")).is_none(),
            "corrupt entry served"
        );
        assert_eq!(reloaded.quarantined(), 1);
        assert!(durable::quarantine_path(&path).is_file());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_spill_errors_degrade_to_memory_only() {
        use lad_common::fault::FaultPlan;

        let dir =
            std::env::temp_dir().join(format!("lad-serve-cache-degrade-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let report = small_report();
        // One ENOSPC is enough to degrade.
        let plan = FaultPlan::parse("cache-spill:1:enospc").unwrap();
        let cache = ResultCache::open(
            Some(dir.clone()),
            FaultInjector::armed(plan),
            &MetricsRegistry::new(),
        )
        .unwrap();
        let err = cache.insert(key("RT-3"), report.clone()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        assert!(cache.is_degraded());
        assert_eq!(cache.mode(), "degraded");
        assert_eq!(cache.spill_errors(), 1);
        // The in-memory entry still serves, and later inserts succeed
        // memory-only without touching the disk.
        assert!(cache.lookup(&key("RT-3")).is_some());
        cache.insert(key("RT-8"), report).unwrap();
        assert!(cache.lookup(&key("RT-8")).is_some());
        assert!(!dir
            .join(format!("{}.json", key("RT-8").file_stem()))
            .exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_stems_separate_schemes_and_stay_fs_safe() {
        assert_eq!(
            key("ASR-0.50").file_stem(),
            "00112233aabbccdd-ffeeddccbbaa0011-ASR_0_50"
        );
        assert_ne!(key("RT-3").file_stem(), key("RT-8").file_stem());
        assert!(!key("a/b\\c").file_stem().contains(['/', '\\']));
    }
}
