//! Content-addressed result cache: completed [`SimulationReport`]s keyed
//! by `(trace digest, config fingerprint, scheme label)`, held in memory
//! and spilled to a JSON directory so repeat submissions stay free across
//! server restarts.
//!
//! The key is *content*-addressed on the workload side — the trace half is
//! the streaming FNV-1a content digest of the decoded frames
//! ([`lad_traceio::digest`]), so re-encoded or re-uploaded copies of the
//! same trace share cache entries — and *configuration*-addressed on the
//! system side (an FNV-1a fingerprint of the full
//! [`SystemConfig`](lad_common::config::SystemConfig) debug rendering, so
//! any knob change invalidates cleanly).  Scheme identity is the label,
//! which pins the replication configuration through the scheme registry.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use lad_common::json::JsonValue;
use lad_sim::metrics::SimulationReport;

/// The cache key of one (workload, system, scheme) cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// 16-hex-digit content digest of the trace (or builtin-spec
    /// fingerprint for generator workloads).
    pub trace: String,
    /// 16-hex-digit fingerprint of the system configuration.
    pub config: String,
    /// Scheme label (e.g. `"RT-3"`).
    pub scheme: String,
}

impl CacheKey {
    /// The spill-file stem of this key: `<trace>-<config>-<scheme>` with
    /// the scheme label sanitized to filesystem-safe characters.
    pub fn file_stem(&self) -> String {
        let scheme: String = self
            .scheme
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("{}-{}-{}", self.trace, self.config, scheme)
    }

    /// The JSON form stored in spill files and status frames.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("trace", JsonValue::from(self.trace.as_str())),
            ("config", JsonValue::from(self.config.as_str())),
            ("scheme", JsonValue::from(self.scheme.as_str())),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<CacheKey, String> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cache key is missing {name:?}"))
        };
        Ok(CacheKey {
            trace: field("trace")?,
            config: field("config")?,
            scheme: field("scheme")?,
        })
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.trace, self.config, self.scheme)
    }
}

/// In-memory result cache with a JSON spill directory and hit/miss
/// counters (reported by the `stats` verb).
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    entries: Mutex<BTreeMap<CacheKey, SimulationReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Opens a cache over `dir` (created if missing), loading every
    /// well-formed spill entry already there; `None` keeps the cache
    /// memory-only.
    ///
    /// Malformed spill files are skipped, not fatal: a half-written entry
    /// from a crashed server must not brick the restart.
    ///
    /// # Errors
    ///
    /// Fails only when the directory cannot be created or listed.
    pub fn open(dir: Option<PathBuf>) -> std::io::Result<ResultCache> {
        let mut entries = BTreeMap::new();
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                if path.extension().and_then(|e| e.to_str()) != Some("json") {
                    continue;
                }
                if let Some((key, report)) = load_entry(&path) {
                    entries.insert(key, report);
                }
            }
        }
        Ok(ResultCache {
            dir,
            entries: Mutex::new(entries),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Looks a key up, counting a hit or miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<SimulationReport> {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        match entries.get(key) {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(report.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a completed report and spills it to the cache directory
    /// (atomically, via a rename).
    ///
    /// # Errors
    ///
    /// Fails when the spill write fails; the in-memory entry is kept
    /// either way, so the running server still serves it.
    pub fn insert(&self, key: CacheKey, report: SimulationReport) -> std::io::Result<()> {
        let json = JsonValue::object([("key", key.to_json()), ("report", report.to_json())]);
        let stem = key.file_stem();
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, report);
        if let Some(dir) = &self.dir {
            let tmp = dir.join(format!("{stem}.tmp"));
            let path = dir.join(format!("{stem}.json"));
            std::fs::write(&tmp, json.pretty())?;
            std::fs::rename(&tmp, &path)?;
        }
        Ok(())
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

fn load_entry(path: &Path) -> Option<(CacheKey, SimulationReport)> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = JsonValue::parse(&text).ok()?;
    let key = CacheKey::from_json(json.get("key")?).ok()?;
    let report = SimulationReport::from_json(json.get("report")?).ok()?;
    Some((key, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_common::config::SystemConfig;
    use lad_replication::config::ReplicationConfig;
    use lad_sim::engine::Simulator;
    use lad_trace::benchmarks::Benchmark;
    use lad_trace::generator::TraceGenerator;

    fn small_report() -> SimulationReport {
        let system = SystemConfig::small_test();
        let trace =
            TraceGenerator::new(Benchmark::Barnes.profile()).generate(system.num_cores, 60, 3);
        let mut sim = Simulator::new(system, ReplicationConfig::locality_aware(3));
        sim.run(&trace)
    }

    fn key(scheme: &str) -> CacheKey {
        CacheKey {
            trace: "00112233aabbccdd".into(),
            config: "ffeeddccbbaa0011".into(),
            scheme: scheme.into(),
        }
    }

    #[test]
    fn cache_spills_and_reloads_across_instances() {
        let dir = std::env::temp_dir().join(format!("lad-serve-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let report = small_report();

        let cache = ResultCache::open(Some(dir.clone())).unwrap();
        assert!(cache.is_empty());
        assert!(cache.lookup(&key("RT-3")).is_none());
        assert_eq!(cache.misses(), 1);
        cache.insert(key("RT-3"), report.clone()).unwrap();
        let hit = cache.lookup(&key("RT-3")).unwrap();
        assert_eq!(hit.to_json().pretty(), report.to_json().pretty());
        assert_eq!(cache.hits(), 1);

        // A second instance over the same directory sees the entry; a
        // corrupt extra file is skipped, not fatal.
        std::fs::write(dir.join("garbage.json"), "{not json").unwrap();
        std::fs::write(dir.join("not-a-report.json"), "{\"key\": 3}").unwrap();
        let reloaded = ResultCache::open(Some(dir.clone())).unwrap();
        assert_eq!(reloaded.len(), 1);
        let hit = reloaded.lookup(&key("RT-3")).unwrap();
        assert_eq!(hit.to_json().pretty(), report.to_json().pretty());
        // Different scheme, same trace/config: distinct entry.
        assert!(reloaded.lookup(&key("S-NUCA")).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_stems_separate_schemes_and_stay_fs_safe() {
        assert_eq!(
            key("ASR-0.50").file_stem(),
            "00112233aabbccdd-ffeeddccbbaa0011-ASR_0_50"
        );
        assert_ne!(key("RT-3").file_stem(), key("RT-8").file_stem());
        assert!(!key("a/b\\c").file_stem().contains(['/', '\\']));
    }
}
