//! Digest-sealed durable JSON files with quarantine-on-corruption.
//!
//! Every durable artifact of the service (result-cache entries, engine
//! checkpoints) is stored as a *sealed* envelope:
//!
//! ```text
//! { "digest": "<16-hex FNV-1a of the body's canonical pretty form>",
//!   "body":   { ...artifact... } }
//! ```
//!
//! Writes go through [`lad_common::fs::atomic_write`] (temp file, then
//! `fsync`, rename, directory `fsync`), so a crash can only ever leave the old
//! bytes, the new bytes, or — if the storage layer itself misbehaves — a
//! torn file that the digest check catches on load.  [`load_sealed`] never
//! lets a corrupt file brick a boot or poison a result: anything that
//! fails to parse or verify is renamed to `<file>.quarantine` (preserved
//! for post-mortem, invisible to future loads) and reported as
//! [`LoadOutcome::Quarantined`], and the caller simply recomputes.

use std::path::{Path, PathBuf};

use lad_common::fault::{FaultInjector, FaultSite};
use lad_common::json::JsonValue;

use crate::protocol::{fingerprint, fingerprint_hex};

/// Wraps an artifact body in the sealed envelope.
pub fn seal(body: JsonValue) -> JsonValue {
    let digest = fingerprint_hex(fingerprint(&body.pretty()));
    JsonValue::object([("digest", JsonValue::from(digest)), ("body", body)])
}

/// Durably writes `body` to `path` as a sealed envelope, consulting
/// `injector` at `site` (see
/// [`atomic_write_faulty`](lad_common::fs::atomic_write_faulty) for the
/// injected failure modes).
///
/// # Errors
///
/// The underlying (or injected) I/O error.
pub fn write_sealed(
    path: &Path,
    body: JsonValue,
    injector: &FaultInjector,
    site: FaultSite,
) -> std::io::Result<()> {
    lad_common::fs::atomic_write_faulty(path, seal(body).pretty().as_bytes(), injector, site)
}

/// The result of loading a sealed file.
#[derive(Debug)]
pub enum LoadOutcome {
    /// The file verified; here is its body.
    Loaded(JsonValue),
    /// No file at that path.
    Missing,
    /// The file existed but failed to parse or verify; it has been renamed
    /// to the returned `.quarantine` path (best effort — the path is the
    /// intended destination even if the rename itself failed).
    Quarantined(PathBuf),
}

/// Loads and digest-verifies a sealed file.
///
/// A file that is unreadable, unparseable, missing its envelope fields, or
/// whose body does not hash to its recorded digest (one flipped byte is
/// enough) is moved aside to `<path>.quarantine` and reported as
/// [`LoadOutcome::Quarantined`] — never an error, never a wrong body.
pub fn load_sealed(path: &Path) -> LoadOutcome {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Missing,
        Err(_) => return quarantine(path),
    };
    let Ok(envelope) = JsonValue::parse(&text) else {
        return quarantine(path);
    };
    let (Some(digest), Some(body)) = (
        envelope.get("digest").and_then(JsonValue::as_str),
        envelope.get("body"),
    ) else {
        return quarantine(path);
    };
    if fingerprint_hex(fingerprint(&body.pretty())) != digest {
        return quarantine(path);
    }
    LoadOutcome::Loaded(body.clone())
}

/// Moves a corrupt file aside to `<path>.quarantine` (overwriting an older
/// quarantined copy of the same file) and returns the quarantine path.
/// Best effort: the rename's failure is not propagated — the caller is
/// already on a recovery path.
pub fn quarantine_file(path: &Path) -> PathBuf {
    let target = quarantine_path(path);
    let _ = std::fs::rename(path, &target);
    target
}

fn quarantine(path: &Path) -> LoadOutcome {
    LoadOutcome::Quarantined(quarantine_file(path))
}

/// The quarantine destination of a durable file: its path with
/// `.quarantine` appended (`entry.json` → `entry.json.quarantine`).
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".quarantine");
    PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir()
                .join(format!("lad-serve-durable-{tag}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn body() -> JsonValue {
        JsonValue::object([
            ("kind", JsonValue::from("test")),
            ("value", JsonValue::from(42u64)),
        ])
    }

    #[test]
    fn sealed_round_trip_verifies() {
        let dir = TempDir::new("roundtrip");
        let path = dir.0.join("entry.json");
        write_sealed(
            &path,
            body(),
            &FaultInjector::disarmed(),
            FaultSite::CacheSpill,
        )
        .unwrap();
        match load_sealed(&path) {
            LoadOutcome::Loaded(loaded) => assert_eq!(loaded, body()),
            other => panic!("expected Loaded, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_missing_not_quarantined() {
        let dir = TempDir::new("missing");
        assert!(matches!(
            load_sealed(&dir.0.join("nope.json")),
            LoadOutcome::Missing
        ));
    }

    #[test]
    fn every_single_byte_flip_is_caught_and_quarantined() {
        let dir = TempDir::new("byteflip");
        let path = dir.0.join("entry.json");
        write_sealed(
            &path,
            body(),
            &FaultInjector::disarmed(),
            FaultSite::CacheSpill,
        )
        .unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip one byte at a few positions spanning envelope and body.
        for position in [0, good.len() / 3, good.len() / 2, good.len() - 2] {
            let mut bad = good.clone();
            bad[position] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            match load_sealed(&path) {
                LoadOutcome::Quarantined(target) => {
                    assert!(target.to_string_lossy().ends_with(".quarantine"));
                    assert!(target.is_file(), "corrupt bytes preserved for post-mortem");
                    assert!(!path.exists(), "corrupt file moved out of the way");
                }
                other => panic!("flip at {position} not caught: {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_and_legacy_files_are_quarantined() {
        let dir = TempDir::new("torn");
        let path = dir.0.join("entry.json");
        write_sealed(
            &path,
            body(),
            &FaultInjector::disarmed(),
            FaultSite::CacheSpill,
        )
        .unwrap();
        let good = std::fs::read(&path).unwrap();
        // A torn prefix (what a mid-write crash leaves).
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(load_sealed(&path), LoadOutcome::Quarantined(_)));
        // A legacy unsealed file (valid JSON, no envelope).
        std::fs::write(&path, body().pretty()).unwrap();
        assert!(matches!(load_sealed(&path), LoadOutcome::Quarantined(_)));
        // After quarantine the slot reads as missing and can be rewritten.
        assert!(matches!(load_sealed(&path), LoadOutcome::Missing));
        write_sealed(
            &path,
            body(),
            &FaultInjector::disarmed(),
            FaultSite::CacheSpill,
        )
        .unwrap();
        assert!(matches!(load_sealed(&path), LoadOutcome::Loaded(_)));
    }
}
