//! Multi-tenant experiment service for the locality-aware replication
//! simulator: a TCP daemon (`lad-serve`) that schedules (workload × scheme)
//! simulation cells across a persistent worker pool, caches results by
//! content, and checkpoints long cells so cancelled or killed work resumes
//! instead of recomputing — plus the matching client library and CLI
//! (`lad-client`).
//!
//! The wire protocol is newline-delimited JSON over plain TCP (see
//! [`protocol`] for the frame grammar and error codes, and the README's
//! "Experiment service" section for the per-verb specification), built
//! entirely on `std::net` and the workspace's own
//! [`lad_common::json`] codec — no external dependencies.
//!
//! # Quick start
//!
//! ```
//! use std::time::Duration;
//! use lad_serve::client::Client;
//! use lad_serve::protocol::{JobSpec, SystemPreset, TraceSpec};
//! use lad_serve::server::{Server, ServerConfig};
//!
//! let dir = std::env::temp_dir().join(format!("lad-serve-doc-{}", std::process::id()));
//! let mut config = ServerConfig::new(&dir);
//! config.workers = 2;
//! let server = Server::spawn(config).unwrap();
//!
//! let mut client = Client::connect(server.addr().to_string()).unwrap();
//! let receipt = client
//!     .submit(&JobSpec {
//!         trace: TraceSpec::Builtin {
//!             benchmark: "BARNES".into(),
//!             cores: 16,
//!             accesses_per_core: 100,
//!             seed: 7,
//!         },
//!         schemes: vec!["RT-3".into()],
//!         system: SystemPreset::SmallTest,
//!     })
//!     .unwrap();
//! let job = receipt.get("job").and_then(|j| j.as_str()).unwrap().to_string();
//! let result = client.wait(&job, Duration::from_millis(20)).unwrap();
//! assert_eq!(result.get("results").and_then(|r| r.as_array()).unwrap().len(), 1);
//!
//! client.shutdown().unwrap();
//! server.join();
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod durable;
pub mod protocol;
pub mod server;

pub use cache::{CacheKey, ResultCache};
pub use client::{Client, ClientError, RetryPolicy};
pub use protocol::{JobSpec, ServeError, SystemPreset, TraceSpec, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig};
