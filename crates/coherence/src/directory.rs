//! The home-directory entry and its request state machine.
//!
//! One [`DirectoryEntry`] lives in the LLC tag array of a line's home slice
//! (the *in-cache directory* organization of Section 2.1).  It tracks which
//! cores' local cache hierarchies (private L1 caches plus, under the
//! locality-aware protocol, the local LLC replica) hold a copy, using the
//! ACKwise limited-pointer list, and serializes all requests for the line.
//!
//! The entry's handlers do not move data or send messages themselves; they
//! return *outcomes* describing what the protocol engine must do (fetch from
//! memory, downgrade the owner, invalidate these sharers) and update the
//! sharer-tracking state.  This keeps them synchronous and exhaustively
//! testable while the timing lives in `lad-sim`.

use lad_common::types::CoreId;

use crate::ackwise::{AckwiseSharers, InvalidationTargets};
use crate::mesi::MesiState;

/// What a reader is granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadGrant {
    /// The line is granted in Shared state.
    Shared,
    /// The requester is the only sharer, so the line is granted in Exclusive
    /// state (the MESI "E" optimization — a later write needs no upgrade
    /// request).
    Exclusive,
}

impl ReadGrant {
    /// The MESI state installed in the requester's cache.
    pub fn as_state(self) -> MesiState {
        match self {
            ReadGrant::Shared => MesiState::Shared,
            ReadGrant::Exclusive => MesiState::Exclusive,
        }
    }
}

/// Outcome of a read request at the home directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The line is not cached anywhere on chip and must be fetched from
    /// off-chip memory.
    pub needs_memory_fetch: bool,
    /// A remote owner holds the line in M/E and must be downgraded to Shared
    /// (with a synchronous write-back if dirty) before the data is returned.
    pub downgrade_owner: Option<CoreId>,
    /// The state granted to the requester.
    pub grant: ReadGrant,
}

/// Outcome of a write (read-exclusive / upgrade) request at the home
/// directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The line must be fetched from off-chip memory first.
    pub needs_memory_fetch: bool,
    /// Copies that must be invalidated (and acknowledged) before the write
    /// is granted.  Never includes the requester.
    pub invalidations: InvalidationTargets,
    /// A remote owner that may hold dirty data which must be transferred to
    /// the requester (or written back) as part of its invalidation.
    pub prior_owner: Option<CoreId>,
}

/// Global state of a line at its home directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum HomeState {
    /// No on-chip cache holds the line (it may still be resident in the home
    /// LLC slice's data array).
    #[default]
    Uncached,
    /// One or more cores hold read-only copies.
    Shared,
    /// Exactly one core owns the line in M or E.
    Exclusive,
}

/// A home-directory entry: sharer tracking plus the request state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryEntry {
    state: HomeState,
    sharers: AckwiseSharers,
    owner: Option<CoreId>,
}

impl DirectoryEntry {
    /// Creates an entry with no sharers, using `ackwise_pointers` hardware
    /// pointers.
    ///
    /// # Panics
    ///
    /// Panics if `ackwise_pointers` is zero.
    pub fn new(ackwise_pointers: usize) -> Self {
        DirectoryEntry {
            state: HomeState::Uncached,
            sharers: AckwiseSharers::new(ackwise_pointers),
            owner: None,
        }
    }

    /// Rebuilds an entry from its checkpointed parts.  The home state is not
    /// a free variable — it is derived from the parts (an owner means
    /// Exclusive, sharers without an owner mean Shared, otherwise Uncached),
    /// so a checkpoint only stores the sharer list and the owner.
    ///
    /// # Panics
    ///
    /// Panics if the parts are inconsistent (see
    /// [`DirectoryEntry::local_invariant_error`]), e.g. an owner that is not
    /// the sole tracked sharer.
    pub fn from_parts(sharers: AckwiseSharers, owner: Option<CoreId>) -> Self {
        let state = if owner.is_some() {
            HomeState::Exclusive
        } else if sharers.count() > 0 {
            HomeState::Shared
        } else {
            HomeState::Uncached
        };
        let entry = DirectoryEntry {
            state,
            sharers,
            owner,
        };
        if let Some((name, details)) = entry.local_invariant_error() {
            panic!("checkpointed directory entry violates [{name}]: {details}");
        }
        entry
    }

    /// Number of cores whose local hierarchy holds a copy.
    pub fn sharer_count(&self) -> usize {
        self.sharers.count()
    }

    /// `true` if no core holds a copy.
    pub fn is_uncached(&self) -> bool {
        matches!(self.state, HomeState::Uncached)
    }

    /// `true` if exactly one core owns the line in M/E.
    pub fn has_exclusive_owner(&self) -> bool {
        matches!(self.state, HomeState::Exclusive)
    }

    /// The exclusive owner, if any.
    pub fn owner(&self) -> Option<CoreId> {
        self.owner
    }

    /// The underlying ACKwise sharer list (read-only).
    pub fn sharers(&self) -> &AckwiseSharers {
        &self.sharers
    }

    /// `true` if `core` is known to hold a copy.
    pub fn is_sharer(&self, core: CoreId) -> bool {
        self.sharers.is_tracked_sharer(core) || self.owner == Some(core)
    }

    /// Checks the entry-local invariants shared with the `lad-check`
    /// catalog: `ackwise-pointer-capacity` (delegated to
    /// [`AckwiseSharers::local_invariant_error`]) and
    /// `home-state-consistent` (Uncached ⇒ no sharers and no owner;
    /// Shared ⇒ sharers but no owner; Exclusive ⇒ exactly one tracked
    /// sharer, the owner).
    ///
    /// Returns the catalog name and a description of the first violated
    /// invariant, or `None` when the entry is consistent.  Cross-entry
    /// invariants (inclusion, SWMR) need visibility over the caches and
    /// live in `lad-check` itself.
    pub fn local_invariant_error(&self) -> Option<(&'static str, String)> {
        if let Some(err) = self.sharers.local_invariant_error() {
            return Some(err);
        }
        let err = match self.state {
            HomeState::Uncached => {
                if self.sharers.count() != 0 {
                    Some(format!("Uncached with {} sharers", self.sharers.count()))
                } else if self.owner.is_some() {
                    Some(format!("Uncached with owner {:?}", self.owner))
                } else {
                    None
                }
            }
            HomeState::Shared => {
                if self.sharers.count() == 0 {
                    Some("Shared with no sharers".to_string())
                } else if self.owner.is_some() {
                    Some(format!("Shared with owner {:?}", self.owner))
                } else {
                    None
                }
            }
            HomeState::Exclusive => match self.owner {
                None => Some("Exclusive with no owner".to_string()),
                Some(owner) => {
                    if self.sharers.count() != 1 {
                        Some(format!("Exclusive with {} sharers", self.sharers.count()))
                    } else if !self.sharers.is_tracked_sharer(owner) {
                        Some(format!("Exclusive owner {owner:?} is not tracked"))
                    } else {
                        None
                    }
                }
            },
        };
        err.map(|details| ("home-state-consistent", details))
    }

    #[cfg(debug_assertions)]
    fn debug_check_local_invariants(&self) {
        if let Some((name, details)) = self.local_invariant_error() {
            panic!("protocol invariant violated [{name}]: {details}");
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_check_local_invariants(&self) {}

    /// Handles a read (load or instruction fetch) request from `requester`.
    ///
    /// Updates the sharer list and returns the actions the engine must
    /// perform.  The serialization of conflicting requests is the caller's
    /// responsibility (the home processes one request at a time).
    pub fn handle_read(&mut self, requester: CoreId) -> ReadOutcome {
        let outcome = self.handle_read_inner(requester);
        self.debug_check_local_invariants();
        outcome
    }

    fn handle_read_inner(&mut self, requester: CoreId) -> ReadOutcome {
        match self.state {
            HomeState::Uncached => {
                self.state = HomeState::Exclusive;
                self.owner = Some(requester);
                self.sharers.add(requester);
                ReadOutcome {
                    needs_memory_fetch: true,
                    downgrade_owner: None,
                    grant: ReadGrant::Exclusive,
                }
            }
            HomeState::Exclusive => {
                let Some(owner) = self.owner else {
                    panic!(
                        "protocol invariant violated [home-state-consistent]: \
                         Exclusive entry has no owner"
                    );
                };
                if owner == requester {
                    // The requester's hierarchy already owns the line (e.g. an
                    // L1 miss that hits the local LLC replica path); re-grant.
                    ReadOutcome {
                        needs_memory_fetch: false,
                        downgrade_owner: None,
                        grant: ReadGrant::Exclusive,
                    }
                } else {
                    self.state = HomeState::Shared;
                    self.owner = None;
                    self.sharers.add(requester);
                    ReadOutcome {
                        needs_memory_fetch: false,
                        downgrade_owner: Some(owner),
                        grant: ReadGrant::Shared,
                    }
                }
            }
            HomeState::Shared => {
                self.sharers.add(requester);
                ReadOutcome {
                    needs_memory_fetch: false,
                    downgrade_owner: None,
                    grant: ReadGrant::Shared,
                }
            }
        }
    }

    /// Handles a write (read-exclusive or upgrade) request from `requester`.
    ///
    /// All other copies are invalidated (the single-writer multiple-reader
    /// invariant) and the requester becomes the exclusive owner.
    pub fn handle_write(&mut self, requester: CoreId) -> WriteOutcome {
        let outcome = self.handle_write_inner(requester);
        self.debug_check_local_invariants();
        outcome
    }

    fn handle_write_inner(&mut self, requester: CoreId) -> WriteOutcome {
        match self.state {
            HomeState::Uncached => {
                self.state = HomeState::Exclusive;
                self.owner = Some(requester);
                self.sharers.add(requester);
                WriteOutcome {
                    needs_memory_fetch: true,
                    invalidations: InvalidationTargets::Exact(Vec::new()),
                    prior_owner: None,
                }
            }
            HomeState::Exclusive => {
                let Some(owner) = self.owner else {
                    panic!(
                        "protocol invariant violated [home-state-consistent]: \
                         Exclusive entry has no owner"
                    );
                };
                if owner == requester {
                    WriteOutcome {
                        needs_memory_fetch: false,
                        invalidations: InvalidationTargets::Exact(Vec::new()),
                        prior_owner: None,
                    }
                } else {
                    self.sharers.clear();
                    self.sharers.add(requester);
                    self.owner = Some(requester);
                    WriteOutcome {
                        needs_memory_fetch: false,
                        invalidations: InvalidationTargets::Exact(vec![owner]),
                        prior_owner: Some(owner),
                    }
                }
            }
            HomeState::Shared => {
                let invalidations = self.sharers.invalidation_targets(requester);
                self.sharers.clear();
                self.sharers.add(requester);
                self.state = HomeState::Exclusive;
                self.owner = Some(requester);
                WriteOutcome {
                    needs_memory_fetch: false,
                    invalidations,
                    prior_owner: None,
                }
            }
        }
    }

    /// Records that `core`'s local hierarchy no longer holds any copy of the
    /// line (its last copy was evicted or invalidated and acknowledged).
    pub fn handle_eviction(&mut self, core: CoreId) {
        self.sharers.remove(core);
        if self.owner == Some(core) {
            self.owner = None;
        }
        if self.sharers.is_empty() {
            self.state = HomeState::Uncached;
            self.owner = None;
        } else if self.owner.is_none() {
            self.state = HomeState::Shared;
        }
        self.debug_check_local_invariants();
    }

    /// Invalidate-all bookkeeping helper: drops every sharer (used when the
    /// home line itself is evicted from the LLC, which back-invalidates all
    /// copies because the LLC is inclusive).
    pub fn clear_all_sharers(&mut self) {
        self.sharers.clear();
        self.owner = None;
        self.state = HomeState::Uncached;
        self.debug_check_local_invariants();
    }

    /// All cores that must be probed when the home line is evicted from the
    /// inclusive LLC (every tracked sharer; in global mode, everyone).
    pub fn back_invalidation_targets(&self, num_cores: usize) -> Vec<CoreId> {
        if self.sharers.is_global() {
            (0..num_cores).map(CoreId::new).collect()
        } else {
            let mut cores: Vec<CoreId> = self.sharers.tracked().to_vec();
            if let Some(owner) = self.owner {
                if !cores.contains(&owner) {
                    cores.push(owner);
                }
            }
            cores
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    fn entry() -> DirectoryEntry {
        DirectoryEntry::new(4)
    }

    #[test]
    fn first_read_fetches_from_memory_and_grants_exclusive() {
        let mut e = entry();
        assert!(e.is_uncached());
        let out = e.handle_read(core(1));
        assert!(out.needs_memory_fetch);
        assert_eq!(out.downgrade_owner, None);
        assert_eq!(out.grant, ReadGrant::Exclusive);
        assert_eq!(out.grant.as_state(), MesiState::Exclusive);
        assert!(e.has_exclusive_owner());
        assert_eq!(e.owner(), Some(core(1)));
        assert_eq!(e.sharer_count(), 1);
        assert!(e.is_sharer(core(1)));
    }

    #[test]
    fn second_reader_downgrades_owner() {
        let mut e = entry();
        e.handle_read(core(1));
        let out = e.handle_read(core(2));
        assert!(!out.needs_memory_fetch);
        assert_eq!(out.downgrade_owner, Some(core(1)));
        assert_eq!(out.grant, ReadGrant::Shared);
        assert!(!e.has_exclusive_owner());
        assert_eq!(e.sharer_count(), 2);
        // Third reader: plain shared grant, no downgrade.
        let out = e.handle_read(core(3));
        assert_eq!(out.downgrade_owner, None);
        assert_eq!(out.grant, ReadGrant::Shared);
        assert_eq!(e.sharer_count(), 3);
    }

    #[test]
    fn reread_by_owner_is_silent() {
        let mut e = entry();
        e.handle_read(core(5));
        let out = e.handle_read(core(5));
        assert!(!out.needs_memory_fetch);
        assert_eq!(out.downgrade_owner, None);
        assert_eq!(out.grant, ReadGrant::Exclusive);
        assert_eq!(e.sharer_count(), 1);
    }

    #[test]
    fn write_to_uncached_line_fetches_memory() {
        let mut e = entry();
        let out = e.handle_write(core(0));
        assert!(out.needs_memory_fetch);
        assert_eq!(out.invalidations.expected_acks(), 0);
        assert_eq!(out.prior_owner, None);
        assert!(e.has_exclusive_owner());
        assert_eq!(e.owner(), Some(core(0)));
    }

    #[test]
    fn write_invalidates_all_readers() {
        let mut e = entry();
        e.handle_read(core(1));
        e.handle_read(core(2));
        e.handle_read(core(3));
        let out = e.handle_write(core(2));
        match &out.invalidations {
            InvalidationTargets::Exact(cores) => {
                assert_eq!(cores.len(), 2);
                assert!(cores.contains(&core(1)));
                assert!(cores.contains(&core(3)));
                assert!(!cores.contains(&core(2)));
            }
            other => panic!("expected exact invalidations, got {other:?}"),
        }
        assert!(!out.needs_memory_fetch);
        assert_eq!(e.owner(), Some(core(2)));
        assert_eq!(e.sharer_count(), 1);
    }

    #[test]
    fn write_steals_line_from_remote_owner() {
        let mut e = entry();
        e.handle_write(core(1));
        let out = e.handle_write(core(2));
        assert_eq!(out.prior_owner, Some(core(1)));
        assert_eq!(out.invalidations.expected_acks(), 1);
        assert_eq!(e.owner(), Some(core(2)));
        assert_eq!(e.sharer_count(), 1);
        // Re-write by the same owner is silent.
        let out = e.handle_write(core(2));
        assert_eq!(out.prior_owner, None);
        assert_eq!(out.invalidations.expected_acks(), 0);
    }

    #[test]
    fn migratory_pattern_read_write_by_alternating_cores() {
        // LU-NC-style migratory sharing: each core reads then writes.
        let mut e = entry();
        for step in 0..6 {
            let c = core(step % 2);
            e.handle_read(c);
            let w = e.handle_write(c);
            // The previous owner (the other core) is invalidated on the read
            // (downgrade) or on the write.
            assert!(w.invalidations.expected_acks() <= 1);
            assert_eq!(e.owner(), Some(c));
            assert_eq!(e.sharer_count(), 1, "step {step}");
        }
    }

    #[test]
    fn eviction_bookkeeping() {
        let mut e = entry();
        e.handle_read(core(1));
        e.handle_read(core(2));
        e.handle_eviction(core(1));
        assert_eq!(e.sharer_count(), 1);
        assert!(!e.is_uncached());
        e.handle_eviction(core(2));
        assert!(e.is_uncached());
        assert_eq!(e.owner(), None);
        // Evicting a non-sharer is a no-op.
        e.handle_eviction(core(9));
        assert!(e.is_uncached());
    }

    #[test]
    fn owner_eviction_clears_ownership() {
        let mut e = entry();
        e.handle_write(core(3));
        e.handle_eviction(core(3));
        assert!(e.is_uncached());
        assert_eq!(e.owner(), None);
        // Next read must fetch from memory again.
        let out = e.handle_read(core(4));
        assert!(out.needs_memory_fetch);
    }

    #[test]
    fn many_readers_go_global_and_writes_broadcast() {
        let mut e = entry();
        for i in 0..10 {
            e.handle_read(core(i));
        }
        assert_eq!(e.sharer_count(), 10);
        assert!(e.sharers().is_global());
        let out = e.handle_write(core(0));
        match out.invalidations {
            InvalidationTargets::Broadcast { expected_acks } => {
                assert_eq!(expected_acks, 9);
            }
            other => panic!("expected broadcast, got {other:?}"),
        }
        assert_eq!(e.sharer_count(), 1);
        assert!(!e.sharers().is_global());
    }

    #[test]
    fn from_parts_rederives_every_home_state() {
        // Exclusive: one owner.
        let mut e = entry();
        e.handle_write(core(3));
        let rebuilt = DirectoryEntry::from_parts(e.sharers().clone(), e.owner());
        assert_eq!(rebuilt, e);
        // Shared: readers, no owner.
        let mut e = entry();
        e.handle_read(core(1));
        e.handle_read(core(2));
        let rebuilt = DirectoryEntry::from_parts(e.sharers().clone(), e.owner());
        assert_eq!(rebuilt, e);
        // Uncached.
        let e = entry();
        let rebuilt = DirectoryEntry::from_parts(e.sharers().clone(), e.owner());
        assert_eq!(rebuilt, e);
    }

    #[test]
    #[should_panic(expected = "violates")]
    fn from_parts_rejects_untracked_owner() {
        let mut sharers = AckwiseSharers::new(4);
        sharers.add(core(1));
        DirectoryEntry::from_parts(sharers, Some(core(2)));
    }

    #[test]
    fn back_invalidation_targets_cover_all_sharers() {
        let mut e = entry();
        e.handle_read(core(1));
        e.handle_read(core(2));
        let targets = e.back_invalidation_targets(16);
        assert_eq!(targets.len(), 2);
        // Global mode: conservatively probe everyone.
        let mut e = entry();
        for i in 0..8 {
            e.handle_read(core(i));
        }
        assert!(e.sharers().is_global());
        assert_eq!(e.back_invalidation_targets(16).len(), 16);
        e.clear_all_sharers();
        assert!(e.is_uncached());
        assert_eq!(e.sharer_count(), 0);
    }
}
