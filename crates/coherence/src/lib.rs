//! Cache coherence substrate: MESI states, the ACKwise limited directory and
//! the home-directory state machine.
//!
//! The paper's baseline system (Section 2.1) keeps the private L1 caches
//! coherent with an invalidation-based MESI protocol whose directory is
//! integrated with the LLC tags (an *in-cache* directory) and uses the
//! ACKwise₄ limited-pointer organization: each directory entry has four
//! hardware sharer pointers; when a line acquires more sharers than
//! pointers, the entry falls back to tracking only the sharer *count* and
//! invalidations are broadcast to all cores (acknowledgements are still
//! counted exactly, which is what makes ACKwise correct).
//!
//! The locality-aware replication protocol of the paper is layered *on top*
//! of this substrate (crate `lad-replication`): the directory keeps exactly
//! one pointer per core for that core's whole local cache hierarchy (L1
//! caches + local LLC replica), so coherence complexity stays that of a flat
//! protocol.
//!
//! The crate has three modules:
//!
//! * [`mesi`] — the per-cache-copy MESI state and its transitions.
//! * [`ackwise`] — the limited-pointer sharer list.
//! * [`directory`] — the home-directory entry and its request/response state
//!   machine ([`directory::DirectoryEntry::handle_read`],
//!   [`directory::DirectoryEntry::handle_write`], eviction and write-back
//!   handling), expressed as *actions* (invalidate these sharers, downgrade
//!   this owner, fetch from memory) that the simulator's protocol engine
//!   executes and times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ackwise;
pub mod directory;
pub mod mesi;

pub use ackwise::{AckwiseSharers, InvalidationTargets};
pub use directory::{DirectoryEntry, ReadGrant, ReadOutcome, WriteOutcome};
pub use mesi::MesiState;
