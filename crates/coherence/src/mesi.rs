//! MESI coherence states for cached copies (L1 lines and LLC replicas).

use std::fmt;

/// The MESI state of one cached copy of a line.
///
/// The same enum is used for L1 cache lines and for LLC replicas: the paper
/// creates replicas in all valid states (Section 2.3.1) so that migratory
/// shared data can be replicated in `Exclusive`/`Modified` and served writes
/// locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MesiState {
    /// Dirty, exclusive copy; memory is stale.
    Modified,
    /// Clean, exclusive copy; no other cache holds the line.
    Exclusive,
    /// Clean copy that may be shared with other caches.
    Shared,
    /// No valid copy.
    #[default]
    Invalid,
}

impl MesiState {
    /// `true` for any state other than [`MesiState::Invalid`].
    pub fn is_valid(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// `true` if a write can be performed locally without a coherence
    /// transaction (Modified or Exclusive).
    pub fn can_write_locally(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// `true` if the copy must be written back when dropped.
    pub fn is_dirty(self) -> bool {
        matches!(self, MesiState::Modified)
    }

    /// State after the local core writes the line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not writable locally; the protocol must have
    /// obtained exclusive permission first.
    pub fn after_local_write(self) -> MesiState {
        assert!(
            self.can_write_locally(),
            "write requires M or E state, had {self}"
        );
        MesiState::Modified
    }

    /// State after receiving a downgrade request (another core wants to
    /// read): M/E fall to S, S and I are unchanged.
    pub fn after_downgrade(self) -> MesiState {
        match self {
            MesiState::Modified | MesiState::Exclusive | MesiState::Shared => MesiState::Shared,
            MesiState::Invalid => MesiState::Invalid,
        }
    }

    /// State after receiving an invalidation: always Invalid.
    pub fn after_invalidation(self) -> MesiState {
        MesiState::Invalid
    }

    /// Parses the single-letter [`std::fmt::Display`] rendering ("M", "E",
    /// "S", "I") back into a state; `None` for anything else.
    pub fn parse(text: &str) -> Option<MesiState> {
        match text {
            "M" => Some(MesiState::Modified),
            "E" => Some(MesiState::Exclusive),
            "S" => Some(MesiState::Shared),
            "I" => Some(MesiState::Invalid),
            _ => None,
        }
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MesiState::Modified => "M",
            MesiState::Exclusive => "E",
            MesiState::Shared => "S",
            MesiState::Invalid => "I",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_invalid() {
        assert_eq!(MesiState::default(), MesiState::Invalid);
    }

    #[test]
    fn validity_and_writability() {
        assert!(MesiState::Modified.is_valid());
        assert!(MesiState::Exclusive.is_valid());
        assert!(MesiState::Shared.is_valid());
        assert!(!MesiState::Invalid.is_valid());

        assert!(MesiState::Modified.can_write_locally());
        assert!(MesiState::Exclusive.can_write_locally());
        assert!(!MesiState::Shared.can_write_locally());
        assert!(!MesiState::Invalid.can_write_locally());

        assert!(MesiState::Modified.is_dirty());
        assert!(!MesiState::Exclusive.is_dirty());
    }

    #[test]
    fn write_transition() {
        assert_eq!(
            MesiState::Exclusive.after_local_write(),
            MesiState::Modified
        );
        assert_eq!(MesiState::Modified.after_local_write(), MesiState::Modified);
    }

    #[test]
    #[should_panic(expected = "requires M or E")]
    fn write_from_shared_panics() {
        let _ = MesiState::Shared.after_local_write();
    }

    #[test]
    fn downgrade_and_invalidate() {
        assert_eq!(MesiState::Modified.after_downgrade(), MesiState::Shared);
        assert_eq!(MesiState::Exclusive.after_downgrade(), MesiState::Shared);
        assert_eq!(MesiState::Shared.after_downgrade(), MesiState::Shared);
        assert_eq!(MesiState::Invalid.after_downgrade(), MesiState::Invalid);
        for s in [
            MesiState::Modified,
            MesiState::Exclusive,
            MesiState::Shared,
            MesiState::Invalid,
        ] {
            assert_eq!(s.after_invalidation(), MesiState::Invalid);
        }
    }

    #[test]
    fn display_single_letters() {
        assert_eq!(MesiState::Modified.to_string(), "M");
        assert_eq!(MesiState::Exclusive.to_string(), "E");
        assert_eq!(MesiState::Shared.to_string(), "S");
        assert_eq!(MesiState::Invalid.to_string(), "I");
    }

    #[test]
    fn parse_inverts_display() {
        for s in [
            MesiState::Modified,
            MesiState::Exclusive,
            MesiState::Shared,
            MesiState::Invalid,
        ] {
            assert_eq!(MesiState::parse(&s.to_string()), Some(s));
        }
        assert_eq!(MesiState::parse("X"), None);
        assert_eq!(MesiState::parse(""), None);
        assert_eq!(MesiState::parse("m"), None);
    }
}
