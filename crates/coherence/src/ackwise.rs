//! The ACKwise limited-pointer sharer list.
//!
//! ACKwise_p (Kurian et al., PACT 2010) tracks up to `p` sharers exactly.
//! When a line acquires more sharers than pointers the entry switches to a
//! *global* mode that only maintains the sharer count; invalidations are then
//! broadcast, but because the count is exact the home still knows how many
//! acknowledgements to expect — this is what keeps the protocol correct
//! without a full bit-vector.

use std::fmt;

use lad_common::types::CoreId;

/// Who must be sent invalidations for a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidationTargets {
    /// Send individual invalidations to exactly these cores.
    Exact(Vec<CoreId>),
    /// Broadcast to every core (global mode); `expected_acks` gives the
    /// number of acknowledgements the home must collect.
    Broadcast {
        /// Number of cores that actually hold a copy and will acknowledge.
        expected_acks: usize,
    },
}

impl InvalidationTargets {
    /// Number of cores that will acknowledge the invalidation.
    pub fn expected_acks(&self) -> usize {
        match self {
            InvalidationTargets::Exact(cores) => cores.len(),
            InvalidationTargets::Broadcast { expected_acks } => *expected_acks,
        }
    }

    /// Number of invalidation messages that must be sent for a system of
    /// `num_cores` cores (broadcast touches everyone except the requester
    /// handled by the caller).
    pub fn messages_sent(&self, num_cores: usize) -> usize {
        match self {
            InvalidationTargets::Exact(cores) => cores.len(),
            InvalidationTargets::Broadcast { .. } => num_cores,
        }
    }
}

/// Hardware pointer budgets up to this size are stored inline in the
/// directory entry, so creating or dropping an entry costs no heap traffic
/// (one entry is created per LLC fill — a very hot path).  Larger budgets
/// fall back to a heap vector.
const INLINE_POINTERS: usize = 8;

/// Backing store for the pointer list: a fixed inline array for the common
/// small budgets (ACKwise_p with p ≤ 8), a heap vector beyond that.
#[derive(Clone)]
enum Pointers {
    Inline {
        slots: [CoreId; INLINE_POINTERS],
        len: u8,
    },
    Heap(Vec<CoreId>),
}

impl Pointers {
    fn new(max_pointers: usize) -> Self {
        if max_pointers <= INLINE_POINTERS {
            Pointers::Inline {
                slots: [CoreId::new(0); INLINE_POINTERS],
                len: 0,
            }
        } else {
            Pointers::Heap(Vec::with_capacity(max_pointers))
        }
    }

    fn as_slice(&self) -> &[CoreId] {
        match self {
            Pointers::Inline { slots, len } => &slots[..*len as usize],
            Pointers::Heap(v) => v,
        }
    }

    /// Appends `core`; the caller guarantees the budget has room.
    fn push(&mut self, core: CoreId) {
        match self {
            Pointers::Inline { slots, len } => {
                slots[*len as usize] = core;
                *len += 1;
            }
            Pointers::Heap(v) => v.push(core),
        }
    }

    fn swap_remove(&mut self, pos: usize) {
        match self {
            Pointers::Inline { slots, len } => {
                *len -= 1;
                slots[pos] = slots[*len as usize];
            }
            Pointers::Heap(v) => {
                v.swap_remove(pos);
            }
        }
    }

    fn clear(&mut self) {
        match self {
            Pointers::Inline { len, .. } => *len = 0,
            Pointers::Heap(v) => v.clear(),
        }
    }
}

impl fmt::Debug for Pointers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for Pointers {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Pointers {}

/// A limited-pointer sharer list with `p` hardware pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckwiseSharers {
    pointers: Pointers,
    max_pointers: usize,
    /// In global mode the pointer list is no longer exhaustive; only the
    /// count below is meaningful.
    global: bool,
    /// Exact number of sharers (maintained in both modes).
    count: usize,
}

impl AckwiseSharers {
    /// Creates an empty sharer list with `max_pointers` hardware pointers.
    ///
    /// # Panics
    ///
    /// Panics if `max_pointers` is zero.
    pub fn new(max_pointers: usize) -> Self {
        assert!(max_pointers > 0, "ACKwise needs at least one pointer");
        AckwiseSharers {
            pointers: Pointers::new(max_pointers),
            max_pointers,
            global: false,
            count: 0,
        }
    }

    /// Number of hardware pointers.
    pub fn max_pointers(&self) -> usize {
        self.max_pointers
    }

    /// Exact number of sharers.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` if no core holds a copy.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// `true` if the entry has overflowed into global (broadcast) mode.
    pub fn is_global(&self) -> bool {
        self.global
    }

    /// `true` if `core` is *known* to be a sharer.  In global mode this can
    /// return `false` for an actual sharer whose pointer was dropped; the
    /// protocol treats "unknown" conservatively.
    pub fn is_tracked_sharer(&self, core: CoreId) -> bool {
        self.pointers.as_slice().contains(&core)
    }

    /// Adds `core` as a sharer (idempotent).
    pub fn add(&mut self, core: CoreId) {
        if self.pointers.as_slice().contains(&core) {
            return;
        }
        if self.global {
            // Count it; pointers are best-effort in global mode.
            self.count += 1;
            if self.pointers.as_slice().len() < self.max_pointers {
                self.pointers.push(core);
            }
            return;
        }
        if self.pointers.as_slice().len() < self.max_pointers {
            self.pointers.push(core);
            self.count += 1;
        } else {
            // Overflow: switch to global mode.
            self.global = true;
            self.count += 1;
        }
    }

    /// Removes `core` from the sharer list (e.g. on an eviction
    /// notification).  Unknown cores in global mode still decrement the
    /// count, because the home only learns about them through their
    /// acknowledgements.
    pub fn remove(&mut self, core: CoreId) {
        if let Some(pos) = self.pointers.as_slice().iter().position(|c| *c == core) {
            self.pointers.swap_remove(pos);
            self.count = self.count.saturating_sub(1);
        } else if self.global && self.count > 0 {
            self.count -= 1;
        }
        if self.count <= self.pointers.as_slice().len() {
            // All remaining sharers are tracked again; leave global mode.
            self.global = false;
        }
        if self.count == 0 {
            self.global = false;
            self.pointers.clear();
        }
    }

    /// Clears the list (all copies invalidated and acknowledged).
    pub fn clear(&mut self) {
        self.pointers.clear();
        self.global = false;
        self.count = 0;
    }

    /// The tracked sharers (exhaustive unless [`AckwiseSharers::is_global`]).
    pub fn tracked(&self) -> &[CoreId] {
        self.pointers.as_slice()
    }

    /// Rebuilds a list from checkpointed parts: the tracked pointers
    /// verbatim (order is immaterial, but global-mode pointers are
    /// best-effort and must round-trip exactly), the mode flag and the exact
    /// sharer count.
    ///
    /// # Panics
    ///
    /// Panics if the parts violate the list's invariants (more pointers
    /// than the budget, count inconsistent with the mode) — see
    /// [`AckwiseSharers::local_invariant_error`].
    pub fn from_parts(max_pointers: usize, tracked: &[CoreId], global: bool, count: usize) -> Self {
        assert!(max_pointers > 0, "ACKwise needs at least one pointer");
        let mut pointers = Pointers::new(max_pointers);
        for &core in tracked {
            assert!(
                !pointers.as_slice().contains(&core),
                "duplicate tracked sharer {core:?}"
            );
            assert!(
                pointers.as_slice().len() < max_pointers,
                "{} tracked sharers exceed the {max_pointers}-pointer budget",
                tracked.len()
            );
            pointers.push(core);
        }
        let sharers = AckwiseSharers {
            pointers,
            max_pointers,
            global,
            count,
        };
        if let Some((name, details)) = sharers.local_invariant_error() {
            panic!("checkpointed sharer list violates [{name}]: {details}");
        }
        sharers
    }

    /// Checks the list's local invariants (the `ackwise-pointer-capacity`
    /// member of the `lad-check` catalog): the pointer list never exceeds
    /// the hardware pointer budget, `count == tracked` outside global mode
    /// and `count > tracked` in global mode (a global entry by definition
    /// has untracked sharers).
    ///
    /// Returns the catalog name and a description of the first violated
    /// invariant, or `None` when the state is consistent.
    pub fn local_invariant_error(&self) -> Option<(&'static str, String)> {
        if self.pointers.as_slice().len() > self.max_pointers {
            return Some((
                "ackwise-pointer-capacity",
                format!(
                    "{} pointers tracked but only {} exist",
                    self.pointers.as_slice().len(),
                    self.max_pointers
                ),
            ));
        }
        if !self.global && self.count != self.pointers.as_slice().len() {
            return Some((
                "ackwise-pointer-capacity",
                format!(
                    "exact mode but count {} != {} tracked pointers",
                    self.count,
                    self.pointers.as_slice().len()
                ),
            ));
        }
        if self.global && self.count <= self.pointers.as_slice().len() {
            return Some((
                "ackwise-pointer-capacity",
                format!(
                    "global mode but count {} fits the {} tracked pointers",
                    self.count,
                    self.pointers.as_slice().len()
                ),
            ));
        }
        None
    }

    /// Computes who must be invalidated to give `requester` exclusive
    /// ownership.  The requester itself is never included.
    pub fn invalidation_targets(&self, requester: CoreId) -> InvalidationTargets {
        if self.global {
            let holds_copy =
                self.is_tracked_sharer(requester) || self.count > self.pointers.as_slice().len();
            let expected = if holds_copy && self.is_tracked_sharer(requester) {
                self.count - 1
            } else if self.count > 0 && !self.is_tracked_sharer(requester) {
                // Requester may or may not be among the untracked sharers; the
                // home waits for count acks minus one if the requester turns
                // out to hold a copy.  Conservatively expect all non-requester
                // sharers: the requester's own copy is upgraded, not
                // invalidated, and it does not acknowledge.
                self.count
            } else {
                self.count
            };
            InvalidationTargets::Broadcast {
                expected_acks: expected,
            }
        } else {
            InvalidationTargets::Exact(
                self.pointers
                    .as_slice()
                    .iter()
                    .copied()
                    .filter(|c| *c != requester)
                    .collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    #[should_panic(expected = "at least one pointer")]
    fn zero_pointers_rejected() {
        AckwiseSharers::new(0);
    }

    #[test]
    fn add_and_remove_within_pointer_budget() {
        let mut s = AckwiseSharers::new(4);
        assert!(s.is_empty());
        for i in 0..4 {
            s.add(core(i));
        }
        assert_eq!(s.count(), 4);
        assert!(!s.is_global());
        assert!(s.is_tracked_sharer(core(2)));
        // Idempotent add.
        s.add(core(2));
        assert_eq!(s.count(), 4);
        s.remove(core(2));
        assert_eq!(s.count(), 3);
        assert!(!s.is_tracked_sharer(core(2)));
        s.remove(core(2));
        assert_eq!(s.count(), 3, "removing a non-sharer changes nothing");
    }

    #[test]
    fn overflow_enters_global_mode_with_exact_count() {
        let mut s = AckwiseSharers::new(4);
        for i in 0..6 {
            s.add(core(i));
        }
        assert!(s.is_global());
        assert_eq!(s.count(), 6);
        assert_eq!(s.max_pointers(), 4);
        assert_eq!(s.tracked().len(), 4);
    }

    #[test]
    fn global_mode_invalidation_is_broadcast() {
        let mut s = AckwiseSharers::new(2);
        for i in 0..5 {
            s.add(core(i));
        }
        let targets = s.invalidation_targets(core(0));
        match targets {
            InvalidationTargets::Broadcast { expected_acks } => {
                // Core 0 is tracked, so it is excluded from the acks.
                assert_eq!(expected_acks, 4);
            }
            other => panic!("expected broadcast, got {other:?}"),
        }
        assert_eq!(s.invalidation_targets(core(0)).messages_sent(64), 64);
    }

    #[test]
    fn exact_mode_invalidation_excludes_requester() {
        let mut s = AckwiseSharers::new(4);
        s.add(core(1));
        s.add(core(2));
        s.add(core(3));
        let targets = s.invalidation_targets(core(2));
        match &targets {
            InvalidationTargets::Exact(cores) => {
                assert_eq!(cores.len(), 2);
                assert!(!cores.contains(&core(2)));
            }
            other => panic!("expected exact, got {other:?}"),
        }
        assert_eq!(targets.expected_acks(), 2);
        assert_eq!(targets.messages_sent(64), 2);
    }

    #[test]
    fn global_mode_clears_when_sharers_drop() {
        let mut s = AckwiseSharers::new(2);
        for i in 0..4 {
            s.add(core(i));
        }
        assert!(s.is_global());
        // Remove untracked + tracked sharers until count fits in pointers.
        s.remove(core(3));
        s.remove(core(2));
        assert!(!s.is_global(), "count {} fits in pointers again", s.count());
        s.clear();
        assert!(s.is_empty());
        assert!(!s.is_global());
    }

    #[test]
    fn from_parts_roundtrips_both_modes() {
        // Exact mode.
        let mut s = AckwiseSharers::new(4);
        for i in 0..3 {
            s.add(core(i));
        }
        let rebuilt =
            AckwiseSharers::from_parts(s.max_pointers(), s.tracked(), s.is_global(), s.count());
        assert_eq!(rebuilt, s);
        // Global mode keeps best-effort pointers verbatim.
        let mut s = AckwiseSharers::new(2);
        for i in 0..5 {
            s.add(core(i));
        }
        assert!(s.is_global());
        let rebuilt =
            AckwiseSharers::from_parts(s.max_pointers(), s.tracked(), s.is_global(), s.count());
        assert_eq!(rebuilt, s);
        // The rebuilt list behaves identically afterwards.
        s.remove(core(1));
        let mut r = rebuilt;
        r.remove(core(1));
        assert_eq!(r, s);
    }

    #[test]
    #[should_panic(expected = "violates")]
    fn from_parts_rejects_inconsistent_state() {
        // Exact mode whose count disagrees with the tracked list.
        AckwiseSharers::from_parts(4, &[core(0)], false, 3);
    }

    #[test]
    fn count_never_goes_negative() {
        let mut s = AckwiseSharers::new(2);
        s.add(core(0));
        s.remove(core(0));
        s.remove(core(1));
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
    }
}
