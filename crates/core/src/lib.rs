//! Locality-aware LLC data replication — the paper's primary contribution —
//! together with the baseline LLC management schemes it is evaluated against.
//!
//! The crate provides the *policy* layer of the protocol described in
//! Section 2 of the paper; the timing engine that drives it lives in
//! `lad-sim`.  The pieces are:
//!
//! * [`counter`] — small saturating reuse counters (the 2-bit Replica-Reuse
//!   and Home-Reuse counters of Figure 4).
//! * [`classifier`] — the run-time locality classifier: the Complete
//!   classifier that tracks every core and the cost-efficient Limited_k
//!   classifier (Section 2.2.5) that tracks `k` cores and classifies the
//!   rest by majority vote.
//! * [`placement`] — LLC home placement: Static-NUCA address interleaving
//!   and Reactive-NUCA's page-grain private/shared placement with
//!   cluster-level instruction replication, which the locality-aware
//!   protocol reuses for data placement (Section 2.1).
//! * [`scheme`] / [`config`] — the five evaluated schemes
//!   (S-NUCA, R-NUCA, VR, ASR, locality-aware) and their knobs
//!   (replication threshold RT, classifier kind, cluster size,
//!   ASR replication level, LLC replacement policy).
//! * [`entry`] — the metadata stored in each LLC slice entry: the home
//!   directory entry extended with the classifier (Figure 4 / Figure 5) and
//!   the replica entry with its reuse counter.
//! * [`policies`] — the per-scheme replication decision helpers
//!   (Victim Replication's victim-cache insertion rule, ASR's probabilistic
//!   shared-read-only replication).
//! * [`policy`] — the pluggable [`ReplicationPolicy`](policy::ReplicationPolicy)
//!   trait the timing engine drives its replication decisions through, the
//!   built-in policies implementing the five schemes, and the
//!   [`SchemeRegistry`](policy::SchemeRegistry) that lets out-of-crate
//!   schemes join experiment sweeps under a typed [`SchemeId`].
//! * [`overhead`] — the storage-overhead model of Section 2.4, reproducing
//!   the 13.5 KB / 96 KB per-slice classifier costs.
//!
//! # Example: the classifier in isolation
//!
//! ```
//! use lad_replication::classifier::{ClassifierKind, LocalityClassifier, ReplicationMode};
//! use lad_common::types::CoreId;
//!
//! // Limited_3 classifier with the paper's optimal RT = 3.
//! let mut classifier = LocalityClassifier::new(ClassifierKind::Limited(3), 3);
//! let core = CoreId::new(7);
//!
//! // The first two home hits train the classifier; the third promotes the
//! // core to replica mode.
//! assert_eq!(classifier.on_home_read(core), ReplicationMode::NonReplica);
//! assert_eq!(classifier.on_home_read(core), ReplicationMode::NonReplica);
//! assert_eq!(classifier.on_home_read(core), ReplicationMode::Replica);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod config;
pub mod counter;
pub mod entry;
pub mod overhead;
pub mod placement;
pub mod policies;
pub mod policy;
pub mod scheme;

pub use classifier::{ClassifierKind, LocalityClassifier, ReplicationMode, TrackedCore};
pub use config::ReplicationConfig;
pub use counter::SaturatingCounter;
pub use entry::{HomeEntry, LlcEntry, ReplicaEntry};
pub use placement::HomeMap;
pub use policy::{
    builtin_policy, EvictDecision, FillDecision, RegisteredScheme, ReplicationPolicy,
    SchemeRegistry,
};
pub use scheme::{SchemeId, SchemeKind, UnknownScheme};
