//! The pluggable replication-policy interface and the scheme registry.
//!
//! The timing engine (`lad-sim`) drives every memory access through a fixed
//! protocol skeleton — L1 lookup, replica-slice lookup, home-slice directory
//! actions, DRAM — and delegates every *replication decision* to a
//! [`ReplicationPolicy`] object:
//!
//! * [`ReplicationPolicy::replicate_on_fill`] — after the home slice served
//!   an L1 miss: install a replica at the requester's slice?  (This is where
//!   the paper's locality classifier lives.)
//! * [`ReplicationPolicy::replicate_on_l1_evict`] — when the L1 evicts a
//!   line: turn the victim into a local LLC replica?  (Victim Replication
//!   and ASR replicate here.)
//! * the capability flags ([`replicates`](ReplicationPolicy::replicates),
//!   [`invalidate_replica_on_hit`](ReplicationPolicy::invalidate_replica_on_hit),
//!   [`uses_classifier`](ReplicationPolicy::uses_classifier), ...) — which
//!   protocol paths and energy events the scheme enables.
//!
//! The five schemes of the paper's evaluation are provided as built-in
//! policies; out-of-crate schemes implement the trait and register under a
//! [`SchemeId::Custom`] id in a [`SchemeRegistry`], after which the
//! experiment runner can sweep them exactly like the built-ins — without any
//! change to the timing engine.
//!
//! # Example: a toy always-replicate policy
//!
//! ```
//! use std::sync::Arc;
//! use lad_replication::config::ReplicationConfig;
//! use lad_replication::placement::PlacementPolicy;
//! use lad_replication::policy::{
//!     EvictDecision, FillDecision, ReplicationPolicy, SchemeRegistry,
//! };
//! use lad_replication::scheme::SchemeId;
//!
//! #[derive(Debug)]
//! struct AlwaysReplicate;
//!
//! impl ReplicationPolicy for AlwaysReplicate {
//!     fn id(&self) -> SchemeId {
//!         SchemeId::Custom("ALWAYS")
//!     }
//!     fn placement(&self) -> PlacementPolicy {
//!         PlacementPolicy::AddressInterleaved
//!     }
//!     fn replicates(&self) -> bool {
//!         true
//!     }
//!     fn replicate_on_fill(&self, _: FillDecision<'_>) -> bool {
//!         true
//!     }
//!     fn replicate_on_l1_evict(&self, _: EvictDecision<'_>) -> bool {
//!         false
//!     }
//! }
//!
//! let mut registry = SchemeRegistry::builtin();
//! registry.register(Arc::new(AlwaysReplicate), ReplicationConfig::static_nuca());
//! assert!(registry.get(SchemeId::Custom("ALWAYS")).is_ok());
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use lad_common::rng::DeterministicRng;
use lad_common::types::{CoreId, DataClass};

use crate::classifier::{LocalityClassifier, ReplicationMode};
use crate::config::ReplicationConfig;
use crate::entry::LlcEntry;
use crate::placement::PlacementPolicy;
use crate::policies::{AsrPolicy, VictimReplicationPolicy};
use crate::scheme::{SchemeId, SchemeKind, UnknownScheme};

/// Everything a policy may consult when the home slice decides whether to
/// install a replica at the requester's slice after serving an L1 miss.
#[derive(Debug)]
pub struct FillDecision<'a> {
    /// The requesting core.
    pub core: CoreId,
    /// `true` for write requests.
    pub is_write: bool,
    /// `true` if the directory found other sharers/owners on a write
    /// (distinguishes migratory data from actively shared data).
    pub other_sharers_present: bool,
    /// The reuse counter of the requester's own LLC replica if this write
    /// invalidated one on its way to the home, `None` otherwise.
    pub own_replica_reuse: Option<u32>,
    /// The locality classifier stored in the line's home directory entry.
    /// Policies that classify (the locality-aware protocol) both read and
    /// train it here; stateless policies ignore it.
    pub classifier: &'a mut LocalityClassifier,
}

/// Everything a policy may consult when an L1 eviction could be turned into
/// a local LLC replica.
#[derive(Debug)]
pub struct EvictDecision<'a> {
    /// Ground-truth data class of the evicted line (ASR replicates only
    /// instructions and shared read-only data).
    pub class: DataClass,
    /// `true` if the target LLC set has an invalid way (insertion is free).
    pub set_has_free_way: bool,
    /// The entry the LLC replacement policy would displace, when the set is
    /// full.
    pub victim: Option<&'a LlcEntry>,
    /// The simulation's deterministic randomness (ASR's probabilistic
    /// replication draws from it).
    pub rng: &'a mut DeterministicRng,
}

/// A pluggable LLC replication scheme.
///
/// Implementations must be stateless between accesses: all per-line state
/// lives in the home entry's classifier (handed to
/// [`replicate_on_fill`](Self::replicate_on_fill)) and all randomness in the
/// engine's RNG (handed to
/// [`replicate_on_l1_evict`](Self::replicate_on_l1_evict)), so one policy
/// object can be shared (`Arc`) by every worker thread of an experiment
/// sweep and simulations stay deterministic.
pub trait ReplicationPolicy: fmt::Debug + Send + Sync {
    /// The typed identity of this scheme (used as the report/matrix key and
    /// the report label).
    fn id(&self) -> SchemeId;

    /// The home-placement policy the scheme runs on.
    fn placement(&self) -> PlacementPolicy;

    /// `true` if the scheme ever installs replicas in the requester's local
    /// (or cluster) LLC slice.  When `false`, the engine skips the
    /// replica-slice lookup entirely (S-NUCA, R-NUCA).
    fn replicates(&self) -> bool;

    /// `true` if L1 evictions are replication opportunities
    /// ([`replicate_on_l1_evict`](Self::replicate_on_l1_evict) will be
    /// consulted).  Defaults to `false`.
    fn replicates_on_eviction(&self) -> bool {
        false
    }

    /// `true` if the scheme consults the home entry's locality classifier
    /// (charges classifier access energy and reports eviction reuse back to
    /// it).  Defaults to `false`.
    fn uses_classifier(&self) -> bool {
        false
    }

    /// `true` if a replica hit moves the line into the L1 and invalidates
    /// the LLC copy (Victim Replication's exclusive L1/LLC relationship).
    /// Defaults to `false`.
    fn invalidate_replica_on_hit(&self) -> bool {
        false
    }

    /// Decides whether the home installs a replica at the requester's slice
    /// after serving an L1 miss.  Called for every request processed at the
    /// home, even when the requester's replica slice *is* the home — train
    /// classifiers here unconditionally; the engine only materializes the
    /// replica when a distinct replica slice exists.
    fn replicate_on_fill(&self, decision: FillDecision<'_>) -> bool;

    /// Decides whether an L1 victim is installed as a replica in the local
    /// LLC slice.  Only consulted when
    /// [`replicates_on_eviction`](Self::replicates_on_eviction) is `true`.
    fn replicate_on_l1_evict(&self, decision: EvictDecision<'_>) -> bool;
}

// ----- built-in policies ---------------------------------------------------

/// Static-NUCA: address-interleaved placement, no replication.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticNucaScheme;

impl ReplicationPolicy for StaticNucaScheme {
    fn id(&self) -> SchemeId {
        SchemeId::StaticNuca
    }
    fn placement(&self) -> PlacementPolicy {
        SchemeKind::StaticNuca.placement_policy()
    }
    fn replicates(&self) -> bool {
        false
    }
    fn replicate_on_fill(&self, _: FillDecision<'_>) -> bool {
        false
    }
    fn replicate_on_l1_evict(&self, _: EvictDecision<'_>) -> bool {
        false
    }
}

/// Reactive-NUCA: page-grain placement with cluster-replicated instructions;
/// no LLC data replication.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReactiveNucaScheme;

impl ReplicationPolicy for ReactiveNucaScheme {
    fn id(&self) -> SchemeId {
        SchemeId::ReactiveNuca
    }
    fn placement(&self) -> PlacementPolicy {
        SchemeKind::ReactiveNuca.placement_policy()
    }
    fn replicates(&self) -> bool {
        false
    }
    fn replicate_on_fill(&self, _: FillDecision<'_>) -> bool {
        false
    }
    fn replicate_on_l1_evict(&self, _: EvictDecision<'_>) -> bool {
        false
    }
}

/// Victim Replication: the local LLC slice acts as a victim cache for L1
/// evictions; replica hits move the line back into the L1.
#[derive(Debug, Clone, Copy, Default)]
pub struct VictimReplicationScheme;

impl ReplicationPolicy for VictimReplicationScheme {
    fn id(&self) -> SchemeId {
        SchemeId::VictimReplication
    }
    fn placement(&self) -> PlacementPolicy {
        SchemeKind::VictimReplication.placement_policy()
    }
    fn replicates(&self) -> bool {
        true
    }
    fn replicates_on_eviction(&self) -> bool {
        true
    }
    fn invalidate_replica_on_hit(&self) -> bool {
        true
    }
    fn replicate_on_fill(&self, _: FillDecision<'_>) -> bool {
        false
    }
    fn replicate_on_l1_evict(&self, decision: EvictDecision<'_>) -> bool {
        VictimReplicationPolicy.should_insert_victim(decision.set_has_free_way, decision.victim)
    }
}

/// Adaptive Selective Replication at one fixed replication level.
#[derive(Debug, Clone, Copy)]
pub struct AsrScheme {
    policy: AsrPolicy,
}

impl AsrScheme {
    /// Creates the scheme at a replication level in `[0, 1]`.
    pub fn new(level: f64) -> Self {
        AsrScheme {
            policy: AsrPolicy::new(level),
        }
    }

    /// The replication level.
    pub fn level(&self) -> f64 {
        self.policy.level()
    }
}

impl ReplicationPolicy for AsrScheme {
    fn id(&self) -> SchemeId {
        SchemeId::asr_at_level(self.policy.level())
    }
    fn placement(&self) -> PlacementPolicy {
        SchemeKind::AdaptiveSelectiveReplication.placement_policy()
    }
    fn replicates(&self) -> bool {
        true
    }
    fn replicates_on_eviction(&self) -> bool {
        true
    }
    fn replicate_on_fill(&self, _: FillDecision<'_>) -> bool {
        false
    }
    fn replicate_on_l1_evict(&self, decision: EvictDecision<'_>) -> bool {
        self.policy.should_replicate(decision.class, decision.rng)
    }
}

/// The paper's locality-aware protocol at one replication threshold.
#[derive(Debug, Clone, Copy)]
pub struct LocalityAwareScheme {
    rt: u32,
}

impl LocalityAwareScheme {
    /// Creates the scheme at replication threshold `rt` (≥ 1).
    pub fn new(rt: u32) -> Self {
        LocalityAwareScheme { rt: rt.max(1) }
    }

    /// The replication threshold.
    pub fn replication_threshold(&self) -> u32 {
        self.rt
    }
}

impl ReplicationPolicy for LocalityAwareScheme {
    fn id(&self) -> SchemeId {
        SchemeId::Rt(self.rt)
    }
    fn placement(&self) -> PlacementPolicy {
        SchemeKind::LocalityAware.placement_policy()
    }
    fn replicates(&self) -> bool {
        true
    }
    fn uses_classifier(&self) -> bool {
        true
    }
    fn replicate_on_fill(&self, decision: FillDecision<'_>) -> bool {
        if let Some(reuse) = decision.own_replica_reuse {
            decision
                .classifier
                .on_replica_invalidated(decision.core, reuse);
        }
        let mode = if decision.is_write {
            decision
                .classifier
                .on_home_write(decision.core, decision.other_sharers_present)
        } else {
            decision.classifier.on_home_read(decision.core)
        };
        mode == ReplicationMode::Replica
    }
    fn replicate_on_l1_evict(&self, _: EvictDecision<'_>) -> bool {
        false
    }
}

/// Builds the built-in policy implementing `config.scheme`.
pub fn builtin_policy(config: &ReplicationConfig) -> Arc<dyn ReplicationPolicy> {
    match config.scheme {
        SchemeKind::StaticNuca => Arc::new(StaticNucaScheme),
        SchemeKind::ReactiveNuca => Arc::new(ReactiveNucaScheme),
        SchemeKind::VictimReplication => Arc::new(VictimReplicationScheme),
        SchemeKind::AdaptiveSelectiveReplication => Arc::new(AsrScheme::new(config.asr_level)),
        SchemeKind::LocalityAware => {
            Arc::new(LocalityAwareScheme::new(config.replication_threshold))
        }
    }
}

// ----- registry ------------------------------------------------------------

/// One runnable scheme: the decision policy plus the configuration knobs
/// (replication threshold, classifier organization, cluster size, LLC
/// replacement) the engine builds its structures from.
#[derive(Debug, Clone)]
pub struct RegisteredScheme {
    /// The replication-decision policy.
    pub policy: Arc<dyn ReplicationPolicy>,
    /// The engine knobs the scheme runs with.
    pub config: ReplicationConfig,
}

/// A registry of runnable schemes keyed by [`SchemeId`].
///
/// The experiment runner resolves the schemes of a sweep here, so
/// out-of-crate policies participate in benchmark × scheme matrices exactly
/// like the paper's built-ins.
#[derive(Debug, Clone, Default)]
pub struct SchemeRegistry {
    entries: BTreeMap<SchemeId, RegisteredScheme>,
}

impl SchemeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-populated with every built-in configuration of the
    /// paper's evaluation: `S-NUCA`, `R-NUCA`, `VR`, the five ASR levels
    /// (`ASR-0.00` … `ASR-1.00`) and `RT-1`, `RT-3`, `RT-8`.
    pub fn builtin() -> Self {
        let mut registry = SchemeRegistry::new();
        let mut configs = vec![
            ReplicationConfig::static_nuca(),
            ReplicationConfig::reactive_nuca(),
            ReplicationConfig::victim_replication(),
            ReplicationConfig::locality_aware(1),
            ReplicationConfig::locality_aware(3),
            ReplicationConfig::locality_aware(8),
        ];
        for level in AsrPolicy::LEVELS {
            configs.push(ReplicationConfig::asr(level));
        }
        for config in configs {
            registry.register(builtin_policy(&config), config);
        }
        registry
    }

    /// Registers `policy` under its [`ReplicationPolicy::id`], replacing and
    /// returning any previous entry with the same id.
    ///
    /// The id is the whole key: two variants of one scheme family (say
    /// RT-3 at cluster sizes 1 and 16, both `SchemeId::Rt(3)`) would
    /// replace each other — give each variant its own
    /// [`SchemeId::Custom`] name to sweep them side by side.
    pub fn register(
        &mut self,
        policy: Arc<dyn ReplicationPolicy>,
        config: ReplicationConfig,
    ) -> Option<RegisteredScheme> {
        let id = policy.id();
        self.entries.insert(id, RegisteredScheme { policy, config })
    }

    /// Looks up a scheme.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] when `id` was never registered.
    pub fn get(&self, id: SchemeId) -> Result<&RegisteredScheme, UnknownScheme> {
        self.entries
            .get(&id)
            .ok_or_else(|| UnknownScheme::new(id, "registry"))
    }

    /// `true` if `id` is registered.
    pub fn contains(&self, id: SchemeId) -> bool {
        self.entries.contains_key(&id)
    }

    /// The registered ids, in [`SchemeId`] order.
    pub fn ids(&self) -> impl Iterator<Item = SchemeId> + '_ {
        self.entries.keys().copied()
    }

    /// Number of registered schemes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierKind;
    use crate::entry::{HomeEntry, ReplicaEntry};
    use lad_coherence::mesi::MesiState;

    fn fill_decision(classifier: &mut LocalityClassifier) -> FillDecision<'_> {
        FillDecision {
            core: CoreId::new(2),
            is_write: false,
            other_sharers_present: false,
            own_replica_reuse: None,
            classifier,
        }
    }

    #[test]
    fn builtin_ids_and_capabilities_match_the_schemes() {
        assert_eq!(StaticNucaScheme.id(), SchemeId::StaticNuca);
        assert!(!StaticNucaScheme.replicates());
        assert_eq!(ReactiveNucaScheme.id(), SchemeId::ReactiveNuca);
        assert!(!ReactiveNucaScheme.replicates());

        let vr = VictimReplicationScheme;
        assert_eq!(vr.id(), SchemeId::VictimReplication);
        assert!(vr.replicates() && vr.replicates_on_eviction() && vr.invalidate_replica_on_hit());
        assert!(!vr.uses_classifier());

        let asr = AsrScheme::new(0.75);
        assert_eq!(asr.id(), SchemeId::AsrAt(75));
        assert!((asr.level() - 0.75).abs() < 1e-12);
        assert!(asr.replicates_on_eviction() && !asr.invalidate_replica_on_hit());

        let rt = LocalityAwareScheme::new(3);
        assert_eq!(rt.id(), SchemeId::Rt(3));
        assert_eq!(rt.replication_threshold(), 3);
        assert!(rt.uses_classifier() && !rt.replicates_on_eviction());
        // The rt floor keeps the policy valid.
        assert_eq!(LocalityAwareScheme::new(0).replication_threshold(), 1);
    }

    #[test]
    fn builtin_policy_follows_the_config() {
        for (config, id) in [
            (ReplicationConfig::static_nuca(), SchemeId::StaticNuca),
            (ReplicationConfig::reactive_nuca(), SchemeId::ReactiveNuca),
            (
                ReplicationConfig::victim_replication(),
                SchemeId::VictimReplication,
            ),
            (ReplicationConfig::asr(0.25), SchemeId::AsrAt(25)),
            (ReplicationConfig::locality_aware(8), SchemeId::Rt(8)),
        ] {
            let policy = builtin_policy(&config);
            assert_eq!(policy.id(), id);
            assert_eq!(policy.placement(), config.scheme.placement_policy());
            assert_eq!(policy.replicates(), config.scheme.replicates());
            assert_eq!(
                policy.replicates_on_eviction(),
                config.scheme.replicates_on_eviction()
            );
        }
    }

    #[test]
    fn locality_aware_fill_decision_promotes_after_rt_accesses() {
        let scheme = LocalityAwareScheme::new(3);
        let mut classifier = LocalityClassifier::new(ClassifierKind::Limited(3), 3);
        assert!(!scheme.replicate_on_fill(fill_decision(&mut classifier)));
        assert!(!scheme.replicate_on_fill(fill_decision(&mut classifier)));
        assert!(scheme.replicate_on_fill(fill_decision(&mut classifier)));
    }

    #[test]
    fn vr_evict_decision_matches_victim_cache_rule() {
        let vr = VictimReplicationScheme;
        let mut rng = DeterministicRng::seed_from(1);
        let replica = LlcEntry::Replica(ReplicaEntry::new(MesiState::Shared, 3));
        assert!(vr.replicate_on_l1_evict(EvictDecision {
            class: DataClass::Private,
            set_has_free_way: false,
            victim: Some(&replica),
            rng: &mut rng,
        }));
        let mut busy = HomeEntry::new(4, ClassifierKind::Limited(3), 3);
        busy.directory.handle_read(CoreId::new(1));
        let busy = LlcEntry::Home(busy);
        assert!(!vr.replicate_on_l1_evict(EvictDecision {
            class: DataClass::Private,
            set_has_free_way: false,
            victim: Some(&busy),
            rng: &mut rng,
        }));
    }

    #[test]
    fn asr_evict_decision_respects_class_and_level() {
        let mut rng = DeterministicRng::seed_from(7);
        let always = AsrScheme::new(1.0);
        assert!(always.replicate_on_l1_evict(EvictDecision {
            class: DataClass::SharedReadOnly,
            set_has_free_way: true,
            victim: None,
            rng: &mut rng,
        }));
        assert!(!always.replicate_on_l1_evict(EvictDecision {
            class: DataClass::SharedReadWrite,
            set_has_free_way: true,
            victim: None,
            rng: &mut rng,
        }));
        let never = AsrScheme::new(0.0);
        assert!(!never.replicate_on_l1_evict(EvictDecision {
            class: DataClass::SharedReadOnly,
            set_has_free_way: true,
            victim: None,
            rng: &mut rng,
        }));
    }

    #[test]
    fn registry_builtin_covers_the_paper_sweep() {
        let registry = SchemeRegistry::builtin();
        for id in [
            SchemeId::StaticNuca,
            SchemeId::ReactiveNuca,
            SchemeId::VictimReplication,
            SchemeId::AsrAt(0),
            SchemeId::AsrAt(25),
            SchemeId::AsrAt(50),
            SchemeId::AsrAt(75),
            SchemeId::AsrAt(100),
            SchemeId::Rt(1),
            SchemeId::Rt(3),
            SchemeId::Rt(8),
        ] {
            let entry = registry.get(id).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(entry.policy.id(), id);
        }
        assert_eq!(registry.len(), 11);
        assert!(!registry.is_empty());
        // The collapsed ASR column and unregistered customs are errors.
        assert_eq!(
            registry.get(SchemeId::Asr).unwrap_err(),
            UnknownScheme::new(SchemeId::Asr, "registry")
        );
        assert!(!registry.contains(SchemeId::Custom("NOPE")));
    }

    #[test]
    fn registry_register_replaces_and_returns_previous() {
        #[derive(Debug)]
        struct Always;
        impl ReplicationPolicy for Always {
            fn id(&self) -> SchemeId {
                SchemeId::Custom("ALWAYS")
            }
            fn placement(&self) -> PlacementPolicy {
                PlacementPolicy::AddressInterleaved
            }
            fn replicates(&self) -> bool {
                true
            }
            fn replicate_on_fill(&self, _: FillDecision<'_>) -> bool {
                true
            }
            fn replicate_on_l1_evict(&self, _: EvictDecision<'_>) -> bool {
                false
            }
        }

        let mut registry = SchemeRegistry::new();
        assert!(registry
            .register(Arc::new(Always), ReplicationConfig::static_nuca())
            .is_none());
        assert!(registry.contains(SchemeId::Custom("ALWAYS")));
        let previous = registry.register(Arc::new(Always), ReplicationConfig::locality_aware(3));
        assert!(previous.is_some());
        assert_eq!(registry.len(), 1);
        assert_eq!(
            registry.ids().collect::<Vec<_>>(),
            vec![SchemeId::Custom("ALWAYS")]
        );
    }
}
