//! Saturating reuse counters.
//!
//! The protocol stores two kinds of small saturating counters in the LLC tag
//! array (Figure 4): the per-line *Replica Reuse* counter at the replica
//! location and one *Home Reuse* counter per tracked core at the home
//! location.  With the paper's optimal replication threshold RT = 3 both fit
//! in 2 bits; the width here follows the configured ceiling so RT values up
//! to 8 (the RT-8 configuration of Figure 6) can be studied.

use std::fmt;

/// A saturating up-counter with an inclusive ceiling.
///
/// # Example
///
/// ```
/// use lad_replication::counter::SaturatingCounter;
/// let mut reuse = SaturatingCounter::new(3);
/// reuse.increment();
/// reuse.increment();
/// reuse.increment();
/// reuse.increment(); // saturates
/// assert_eq!(reuse.value(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u32,
    max: u32,
}

impl SaturatingCounter {
    /// Creates a counter at zero that saturates at `max`.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn new(max: u32) -> Self {
        assert!(max > 0, "saturation ceiling must be positive");
        SaturatingCounter { value: 0, max }
    }

    /// Creates a counter starting at `value` (clamped to the ceiling).
    pub fn with_value(max: u32, value: u32) -> Self {
        let mut c = Self::new(max);
        c.value = value.min(max);
        c
    }

    /// Current value.
    pub fn value(self) -> u32 {
        self.value
    }

    /// Saturation ceiling.
    pub fn max(self) -> u32 {
        self.max
    }

    /// Increments, saturating at the ceiling.  Returns the new value.
    pub fn increment(&mut self) -> u32 {
        self.value = (self.value + 1).min(self.max);
        self.value
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Sets to an explicit value (clamped to the ceiling).
    pub fn set(&mut self, value: u32) {
        self.value = value.min(self.max);
    }

    /// `true` once the counter has reached `threshold`.
    pub fn reached(self, threshold: u32) -> bool {
        self.value >= threshold
    }

    /// Number of storage bits a hardware implementation needs.
    pub fn storage_bits(self) -> u32 {
        u32::BITS - self.max.leading_zeros()
    }
}

impl fmt::Display for SaturatingCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_and_saturates() {
        let mut c = SaturatingCounter::new(3);
        assert_eq!(c.value(), 0);
        assert_eq!(c.increment(), 1);
        assert_eq!(c.increment(), 2);
        assert_eq!(c.increment(), 3);
        assert_eq!(c.increment(), 3, "must saturate");
        assert_eq!(c.max(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ceiling_rejected() {
        SaturatingCounter::new(0);
    }

    #[test]
    fn with_value_clamps() {
        let c = SaturatingCounter::with_value(3, 10);
        assert_eq!(c.value(), 3);
        let c = SaturatingCounter::with_value(8, 5);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn reset_set_and_reached() {
        let mut c = SaturatingCounter::new(8);
        c.set(5);
        assert!(c.reached(3));
        assert!(c.reached(5));
        assert!(!c.reached(6));
        c.reset();
        assert_eq!(c.value(), 0);
        c.set(100);
        assert_eq!(c.value(), 8);
    }

    #[test]
    fn storage_bits_match_paper() {
        // RT = 3 -> 2-bit counters, as stated in Section 2.4.1.
        assert_eq!(SaturatingCounter::new(3).storage_bits(), 2);
        assert_eq!(SaturatingCounter::new(1).storage_bits(), 1);
        assert_eq!(SaturatingCounter::new(8).storage_bits(), 4);
    }

    #[test]
    fn display_shows_value_and_ceiling() {
        let mut c = SaturatingCounter::new(3);
        c.increment();
        assert_eq!(c.to_string(), "1/3");
    }
}
