//! LLC home placement policies: Static-NUCA interleaving and Reactive-NUCA's
//! page-grain placement (Section 2.1, Section 3.3).
//!
//! * **Static-NUCA** address-interleaves every cache line across all LLC
//!   slices.
//! * **Reactive-NUCA** places data belonging to *private* pages (pages only
//!   ever touched by one core) in that core's local slice, address-interleaves
//!   shared data, and replicates instructions at the granularity of a
//!   4-core cluster using rotational interleaving.
//! * The **locality-aware protocol** reuses R-NUCA's *data* placement but not
//!   its instruction replication (it replicates instructions through the
//!   locality classifier instead), which is the `RnucaDataOnly` policy.
//!
//! Page classification is performed with a profiling pass over the workload
//! (see [`HomeMap::record_page_access`]): a page touched by more than one
//! core is shared, mirroring the OS-page-table mechanism of R-NUCA.  Because
//! classification is at page granularity, *page-level false sharing* (cores
//! touching disjoint lines of the same page) prevents private placement —
//! the effect the paper highlights for BLACKSCHOLES.

// The page table is point-lookup-only state; its iteration order never
// feeds a report.  `FastMap`'s fixed-seed hasher keeps lookups cheap on the
// per-access `home_for` path.
use lad_common::collections::FastMap;
use lad_common::types::{CacheLine, CoreId};

/// Classification of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Only `CoreId` has touched the page with data accesses.
    PrivateTo(CoreId),
    /// Two or more cores touch the page (or a single core after an upgrade).
    SharedData,
    /// The page holds instructions (touched by instruction fetches).
    Instruction,
}

/// Which placement policy governs home selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Static-NUCA: all lines interleaved across all slices.
    AddressInterleaved,
    /// Reactive-NUCA: private pages local, shared data interleaved,
    /// instructions replicated per cluster of `instruction_cluster` cores.
    Rnuca {
        /// Cores per instruction-replication cluster (the paper uses 4).
        instruction_cluster: usize,
    },
    /// R-NUCA's data placement only (private local, everything else
    /// interleaved); used by the locality-aware protocol.
    RnucaDataOnly,
}

/// Maps cache lines to their LLC home slice.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeMap {
    policy: PlacementPolicy,
    num_cores: usize,
    line_bytes: usize,
    page_bytes: usize,
    pages: FastMap<u64, PageKind>,
}

impl HomeMap {
    /// Creates an empty home map.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the line/page sizes are not powers of
    /// two with `page_bytes >= line_bytes`.
    pub fn new(
        policy: PlacementPolicy,
        num_cores: usize,
        line_bytes: usize,
        page_bytes: usize,
    ) -> Self {
        assert!(num_cores > 0, "need at least one core");
        assert!(line_bytes.is_power_of_two() && page_bytes.is_power_of_two());
        assert!(page_bytes >= line_bytes, "page must be at least one line");
        if let PlacementPolicy::Rnuca {
            instruction_cluster,
        } = policy
        {
            assert!(
                instruction_cluster > 0,
                "instruction cluster must be non-empty"
            );
        }
        HomeMap {
            policy,
            num_cores,
            line_bytes,
            page_bytes,
            pages: FastMap::default(),
        }
    }

    /// The placement policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Number of pages that have been classified.
    pub fn classified_pages(&self) -> usize {
        self.pages.len()
    }

    /// Records one access for page classification (the profiling pass).
    ///
    /// Instruction fetches mark the page as an instruction page; data
    /// accesses mark it private to the first toucher and upgrade it to
    /// shared when a second core touches it.
    pub fn record_page_access(&mut self, line: CacheLine, core: CoreId, is_instruction: bool) {
        if self.policy == PlacementPolicy::AddressInterleaved {
            return; // classification never affects S-NUCA placement
        }
        let page = line.page(self.line_bytes, self.page_bytes);
        let entry = self.pages.entry(page);
        if is_instruction {
            entry
                .and_modify(|k| {
                    // Instruction classification is sticky: mixed pages count
                    // as instruction pages (R-NUCA treats them as such).
                    *k = PageKind::Instruction;
                })
                .or_insert(PageKind::Instruction);
        } else {
            entry
                .and_modify(|k| {
                    if let PageKind::PrivateTo(owner) = *k {
                        if owner != core {
                            *k = PageKind::SharedData;
                        }
                    }
                })
                .or_insert(PageKind::PrivateTo(core));
        }
    }

    /// The classification of the page containing `line`, if it has been
    /// observed by the profiling pass.
    pub fn page_kind(&self, line: CacheLine) -> Option<PageKind> {
        self.pages
            .get(&line.page(self.line_bytes, self.page_bytes))
            .copied()
    }

    fn interleaved_home(&self, line: CacheLine) -> CoreId {
        CoreId::new((line.index() % self.num_cores as u64) as usize)
    }

    fn cluster_home(&self, line: CacheLine, requester: CoreId, cluster: usize) -> CoreId {
        let cluster = cluster.max(1).min(self.num_cores);
        let base = (requester.index() / cluster) * cluster;
        let offset = (line.index() % cluster as u64) as usize;
        CoreId::new((base + offset).min(self.num_cores - 1))
    }

    /// The LLC home slice of `line` for a request issued by `requester`.
    ///
    /// For most lines the home is requester-independent; under R-NUCA's
    /// instruction replication the "home" is the designated slice of the
    /// requester's cluster (one copy per cluster).
    pub fn home_for(&self, line: CacheLine, requester: CoreId) -> CoreId {
        match self.policy {
            PlacementPolicy::AddressInterleaved => self.interleaved_home(line),
            PlacementPolicy::Rnuca {
                instruction_cluster,
            } => match self.page_kind(line) {
                Some(PageKind::PrivateTo(owner)) => owner,
                Some(PageKind::Instruction) => {
                    self.cluster_home(line, requester, instruction_cluster)
                }
                Some(PageKind::SharedData) | None => self.interleaved_home(line),
            },
            PlacementPolicy::RnucaDataOnly => match self.page_kind(line) {
                Some(PageKind::PrivateTo(owner)) => owner,
                _ => self.interleaved_home(line),
            },
        }
    }

    /// `true` if the home of `line` depends on which core requests it
    /// (cluster-replicated instructions under full R-NUCA).
    pub fn is_requester_dependent(&self, line: CacheLine) -> bool {
        matches!(
            (self.policy, self.page_kind(line)),
            (PlacementPolicy::Rnuca { .. }, Some(PageKind::Instruction))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: usize = 64;
    const PAGE: usize = 4096;

    fn line(i: u64) -> CacheLine {
        CacheLine::from_index(i)
    }

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn snuca_interleaves_everything() {
        let mut map = HomeMap::new(PlacementPolicy::AddressInterleaved, 64, LINE, PAGE);
        map.record_page_access(line(0), core(5), false);
        assert_eq!(map.classified_pages(), 0, "S-NUCA ignores classification");
        assert_eq!(map.home_for(line(0), core(9)), core(0));
        assert_eq!(map.home_for(line(65), core(9)), core(1));
        assert_eq!(map.home_for(line(63), core(9)), core(63));
        assert!(!map.is_requester_dependent(line(0)));
    }

    #[test]
    fn rnuca_private_pages_are_placed_locally() {
        let mut map = HomeMap::new(
            PlacementPolicy::Rnuca {
                instruction_cluster: 4,
            },
            64,
            LINE,
            PAGE,
        );
        // Page 0 (lines 0..63) touched only by core 7.
        for l in 0..4 {
            map.record_page_access(line(l), core(7), false);
        }
        assert_eq!(map.page_kind(line(0)), Some(PageKind::PrivateTo(core(7))));
        assert_eq!(map.home_for(line(3), core(7)), core(7));
        // Even another requester goes to the owning core's slice (the page is
        // still classified private).
        assert_eq!(map.home_for(line(3), core(1)), core(7));
    }

    #[test]
    fn rnuca_page_touched_by_two_cores_becomes_shared() {
        let mut map = HomeMap::new(
            PlacementPolicy::Rnuca {
                instruction_cluster: 4,
            },
            64,
            LINE,
            PAGE,
        );
        map.record_page_access(line(0), core(3), false);
        map.record_page_access(line(1), core(4), false); // same page, other core
        assert_eq!(map.page_kind(line(0)), Some(PageKind::SharedData));
        assert_eq!(map.home_for(line(0), core(3)), core(0));
        assert_eq!(map.home_for(line(1), core(3)), core(1));
    }

    #[test]
    fn rnuca_false_sharing_at_page_level_prevents_private_placement() {
        // BLACKSCHOLES-style false sharing: cores touch disjoint lines of the
        // same page; the page still cannot be private.
        let mut map = HomeMap::new(
            PlacementPolicy::Rnuca {
                instruction_cluster: 4,
            },
            64,
            LINE,
            PAGE,
        );
        map.record_page_access(line(0), core(0), false);
        map.record_page_access(line(32), core(1), false);
        assert_eq!(map.page_kind(line(0)), Some(PageKind::SharedData));
    }

    #[test]
    fn rnuca_instructions_are_cluster_replicated() {
        let mut map = HomeMap::new(
            PlacementPolicy::Rnuca {
                instruction_cluster: 4,
            },
            64,
            LINE,
            PAGE,
        );
        map.record_page_access(line(100), core(0), true);
        assert_eq!(map.page_kind(line(100)), Some(PageKind::Instruction));
        assert!(map.is_requester_dependent(line(100)));
        // The home stays within the requester's 4-core cluster.
        let home_for_0 = map.home_for(line(100), core(0));
        assert!(home_for_0.index() < 4);
        let home_for_62 = map.home_for(line(100), core(62));
        assert!((60..64).contains(&home_for_62.index()));
        // Different lines of the instruction page rotate across the cluster.
        map.record_page_access(line(101), core(0), true);
        map.record_page_access(line(102), core(0), true);
        map.record_page_access(line(103), core(0), true);
        let homes: std::collections::HashSet<_> =
            (100..104).map(|l| map.home_for(line(l), core(0))).collect();
        assert_eq!(homes.len(), 4);
    }

    #[test]
    fn rnuca_instruction_classification_is_sticky() {
        let mut map = HomeMap::new(
            PlacementPolicy::Rnuca {
                instruction_cluster: 4,
            },
            64,
            LINE,
            PAGE,
        );
        map.record_page_access(line(0), core(1), false);
        map.record_page_access(line(1), core(1), true);
        assert_eq!(map.page_kind(line(0)), Some(PageKind::Instruction));
    }

    #[test]
    fn rnuca_data_only_interleaves_instructions() {
        let mut map = HomeMap::new(PlacementPolicy::RnucaDataOnly, 64, LINE, PAGE);
        map.record_page_access(line(100), core(0), true);
        map.record_page_access(line(0), core(9), false);
        // Instructions are interleaved like shared data (no cluster
        // replication under the locality-aware protocol's placement).
        assert_eq!(map.home_for(line(100), core(0)), core(36));
        assert!(!map.is_requester_dependent(line(100)));
        // Private data still goes local.
        assert_eq!(map.home_for(line(0), core(3)), core(9));
    }

    #[test]
    fn unclassified_lines_fall_back_to_interleaving() {
        let map = HomeMap::new(PlacementPolicy::RnucaDataOnly, 64, LINE, PAGE);
        assert_eq!(map.page_kind(line(77)), None);
        assert_eq!(map.home_for(line(77), core(0)), core(13));
    }

    #[test]
    fn small_core_counts_keep_homes_in_range() {
        let mut map = HomeMap::new(
            PlacementPolicy::Rnuca {
                instruction_cluster: 4,
            },
            3,
            LINE,
            PAGE,
        );
        map.record_page_access(line(100), core(2), true);
        for l in 0..16 {
            for c in 0..3 {
                assert!(map.home_for(line(l), core(c)).index() < 3);
                assert!(map.home_for(line(100 + l), core(c)).index() < 3);
            }
        }
    }
}
