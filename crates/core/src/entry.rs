//! Metadata stored in each LLC slice entry.
//!
//! An LLC slice holds two kinds of lines (Figure 2):
//!
//! * **Home lines** — the line's directory entry lives here: MESI/ACKwise
//!   sharer tracking plus the locality classifier (Figure 4 / Figure 5).
//! * **Replica lines** — a copy installed for the local core by one of the
//!   replication schemes, carrying the replica-reuse counter and its own
//!   MESI state (replicas may be created in M/E for migratory data,
//!   Section 2.3.1).
//!
//! Both expose the number of local L1 copies so the slice's sharer-aware
//! replacement policy (Section 2.2.4) can prioritize lines with live L1
//! copies without extra messages.

use lad_cache::replacement::SharerCount;
use lad_coherence::directory::DirectoryEntry;
use lad_coherence::mesi::MesiState;

use crate::classifier::{ClassifierKind, LocalityClassifier};
use crate::counter::SaturatingCounter;

/// A home line: directory entry + locality classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomeEntry {
    /// Sharer tracking and the home request state machine.
    pub directory: DirectoryEntry,
    /// The per-line locality classifier.
    pub classifier: LocalityClassifier,
    /// `true` if the LLC copy is newer than DRAM (a dirty write-back was
    /// merged into it).
    pub dirty: bool,
}

impl HomeEntry {
    /// Creates a home entry with no sharers and an untrained classifier.
    pub fn new(ackwise_pointers: usize, classifier: ClassifierKind, rt: u32) -> Self {
        HomeEntry {
            directory: DirectoryEntry::new(ackwise_pointers),
            classifier: LocalityClassifier::new(classifier, rt),
            dirty: false,
        }
    }
}

impl SharerCount for HomeEntry {
    fn l1_sharer_count(&self) -> usize {
        self.directory.sharer_count()
    }
}

/// A replica line installed in the local LLC slice for the local core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaEntry {
    /// MESI state of the replica (replicas can be S, E or M).
    pub state: MesiState,
    /// The replica-reuse saturating counter (initialized to 1 on creation,
    /// incremented on every replica hit, Section 2.2.1).
    pub reuse: SaturatingCounter,
    /// `true` while the local L1 also holds a copy of the line.
    pub l1_copy: bool,
    /// `true` if the replica holds dirty data that must be merged back on
    /// eviction/invalidation.
    pub dirty: bool,
}

impl ReplicaEntry {
    /// Creates a freshly installed replica.
    ///
    /// The reuse counter starts at 1 (the access that created the replica
    /// counts as its first use) and the L1 also receives a copy.
    pub fn new(state: MesiState, rt: u32) -> Self {
        ReplicaEntry {
            state,
            reuse: SaturatingCounter::with_value(rt, 1),
            l1_copy: true,
            dirty: state == MesiState::Modified,
        }
    }

    /// Records a hit on the replica and returns the new reuse value.
    pub fn record_hit(&mut self) -> u32 {
        self.l1_copy = true;
        self.reuse.increment()
    }
}

impl SharerCount for ReplicaEntry {
    fn l1_sharer_count(&self) -> usize {
        usize::from(self.l1_copy)
    }
}

/// An LLC slice entry: either the home copy of a line or a local replica.
#[derive(Debug, Clone, PartialEq)]
pub enum LlcEntry {
    /// The line's home: directory + classifier (+ data).
    Home(HomeEntry),
    /// A locally installed replica (+ data).
    Replica(ReplicaEntry),
}

impl LlcEntry {
    /// `true` for home entries.
    pub fn is_home(&self) -> bool {
        matches!(self, LlcEntry::Home(_))
    }

    /// `true` for replica entries.
    pub fn is_replica(&self) -> bool {
        matches!(self, LlcEntry::Replica(_))
    }

    /// The home entry, if this is one.
    pub fn as_home(&self) -> Option<&HomeEntry> {
        match self {
            LlcEntry::Home(home) => Some(home),
            LlcEntry::Replica(_) => None,
        }
    }

    /// The home entry mutably, if this is one.
    pub fn as_home_mut(&mut self) -> Option<&mut HomeEntry> {
        match self {
            LlcEntry::Home(home) => Some(home),
            LlcEntry::Replica(_) => None,
        }
    }

    /// The replica entry, if this is one.
    pub fn as_replica(&self) -> Option<&ReplicaEntry> {
        match self {
            LlcEntry::Home(_) => None,
            LlcEntry::Replica(replica) => Some(replica),
        }
    }

    /// The replica entry mutably, if this is one.
    pub fn as_replica_mut(&mut self) -> Option<&mut ReplicaEntry> {
        match self {
            LlcEntry::Home(_) => None,
            LlcEntry::Replica(replica) => Some(replica),
        }
    }
}

impl SharerCount for LlcEntry {
    fn l1_sharer_count(&self) -> usize {
        match self {
            LlcEntry::Home(home) => home.l1_sharer_count(),
            LlcEntry::Replica(replica) => replica.l1_sharer_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_common::types::CoreId;

    #[test]
    fn home_entry_reports_directory_sharers() {
        let mut home = HomeEntry::new(4, ClassifierKind::Limited(3), 3);
        assert_eq!(home.l1_sharer_count(), 0);
        home.directory.handle_read(CoreId::new(1));
        home.directory.handle_read(CoreId::new(2));
        assert_eq!(home.l1_sharer_count(), 2);
        assert!(!home.dirty);
    }

    #[test]
    fn replica_entry_reuse_and_sharers() {
        let mut replica = ReplicaEntry::new(MesiState::Shared, 3);
        assert_eq!(replica.reuse.value(), 1, "creation counts as the first use");
        assert_eq!(replica.l1_sharer_count(), 1);
        assert!(!replica.dirty);
        assert_eq!(replica.record_hit(), 2);
        assert_eq!(replica.record_hit(), 3);
        assert_eq!(replica.record_hit(), 3, "saturates at RT");
        replica.l1_copy = false;
        assert_eq!(replica.l1_sharer_count(), 0);
    }

    #[test]
    fn modified_replicas_start_dirty() {
        let replica = ReplicaEntry::new(MesiState::Modified, 3);
        assert!(replica.dirty);
        let replica = ReplicaEntry::new(MesiState::Exclusive, 3);
        assert!(!replica.dirty);
    }

    #[test]
    fn llc_entry_accessors() {
        let mut entry = LlcEntry::Home(HomeEntry::new(4, ClassifierKind::Complete, 3));
        assert!(entry.is_home());
        assert!(!entry.is_replica());
        assert!(entry.as_home().is_some());
        assert!(entry.as_home_mut().is_some());
        assert!(entry.as_replica().is_none());
        assert!(entry.as_replica_mut().is_none());
        assert_eq!(entry.l1_sharer_count(), 0);

        let mut entry = LlcEntry::Replica(ReplicaEntry::new(MesiState::Shared, 3));
        assert!(entry.is_replica());
        assert!(entry.as_replica().is_some());
        assert!(entry.as_replica_mut().is_some());
        assert!(entry.as_home().is_none());
        assert_eq!(entry.l1_sharer_count(), 1);
    }
}
