//! Replication decision helpers for the baseline schemes.
//!
//! * [`VictimReplicationPolicy`] — Victim Replication (Zhang & Asanović)
//!   inserts L1 victims into the local LLC slice only when a "cheap" slot is
//!   available: an invalid way, an existing replica, or a home line with no
//!   L1 sharers.  It never consults reuse, which is exactly the behaviour
//!   the paper criticises (LLC pollution).
//! * [`AsrPolicy`] — Adaptive Selective Replication (Beckmann et al.)
//!   replicates only shared read-only lines (and instructions), with a
//!   probability given by the current replication level.  The paper does not
//!   model ASR's monitoring circuits; it sweeps the level over
//!   {0, 0.25, 0.5, 0.75, 1} and picks the best energy-delay product per
//!   benchmark, which is what the experiment harness does too.

use lad_cache::replacement::SharerCount;
use lad_common::rng::DeterministicRng;
use lad_common::types::DataClass;

use crate::entry::LlcEntry;

/// Victim Replication's insertion rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VictimReplicationPolicy;

impl VictimReplicationPolicy {
    /// Decides whether an L1 victim may be installed as a replica in the
    /// local LLC slice.
    ///
    /// `set_has_free_way` is true when the target set has an invalid way;
    /// otherwise `victim` is the line the replacement policy would evict.
    /// Insertion is allowed when the victim is itself a replica or is a home
    /// line with no L1 sharers; "global" (hot, shared) home lines are never
    /// displaced.
    pub fn should_insert_victim(self, set_has_free_way: bool, victim: Option<&LlcEntry>) -> bool {
        if set_has_free_way {
            return true;
        }
        match victim {
            Some(entry) if entry.is_replica() => true,
            Some(entry) => entry.l1_sharer_count() == 0,
            None => false,
        }
    }
}

/// ASR's probabilistic, shared-read-only-only replication rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsrPolicy {
    level: f64,
}

impl AsrPolicy {
    /// Creates the policy at a replication level in `[0, 1]`.
    pub fn new(level: f64) -> Self {
        AsrPolicy {
            level: level.clamp(0.0, 1.0),
        }
    }

    /// The replication level.
    pub fn level(self) -> f64 {
        self.level
    }

    /// The discrete levels the paper sweeps.
    pub const LEVELS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

    /// `true` if this data class is eligible for ASR replication
    /// (instructions and shared read-only data; ASR identifies the latter
    /// with a per-line sticky Shared bit — the reproduction uses the
    /// workload's ground-truth class instead).
    pub fn class_eligible(self, class: DataClass) -> bool {
        matches!(class, DataClass::Instruction | DataClass::SharedReadOnly)
    }

    /// Decides whether an eligible L1 victim is replicated, by drawing
    /// against the replication level.
    pub fn should_replicate(self, class: DataClass, rng: &mut DeterministicRng) -> bool {
        self.class_eligible(class) && rng.chance(self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierKind;
    use crate::entry::{HomeEntry, ReplicaEntry};
    use lad_coherence::mesi::MesiState;
    use lad_common::types::CoreId;

    #[test]
    fn vr_inserts_into_free_way() {
        let policy = VictimReplicationPolicy;
        assert!(policy.should_insert_victim(true, None));
    }

    #[test]
    fn vr_displaces_replicas_and_sharerless_home_lines() {
        let policy = VictimReplicationPolicy;
        let replica = LlcEntry::Replica(ReplicaEntry::new(MesiState::Shared, 3));
        assert!(policy.should_insert_victim(false, Some(&replica)));

        let idle_home = LlcEntry::Home(HomeEntry::new(4, ClassifierKind::Limited(3), 3));
        assert!(policy.should_insert_victim(false, Some(&idle_home)));

        let mut busy = HomeEntry::new(4, ClassifierKind::Limited(3), 3);
        busy.directory.handle_read(CoreId::new(2));
        let busy_home = LlcEntry::Home(busy);
        assert!(!policy.should_insert_victim(false, Some(&busy_home)));

        assert!(!policy.should_insert_victim(false, None));
    }

    #[test]
    fn asr_levels_cover_paper_sweep() {
        assert_eq!(AsrPolicy::LEVELS, [0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(AsrPolicy::new(2.0).level(), 1.0);
        assert_eq!(AsrPolicy::new(-0.5).level(), 0.0);
    }

    #[test]
    fn asr_only_replicates_read_only_classes() {
        let policy = AsrPolicy::new(1.0);
        let mut rng = DeterministicRng::seed_from(1);
        assert!(policy.should_replicate(DataClass::SharedReadOnly, &mut rng));
        assert!(policy.should_replicate(DataClass::Instruction, &mut rng));
        assert!(!policy.should_replicate(DataClass::SharedReadWrite, &mut rng));
        assert!(!policy.should_replicate(DataClass::Private, &mut rng));
        assert!(policy.class_eligible(DataClass::SharedReadOnly));
        assert!(!policy.class_eligible(DataClass::Private));
    }

    #[test]
    fn asr_level_zero_never_replicates_and_probability_scales() {
        let mut rng = DeterministicRng::seed_from(7);
        let never = AsrPolicy::new(0.0);
        assert!((0..100).all(|_| !never.should_replicate(DataClass::SharedReadOnly, &mut rng)));

        let half = AsrPolicy::new(0.5);
        let hits = (0..10_000)
            .filter(|_| half.should_replicate(DataClass::SharedReadOnly, &mut rng))
            .count();
        assert!((4300..5700).contains(&hits), "got {hits}");
    }
}
