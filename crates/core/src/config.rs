//! Configuration of the LLC management scheme under evaluation.

use lad_cache::llc_slice::LlcReplacementPolicy;

use crate::classifier::ClassifierKind;
use crate::scheme::{SchemeId, SchemeKind};

/// Every knob of the replication layer, bundled for an experiment run.
///
/// Use the per-scheme constructors ([`ReplicationConfig::locality_aware`],
/// [`ReplicationConfig::static_nuca`], ...) and the `with_*` builder methods
/// for variations:
///
/// ```
/// use lad_replication::config::ReplicationConfig;
/// use lad_replication::classifier::ClassifierKind;
///
/// let rt3 = ReplicationConfig::locality_aware(3);
/// assert_eq!(rt3.replication_threshold, 3);
///
/// let sweep = rt3.clone().with_classifier(ClassifierKind::Limited(5)).with_cluster_size(4);
/// assert_eq!(sweep.cluster_size, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationConfig {
    /// Which LLC management scheme to run.
    pub scheme: SchemeKind,
    /// The replication threshold RT of the locality-aware protocol
    /// (ignored by the baselines).  The paper's optimum is 3.
    pub replication_threshold: u32,
    /// Classifier organization (Complete or Limited_k).
    pub classifier: ClassifierKind,
    /// Cluster size for cluster-level replication (Section 2.3.4): at most
    /// one replica per cluster of this many cores.  1 (the paper's choice)
    /// replicates at the requesting core itself.
    pub cluster_size: usize,
    /// ASR replication level: the probability that an eligible L1 victim is
    /// replicated.  The paper sweeps {0, 0.25, 0.5, 0.75, 1}.
    pub asr_level: f64,
    /// LLC victim-selection policy (the paper's sharer-aware modified LRU by
    /// default; plain LRU for the Section 4.2 comparison).
    pub llc_replacement: LlcReplacementPolicy,
}

impl ReplicationConfig {
    /// The locality-aware protocol with replication threshold `rt` and the
    /// paper's default Limited₃ classifier.
    pub fn locality_aware(rt: u32) -> Self {
        ReplicationConfig {
            scheme: SchemeKind::LocalityAware,
            replication_threshold: rt,
            classifier: ClassifierKind::paper_default(),
            cluster_size: 1,
            asr_level: 0.0,
            llc_replacement: LlcReplacementPolicy::SharerAwareLru,
        }
    }

    /// The paper's headline configuration: RT-3, Limited₃, cluster size 1.
    pub fn paper_default() -> Self {
        Self::locality_aware(3)
    }

    /// The Static-NUCA baseline.
    pub fn static_nuca() -> Self {
        ReplicationConfig {
            scheme: SchemeKind::StaticNuca,
            ..Self::baseline_defaults()
        }
    }

    /// The Reactive-NUCA baseline.
    pub fn reactive_nuca() -> Self {
        ReplicationConfig {
            scheme: SchemeKind::ReactiveNuca,
            ..Self::baseline_defaults()
        }
    }

    /// The Victim Replication baseline.
    pub fn victim_replication() -> Self {
        ReplicationConfig {
            scheme: SchemeKind::VictimReplication,
            ..Self::baseline_defaults()
        }
    }

    /// The Adaptive Selective Replication baseline at a given replication
    /// level in `[0, 1]`.
    pub fn asr(level: f64) -> Self {
        ReplicationConfig {
            scheme: SchemeKind::AdaptiveSelectiveReplication,
            asr_level: level.clamp(0.0, 1.0),
            ..Self::baseline_defaults()
        }
    }

    fn baseline_defaults() -> Self {
        ReplicationConfig {
            scheme: SchemeKind::StaticNuca,
            replication_threshold: 3,
            classifier: ClassifierKind::paper_default(),
            cluster_size: 1,
            asr_level: 0.0,
            llc_replacement: LlcReplacementPolicy::SharerAwareLru,
        }
    }

    /// Sets the classifier organization (builder style).
    pub fn with_classifier(mut self, classifier: ClassifierKind) -> Self {
        self.classifier = classifier;
        self
    }

    /// Sets the cluster size (builder style).
    pub fn with_cluster_size(mut self, cluster_size: usize) -> Self {
        self.cluster_size = cluster_size.max(1);
        self
    }

    /// Sets the replication threshold (builder style).
    pub fn with_replication_threshold(mut self, rt: u32) -> Self {
        self.replication_threshold = rt.max(1);
        self
    }

    /// Sets the LLC replacement policy (builder style).
    pub fn with_llc_replacement(mut self, policy: LlcReplacementPolicy) -> Self {
        self.llc_replacement = policy;
        self
    }

    /// The typed identifier of this configuration in experiment matrices
    /// and comparisons: the scheme family plus its *primary* sweep
    /// parameter (`SchemeId::AsrAt` for the ASR level, `SchemeId::Rt` for
    /// the replication threshold).
    ///
    /// Secondary knobs (cluster size, classifier organization, LLC
    /// replacement) are *not* part of the id — `RT-3` and `RT-3/C-16` both
    /// map to `SchemeId::Rt(3)`.  Sweeps over those knobs either run
    /// ad hoc (`ExperimentRunner::run_one`, the way Figures 9 and 10 do) or
    /// register each variant under a distinct `SchemeId::Custom` name.
    pub fn scheme_id(&self) -> SchemeId {
        match self.scheme {
            SchemeKind::StaticNuca => SchemeId::StaticNuca,
            SchemeKind::ReactiveNuca => SchemeId::ReactiveNuca,
            SchemeKind::VictimReplication => SchemeId::VictimReplication,
            SchemeKind::AdaptiveSelectiveReplication => SchemeId::asr_at_level(self.asr_level),
            SchemeKind::LocalityAware => SchemeId::Rt(self.replication_threshold),
        }
    }

    /// A short, unique label for reports: `S-NUCA`, `R-NUCA`, `VR`,
    /// `ASR-0.50`, `RT-3`, `RT-3/C-4`, ...
    pub fn label(&self) -> String {
        match self.scheme {
            SchemeKind::StaticNuca | SchemeKind::ReactiveNuca | SchemeKind::VictimReplication => {
                self.scheme.label().to_string()
            }
            SchemeKind::AdaptiveSelectiveReplication => {
                format!("ASR-{:.2}", self.asr_level)
            }
            SchemeKind::LocalityAware => {
                if self.cluster_size > 1 {
                    format!("RT-{}/C-{}", self.replication_threshold, self.cluster_size)
                } else {
                    format!("RT-{}", self.replication_threshold)
                }
            }
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.replication_threshold == 0 {
            return Err("replication threshold must be at least 1".to_string());
        }
        if self.cluster_size == 0 {
            return Err("cluster size must be at least 1".to_string());
        }
        if let ClassifierKind::Limited(0) = self.classifier {
            return Err("limited classifier must track at least one core".to_string());
        }
        if !(0.0..=1.0).contains(&self.asr_level) {
            return Err("ASR level must lie in [0, 1]".to_string());
        }
        Ok(())
    }
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_scheme() {
        assert_eq!(
            ReplicationConfig::static_nuca().scheme,
            SchemeKind::StaticNuca
        );
        assert_eq!(
            ReplicationConfig::reactive_nuca().scheme,
            SchemeKind::ReactiveNuca
        );
        assert_eq!(
            ReplicationConfig::victim_replication().scheme,
            SchemeKind::VictimReplication
        );
        assert_eq!(
            ReplicationConfig::asr(0.5).scheme,
            SchemeKind::AdaptiveSelectiveReplication
        );
        assert_eq!(
            ReplicationConfig::locality_aware(3).scheme,
            SchemeKind::LocalityAware
        );
        assert_eq!(
            ReplicationConfig::default(),
            ReplicationConfig::paper_default()
        );
    }

    #[test]
    fn scheme_ids_carry_the_sweep_parameter() {
        assert_eq!(
            ReplicationConfig::static_nuca().scheme_id(),
            SchemeId::StaticNuca
        );
        assert_eq!(
            ReplicationConfig::reactive_nuca().scheme_id(),
            SchemeId::ReactiveNuca
        );
        assert_eq!(
            ReplicationConfig::victim_replication().scheme_id(),
            SchemeId::VictimReplication
        );
        assert_eq!(
            ReplicationConfig::asr(0.25).scheme_id(),
            SchemeId::AsrAt(25)
        );
        assert_eq!(
            ReplicationConfig::locality_aware(8).scheme_id(),
            SchemeId::Rt(8)
        );
        // The id label agrees with the report label (cluster size 1).
        for config in [
            ReplicationConfig::static_nuca(),
            ReplicationConfig::asr(0.5),
            ReplicationConfig::locality_aware(3),
        ] {
            assert_eq!(config.scheme_id().label(), config.label());
        }
    }

    #[test]
    fn asr_level_is_clamped() {
        assert_eq!(ReplicationConfig::asr(2.0).asr_level, 1.0);
        assert_eq!(ReplicationConfig::asr(-1.0).asr_level, 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(ReplicationConfig::static_nuca().label(), "S-NUCA");
        assert_eq!(ReplicationConfig::reactive_nuca().label(), "R-NUCA");
        assert_eq!(ReplicationConfig::victim_replication().label(), "VR");
        assert_eq!(ReplicationConfig::asr(0.25).label(), "ASR-0.25");
        assert_eq!(ReplicationConfig::locality_aware(1).label(), "RT-1");
        assert_eq!(ReplicationConfig::locality_aware(8).label(), "RT-8");
        assert_eq!(
            ReplicationConfig::locality_aware(3)
                .with_cluster_size(16)
                .label(),
            "RT-3/C-16"
        );
    }

    #[test]
    fn builders_and_validation() {
        let config = ReplicationConfig::locality_aware(3)
            .with_classifier(ClassifierKind::Complete)
            .with_cluster_size(4)
            .with_replication_threshold(5)
            .with_llc_replacement(LlcReplacementPolicy::PlainLru);
        assert_eq!(config.classifier, ClassifierKind::Complete);
        assert_eq!(config.cluster_size, 4);
        assert_eq!(config.replication_threshold, 5);
        assert_eq!(config.llc_replacement, LlcReplacementPolicy::PlainLru);
        config.validate().unwrap();

        // Builder floors keep the config valid.
        assert_eq!(
            ReplicationConfig::paper_default()
                .with_cluster_size(0)
                .cluster_size,
            1
        );
        assert_eq!(
            ReplicationConfig::paper_default()
                .with_replication_threshold(0)
                .replication_threshold,
            1
        );

        let mut bad = ReplicationConfig::paper_default();
        bad.replication_threshold = 0;
        assert!(bad.validate().is_err());
        let mut bad = ReplicationConfig::paper_default();
        bad.cluster_size = 0;
        assert!(bad.validate().is_err());
        let mut bad = ReplicationConfig::paper_default();
        bad.classifier = ClassifierKind::Limited(0);
        assert!(bad.validate().is_err());
        let mut bad = ReplicationConfig::paper_default();
        bad.asr_level = 3.0;
        assert!(bad.validate().is_err());
    }
}
