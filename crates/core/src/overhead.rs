//! Storage-overhead model (Section 2.4.1).
//!
//! Reproduces the paper's arithmetic for the extra LLC tag-array bits the
//! locality-aware protocol needs, and the comparison against the ACKwise₄
//! and full-map directory baselines:
//!
//! * replica-reuse counter: 2 bits / entry → 1 KB per 256 KB slice,
//! * Limited₃ classifier: 27 bits / entry → 13.5 KB per slice,
//! * Complete classifier: 192 bits / entry → 96 KB per slice,
//! * ACKwise₄ pointers: 24 bits / entry → 12 KB per slice,
//! * full-map sharer vector: 64 bits / entry → 32 KB per slice.

use crate::classifier::ClassifierKind;

/// Number of bits needed to name one core.
pub fn core_id_bits(num_cores: usize) -> u32 {
    assert!(num_cores > 0, "need at least one core");
    (num_cores as u64)
        .next_power_of_two()
        .trailing_zeros()
        .max(1)
}

/// Number of bits of one saturating reuse counter for a given replication
/// threshold.
pub fn reuse_counter_bits(rt: u32) -> u32 {
    assert!(rt > 0, "replication threshold must be positive");
    u32::BITS - rt.leading_zeros()
}

/// Classifier bits added to one LLC directory entry.
///
/// Per tracked core the Limited_k classifier stores a core id, a replication
/// mode bit and a home-reuse counter; the Complete classifier stores a mode
/// bit and a home-reuse counter for every core (no ids needed).
pub fn classifier_bits_per_entry(kind: ClassifierKind, num_cores: usize, rt: u32) -> u32 {
    let reuse = reuse_counter_bits(rt);
    match kind {
        ClassifierKind::Complete => num_cores as u32 * (1 + reuse),
        ClassifierKind::Limited(k) => k as u32 * (1 + reuse + core_id_bits(num_cores)),
    }
}

/// Replica-reuse counter bits added to one LLC directory entry.
pub fn replica_reuse_bits_per_entry(rt: u32) -> u32 {
    reuse_counter_bits(rt)
}

/// ACKwise_p sharer-pointer bits per directory entry.
pub fn ackwise_bits_per_entry(pointers: usize, num_cores: usize) -> u32 {
    pointers as u32 * core_id_bits(num_cores)
}

/// Full-map sharer-vector bits per directory entry.
pub fn full_map_bits_per_entry(num_cores: usize) -> u32 {
    num_cores as u32
}

/// Converts per-entry bits into kilobytes for a slice with `entries` lines.
pub fn bits_to_kilobytes(bits_per_entry: u32, entries: usize) -> f64 {
    bits_per_entry as f64 * entries as f64 / 8.0 / 1024.0
}

/// Full storage summary for one LLC slice.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageOverhead {
    /// Classifier storage per slice, in KB.
    pub classifier_kb: f64,
    /// Replica-reuse counter storage per slice, in KB.
    pub replica_reuse_kb: f64,
    /// ACKwise pointer storage per slice, in KB.
    pub ackwise_kb: f64,
    /// Full-map directory storage per slice, in KB (for comparison).
    pub full_map_kb: f64,
    /// LLC slice data capacity, in KB.
    pub slice_capacity_kb: f64,
}

impl StorageOverhead {
    /// Computes the summary for a slice of `entries` lines of
    /// `line_bytes` bytes on a machine with `num_cores` cores.
    pub fn compute(
        kind: ClassifierKind,
        num_cores: usize,
        rt: u32,
        ackwise_pointers: usize,
        entries: usize,
        line_bytes: usize,
    ) -> Self {
        StorageOverhead {
            classifier_kb: bits_to_kilobytes(
                classifier_bits_per_entry(kind, num_cores, rt),
                entries,
            ),
            replica_reuse_kb: bits_to_kilobytes(replica_reuse_bits_per_entry(rt), entries),
            ackwise_kb: bits_to_kilobytes(
                ackwise_bits_per_entry(ackwise_pointers, num_cores),
                entries,
            ),
            full_map_kb: bits_to_kilobytes(full_map_bits_per_entry(num_cores), entries),
            slice_capacity_kb: entries as f64 * line_bytes as f64 / 1024.0,
        }
    }

    /// Total extra storage the locality-aware protocol adds on top of the
    /// ACKwise baseline (classifier + replica-reuse), in KB.
    pub fn protocol_overhead_kb(&self) -> f64 {
        self.classifier_kb + self.replica_reuse_kb
    }

    /// Protocol overhead as a fraction of the slice data capacity.
    pub fn overhead_fraction_of_slice(&self) -> f64 {
        self.protocol_overhead_kb() / self.slice_capacity_kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENTRIES: usize = 4096; // 256 KB / 64 B
    const CORES: usize = 64;
    const RT: u32 = 3;

    #[test]
    fn bit_widths() {
        assert_eq!(core_id_bits(64), 6);
        assert_eq!(core_id_bits(1024), 10);
        assert_eq!(core_id_bits(1), 1);
        assert_eq!(reuse_counter_bits(3), 2);
        assert_eq!(reuse_counter_bits(8), 4);
        assert_eq!(reuse_counter_bits(1), 1);
    }

    #[test]
    fn per_entry_bits_match_section_2_4() {
        // Limited3: 3 x (2-bit reuse + 1 mode bit + 6-bit core id) = 27 bits.
        assert_eq!(
            classifier_bits_per_entry(ClassifierKind::Limited(3), CORES, RT),
            27
        );
        // Complete: 64 x 3 = 192 bits.
        assert_eq!(
            classifier_bits_per_entry(ClassifierKind::Complete, CORES, RT),
            192
        );
        assert_eq!(replica_reuse_bits_per_entry(RT), 2);
        // ACKwise4: 4 x 6 = 24 bits; full map: 64 bits.
        assert_eq!(ackwise_bits_per_entry(4, CORES), 24);
        assert_eq!(full_map_bits_per_entry(CORES), 64);
    }

    #[test]
    fn per_slice_kilobytes_match_paper() {
        let limited =
            StorageOverhead::compute(ClassifierKind::Limited(3), CORES, RT, 4, ENTRIES, 64);
        assert!((limited.classifier_kb - 13.5).abs() < 1e-9);
        assert!((limited.replica_reuse_kb - 1.0).abs() < 1e-9);
        assert!((limited.ackwise_kb - 12.0).abs() < 1e-9);
        assert!((limited.full_map_kb - 32.0).abs() < 1e-9);
        assert!((limited.slice_capacity_kb - 256.0).abs() < 1e-9);
        // 14.5 KB per slice, the number quoted in the conclusion.
        assert!((limited.protocol_overhead_kb() - 14.5).abs() < 1e-9);

        let complete =
            StorageOverhead::compute(ClassifierKind::Complete, CORES, RT, 4, ENTRIES, 64);
        assert!((complete.classifier_kb - 96.0).abs() < 1e-9);
        assert!((complete.protocol_overhead_kb() - 97.0).abs() < 1e-9);
    }

    #[test]
    fn limited3_with_ackwise_is_cheaper_than_full_map() {
        let o = StorageOverhead::compute(ClassifierKind::Limited(3), CORES, RT, 4, ENTRIES, 64);
        // Section 2.4.1: Limited3 + ACKwise4 uses slightly less storage than
        // a Full Map directory alone... compared including the full-map's own
        // lack of classifier: 12 + 14.5 = 26.5 KB < 32 KB.
        assert!(o.ackwise_kb + o.protocol_overhead_kb() < o.full_map_kb);
    }

    #[test]
    fn overhead_fraction_is_a_few_percent_for_limited3() {
        let o = StorageOverhead::compute(ClassifierKind::Limited(3), CORES, RT, 4, ENTRIES, 64);
        let f = o.overhead_fraction_of_slice();
        assert!(f > 0.04 && f < 0.07, "got {f}");
        // The complete classifier costs roughly 6-7x more.
        let c = StorageOverhead::compute(ClassifierKind::Complete, CORES, RT, 4, ENTRIES, 64);
        assert!(c.overhead_fraction_of_slice() > 5.0 * f);
    }

    #[test]
    fn limited5_costs_9kb_more_than_limited3() {
        // Section 4.3: the Limited5 classifier incurs an additional 9 KB per
        // core compared to Limited3.
        let l3 = StorageOverhead::compute(ClassifierKind::Limited(3), CORES, RT, 4, ENTRIES, 64);
        let l5 = StorageOverhead::compute(ClassifierKind::Limited(5), CORES, RT, 4, ENTRIES, 64);
        assert!((l5.classifier_kb - l3.classifier_kb - 9.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_with_core_count() {
        // The complete classifier's overhead grows linearly with cores (the
        // "over 5x at 1024 cores" claim), the limited classifier's only with
        // the core-id width.
        let complete_64 = classifier_bits_per_entry(ClassifierKind::Complete, 64, RT) as f64;
        let complete_1024 = classifier_bits_per_entry(ClassifierKind::Complete, 1024, RT) as f64;
        assert_eq!(complete_1024 / complete_64, 16.0);
        let limited_64 = classifier_bits_per_entry(ClassifierKind::Limited(3), 64, RT);
        let limited_1024 = classifier_bits_per_entry(ClassifierKind::Limited(3), 1024, RT);
        assert_eq!(limited_64, 27);
        assert_eq!(limited_1024, 39);
        // At 1024 cores the complete classifier costs more than the LLC slice
        // data itself ("over 5x" the baseline storage overhead in the paper).
        let o = StorageOverhead::compute(ClassifierKind::Complete, 1024, RT, 4, ENTRIES, 64);
        assert!(o.overhead_fraction_of_slice() > 5.0 * 0.30);
    }
}
