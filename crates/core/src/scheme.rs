//! The LLC management schemes evaluated in the paper (Section 3.3).

use std::fmt;

use crate::placement::PlacementPolicy;

/// The five LLC management schemes of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Static-NUCA: all cache lines address-interleaved across the LLC
    /// slices, no replication.
    StaticNuca,
    /// Reactive-NUCA: private data placed at the requester's slice,
    /// instructions replicated per 4-core cluster, shared data interleaved.
    ReactiveNuca,
    /// Victim Replication: the local LLC slice acts as a victim cache for L1
    /// evictions (Zhang & Asanović).
    VictimReplication,
    /// Adaptive Selective Replication: shared read-only lines are replicated
    /// on L1 eviction with a per-benchmark probability level (Beckmann et
    /// al.).
    AdaptiveSelectiveReplication,
    /// The paper's locality-aware replication protocol.
    LocalityAware,
}

impl SchemeKind {
    /// All schemes, in the order the paper's figures list them
    /// (S-NUCA, R-NUCA, VR, ASR, then the locality-aware RT variants).
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::StaticNuca,
        SchemeKind::ReactiveNuca,
        SchemeKind::VictimReplication,
        SchemeKind::AdaptiveSelectiveReplication,
        SchemeKind::LocalityAware,
    ];

    /// Short label used in reports (matches the paper's figure axes).
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::StaticNuca => "S-NUCA",
            SchemeKind::ReactiveNuca => "R-NUCA",
            SchemeKind::VictimReplication => "VR",
            SchemeKind::AdaptiveSelectiveReplication => "ASR",
            SchemeKind::LocalityAware => "RT",
        }
    }

    /// The home-placement policy each scheme uses.
    ///
    /// VR and ASR are built on top of Static-NUCA (the paper models them that
    /// way); R-NUCA uses its page-grain placement with cluster-replicated
    /// instructions; the locality-aware protocol reuses R-NUCA's data
    /// placement but replicates instructions through its own classifier.
    pub fn placement_policy(self) -> PlacementPolicy {
        match self {
            SchemeKind::StaticNuca
            | SchemeKind::VictimReplication
            | SchemeKind::AdaptiveSelectiveReplication => PlacementPolicy::AddressInterleaved,
            SchemeKind::ReactiveNuca => PlacementPolicy::Rnuca {
                instruction_cluster: 4,
            },
            SchemeKind::LocalityAware => PlacementPolicy::RnucaDataOnly,
        }
    }

    /// `true` if the scheme ever installs replicas in the requester's local
    /// LLC slice.
    pub fn replicates(self) -> bool {
        !matches!(self, SchemeKind::StaticNuca | SchemeKind::ReactiveNuca)
    }

    /// `true` if replicas are created on L1 evictions (VR, ASR) rather than
    /// on L1 misses (locality-aware).
    pub fn replicates_on_eviction(self) -> bool {
        matches!(
            self,
            SchemeKind::VictimReplication | SchemeKind::AdaptiveSelectiveReplication
        )
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed identifier for one experiment configuration of the benchmark ×
/// scheme matrix.
///
/// Where [`SchemeKind`] names the five protocol *families*, a `SchemeId`
/// names one *column of a figure*: `Rt(3)` and `Rt(8)` are distinct ids of
/// the same family, the ASR sweep runs as `AsrAt(level)` entries that the
/// comparison collapses into the single [`SchemeId::Asr`] column, and
/// out-of-crate policies registered with a
/// [`SchemeRegistry`](crate::policy::SchemeRegistry) use
/// [`SchemeId::Custom`].  Experiment results are keyed by `SchemeId` instead
/// of bare label strings, so a typo'd lookup is a compile error or a typed
/// [`UnknownScheme`] — never a silent `NaN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SchemeId {
    /// The Static-NUCA baseline (`S-NUCA`).
    StaticNuca,
    /// The Reactive-NUCA baseline (`R-NUCA`).
    ReactiveNuca,
    /// The Victim Replication baseline (`VR`).
    VictimReplication,
    /// ASR collapsed to its best per-benchmark replication level (`ASR`) —
    /// the paper's methodology for Figures 6–8.  This id exists only as a
    /// comparison column; individual runs use [`SchemeId::AsrAt`].
    Asr,
    /// ASR at a fixed replication level, stored in hundredths
    /// (`AsrAt(50)` is level 0.50, labelled `ASR-0.50`).
    AsrAt(u8),
    /// The locality-aware protocol at replication threshold `RT`
    /// (`Rt(3)` is the paper's headline `RT-3`).
    Rt(u32),
    /// An out-of-crate scheme registered by name.
    ///
    /// Names matching a built-in label (`S-NUCA`, `VR`, `ASR`, `ASR-x.xx`,
    /// `RT-k`, ...) are reserved: [`SchemeId::parse`] maps such labels back
    /// to the built-in variant, so a `Custom` id using one would change
    /// identity across a JSON round trip.
    Custom(&'static str),
}

impl SchemeId {
    /// The short label used in reports and figure axes
    /// (`S-NUCA`, `ASR-0.50`, `RT-3`, ...).
    pub fn label(self) -> String {
        self.to_string()
    }

    /// The [`SchemeId::AsrAt`] id for a replication level in `[0, 1]` —
    /// the single place the level-to-hundredths convention lives.
    pub fn asr_at_level(level: f64) -> SchemeId {
        SchemeId::AsrAt((level.clamp(0.0, 1.0) * 100.0).round() as u8)
    }

    /// Parses a label back into a `SchemeId`.
    ///
    /// Labels produced by [`SchemeId::label`] for the built-in schemes parse
    /// back exactly.  Any other label becomes [`SchemeId::Custom`], backed
    /// by a process-wide intern table (each distinct name is leaked once to
    /// obtain the `&'static str`), so memory stays bounded by the number of
    /// distinct custom names — still, this is meant for configuration/CLI/
    /// report parsing, not for hot loops.
    pub fn parse(label: &str) -> SchemeId {
        match label {
            "S-NUCA" => return SchemeId::StaticNuca,
            "R-NUCA" => return SchemeId::ReactiveNuca,
            "VR" => return SchemeId::VictimReplication,
            "ASR" => return SchemeId::Asr,
            _ => {}
        }
        if let Some(rest) = label.strip_prefix("RT-") {
            if let Ok(rt) = rest.parse::<u32>() {
                return SchemeId::Rt(rt);
            }
        }
        if let Some(rest) = label.strip_prefix("ASR-") {
            if let Ok(level) = rest.parse::<f64>() {
                if (0.0..=1.0).contains(&level) {
                    return SchemeId::asr_at_level(level);
                }
            }
        }
        SchemeId::Custom(intern_label(label))
    }

    /// The protocol family implementing this scheme, or `None` for
    /// [`SchemeId::Custom`] ids (whose behaviour is defined by the
    /// registered policy, not by a built-in family).
    pub fn kind(self) -> Option<SchemeKind> {
        match self {
            SchemeId::StaticNuca => Some(SchemeKind::StaticNuca),
            SchemeId::ReactiveNuca => Some(SchemeKind::ReactiveNuca),
            SchemeId::VictimReplication => Some(SchemeKind::VictimReplication),
            SchemeId::Asr | SchemeId::AsrAt(_) => Some(SchemeKind::AdaptiveSelectiveReplication),
            SchemeId::Rt(_) => Some(SchemeKind::LocalityAware),
            SchemeId::Custom(_) => None,
        }
    }
}

/// Process-wide intern table for custom scheme names parsed from labels:
/// each distinct name is leaked exactly once, so repeated parsing (e.g. of
/// large JSON reports) does not grow memory per call.
fn intern_label(label: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock, PoisonError};

    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    // A poisoned table is still structurally sound (inserts are atomic
    // Box::leak + BTreeSet insert), so interning proceeds.
    let mut table = INTERNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    match table.get(label) {
        Some(existing) => existing,
        None => {
            let leaked: &'static str = Box::leak(label.to_string().into_boxed_str());
            table.insert(leaked);
            leaked
        }
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeId::StaticNuca => f.write_str("S-NUCA"),
            SchemeId::ReactiveNuca => f.write_str("R-NUCA"),
            SchemeId::VictimReplication => f.write_str("VR"),
            SchemeId::Asr => f.write_str("ASR"),
            SchemeId::AsrAt(level) => write!(f, "ASR-{:.2}", f64::from(*level) / 100.0),
            SchemeId::Rt(rt) => write!(f, "RT-{rt}"),
            SchemeId::Custom(name) => f.write_str(name),
        }
    }
}

/// A lookup named a scheme that the registry / comparison does not contain.
///
/// Returned instead of silently producing `None` or `NaN`, so experiment
/// code fails loudly on a missing baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScheme {
    /// The scheme that was looked up.
    pub scheme: SchemeId,
    /// Where the lookup failed (a benchmark label, `"registry"`, ...).
    pub context: String,
}

impl UnknownScheme {
    /// Creates the error for a lookup of `scheme` in `context`.
    pub fn new(scheme: SchemeId, context: impl Into<String>) -> Self {
        UnknownScheme {
            scheme,
            context: context.into(),
        }
    }
}

impl fmt::Display for UnknownScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown scheme {} ({})", self.scheme, self.context)
    }
}

impl std::error::Error for UnknownScheme {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_axes() {
        assert_eq!(SchemeKind::StaticNuca.label(), "S-NUCA");
        assert_eq!(SchemeKind::ReactiveNuca.label(), "R-NUCA");
        assert_eq!(SchemeKind::VictimReplication.label(), "VR");
        assert_eq!(SchemeKind::AdaptiveSelectiveReplication.label(), "ASR");
        assert_eq!(SchemeKind::LocalityAware.label(), "RT");
        assert_eq!(SchemeKind::ALL.len(), 5);
    }

    #[test]
    fn placement_policies() {
        assert_eq!(
            SchemeKind::StaticNuca.placement_policy(),
            PlacementPolicy::AddressInterleaved
        );
        assert_eq!(
            SchemeKind::VictimReplication.placement_policy(),
            PlacementPolicy::AddressInterleaved
        );
        assert_eq!(
            SchemeKind::AdaptiveSelectiveReplication.placement_policy(),
            PlacementPolicy::AddressInterleaved
        );
        assert_eq!(
            SchemeKind::ReactiveNuca.placement_policy(),
            PlacementPolicy::Rnuca {
                instruction_cluster: 4
            }
        );
        assert_eq!(
            SchemeKind::LocalityAware.placement_policy(),
            PlacementPolicy::RnucaDataOnly
        );
    }

    #[test]
    fn replication_flags() {
        assert!(!SchemeKind::StaticNuca.replicates());
        assert!(!SchemeKind::ReactiveNuca.replicates());
        assert!(SchemeKind::VictimReplication.replicates());
        assert!(SchemeKind::AdaptiveSelectiveReplication.replicates());
        assert!(SchemeKind::LocalityAware.replicates());

        assert!(SchemeKind::VictimReplication.replicates_on_eviction());
        assert!(SchemeKind::AdaptiveSelectiveReplication.replicates_on_eviction());
        assert!(!SchemeKind::LocalityAware.replicates_on_eviction());
        assert!(!SchemeKind::StaticNuca.replicates_on_eviction());
    }

    #[test]
    fn scheme_id_labels_match_paper_axes() {
        assert_eq!(SchemeId::StaticNuca.label(), "S-NUCA");
        assert_eq!(SchemeId::ReactiveNuca.label(), "R-NUCA");
        assert_eq!(SchemeId::VictimReplication.label(), "VR");
        assert_eq!(SchemeId::Asr.label(), "ASR");
        assert_eq!(SchemeId::AsrAt(50).label(), "ASR-0.50");
        assert_eq!(SchemeId::AsrAt(100).label(), "ASR-1.00");
        assert_eq!(SchemeId::Rt(3).label(), "RT-3");
        assert_eq!(SchemeId::Custom("ALWAYS").label(), "ALWAYS");
    }

    #[test]
    fn scheme_id_parse_roundtrips_builtins() {
        for id in [
            SchemeId::StaticNuca,
            SchemeId::ReactiveNuca,
            SchemeId::VictimReplication,
            SchemeId::Asr,
            SchemeId::AsrAt(0),
            SchemeId::AsrAt(25),
            SchemeId::AsrAt(75),
            SchemeId::Rt(1),
            SchemeId::Rt(3),
            SchemeId::Rt(8),
        ] {
            assert_eq!(SchemeId::parse(&id.label()), id, "{id} must round-trip");
        }
        // Unknown labels become Custom ids that still round-trip.
        let custom = SchemeId::parse("MY-SCHEME");
        assert_eq!(custom, SchemeId::Custom("MY-SCHEME"));
        assert_eq!(SchemeId::parse(&custom.label()), custom);
        // A cluster-variant label is not a plain RT id.
        assert_eq!(SchemeId::parse("RT-3/C-16"), SchemeId::Custom("RT-3/C-16"));
    }

    #[test]
    fn custom_labels_are_interned_once() {
        let first = match SchemeId::parse("INTERN-ME") {
            SchemeId::Custom(name) => name,
            other => panic!("expected a custom id, got {other:?}"),
        };
        let second = match SchemeId::parse("INTERN-ME") {
            SchemeId::Custom(name) => name,
            other => panic!("expected a custom id, got {other:?}"),
        };
        // Pointer-identical, not merely equal: repeated parses reuse the
        // single leaked allocation.
        assert!(std::ptr::eq(first, second));
    }

    #[test]
    fn scheme_id_maps_to_family() {
        assert_eq!(SchemeId::StaticNuca.kind(), Some(SchemeKind::StaticNuca));
        assert_eq!(
            SchemeId::Asr.kind(),
            Some(SchemeKind::AdaptiveSelectiveReplication)
        );
        assert_eq!(
            SchemeId::AsrAt(25).kind(),
            Some(SchemeKind::AdaptiveSelectiveReplication)
        );
        assert_eq!(SchemeId::Rt(8).kind(), Some(SchemeKind::LocalityAware));
        assert_eq!(SchemeId::Custom("X").kind(), None);
    }

    #[test]
    fn unknown_scheme_error_is_descriptive() {
        let err = UnknownScheme::new(SchemeId::VictimReplication, "BARNES");
        assert_eq!(err.scheme, SchemeId::VictimReplication);
        assert_eq!(err.to_string(), "unknown scheme VR (BARNES)");
    }
}
