//! The LLC management schemes evaluated in the paper (Section 3.3).

use std::fmt;

use crate::placement::PlacementPolicy;

/// The five LLC management schemes of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Static-NUCA: all cache lines address-interleaved across the LLC
    /// slices, no replication.
    StaticNuca,
    /// Reactive-NUCA: private data placed at the requester's slice,
    /// instructions replicated per 4-core cluster, shared data interleaved.
    ReactiveNuca,
    /// Victim Replication: the local LLC slice acts as a victim cache for L1
    /// evictions (Zhang & Asanović).
    VictimReplication,
    /// Adaptive Selective Replication: shared read-only lines are replicated
    /// on L1 eviction with a per-benchmark probability level (Beckmann et
    /// al.).
    AdaptiveSelectiveReplication,
    /// The paper's locality-aware replication protocol.
    LocalityAware,
}

impl SchemeKind {
    /// All schemes, in the order the paper's figures list them
    /// (S-NUCA, R-NUCA, VR, ASR, then the locality-aware RT variants).
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::StaticNuca,
        SchemeKind::ReactiveNuca,
        SchemeKind::VictimReplication,
        SchemeKind::AdaptiveSelectiveReplication,
        SchemeKind::LocalityAware,
    ];

    /// Short label used in reports (matches the paper's figure axes).
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::StaticNuca => "S-NUCA",
            SchemeKind::ReactiveNuca => "R-NUCA",
            SchemeKind::VictimReplication => "VR",
            SchemeKind::AdaptiveSelectiveReplication => "ASR",
            SchemeKind::LocalityAware => "RT",
        }
    }

    /// The home-placement policy each scheme uses.
    ///
    /// VR and ASR are built on top of Static-NUCA (the paper models them that
    /// way); R-NUCA uses its page-grain placement with cluster-replicated
    /// instructions; the locality-aware protocol reuses R-NUCA's data
    /// placement but replicates instructions through its own classifier.
    pub fn placement_policy(self) -> PlacementPolicy {
        match self {
            SchemeKind::StaticNuca
            | SchemeKind::VictimReplication
            | SchemeKind::AdaptiveSelectiveReplication => PlacementPolicy::AddressInterleaved,
            SchemeKind::ReactiveNuca => PlacementPolicy::Rnuca { instruction_cluster: 4 },
            SchemeKind::LocalityAware => PlacementPolicy::RnucaDataOnly,
        }
    }

    /// `true` if the scheme ever installs replicas in the requester's local
    /// LLC slice.
    pub fn replicates(self) -> bool {
        !matches!(self, SchemeKind::StaticNuca | SchemeKind::ReactiveNuca)
    }

    /// `true` if replicas are created on L1 evictions (VR, ASR) rather than
    /// on L1 misses (locality-aware).
    pub fn replicates_on_eviction(self) -> bool {
        matches!(
            self,
            SchemeKind::VictimReplication | SchemeKind::AdaptiveSelectiveReplication
        )
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_axes() {
        assert_eq!(SchemeKind::StaticNuca.label(), "S-NUCA");
        assert_eq!(SchemeKind::ReactiveNuca.label(), "R-NUCA");
        assert_eq!(SchemeKind::VictimReplication.label(), "VR");
        assert_eq!(SchemeKind::AdaptiveSelectiveReplication.label(), "ASR");
        assert_eq!(SchemeKind::LocalityAware.label(), "RT");
        assert_eq!(SchemeKind::ALL.len(), 5);
    }

    #[test]
    fn placement_policies() {
        assert_eq!(
            SchemeKind::StaticNuca.placement_policy(),
            PlacementPolicy::AddressInterleaved
        );
        assert_eq!(
            SchemeKind::VictimReplication.placement_policy(),
            PlacementPolicy::AddressInterleaved
        );
        assert_eq!(
            SchemeKind::AdaptiveSelectiveReplication.placement_policy(),
            PlacementPolicy::AddressInterleaved
        );
        assert_eq!(
            SchemeKind::ReactiveNuca.placement_policy(),
            PlacementPolicy::Rnuca { instruction_cluster: 4 }
        );
        assert_eq!(
            SchemeKind::LocalityAware.placement_policy(),
            PlacementPolicy::RnucaDataOnly
        );
    }

    #[test]
    fn replication_flags() {
        assert!(!SchemeKind::StaticNuca.replicates());
        assert!(!SchemeKind::ReactiveNuca.replicates());
        assert!(SchemeKind::VictimReplication.replicates());
        assert!(SchemeKind::AdaptiveSelectiveReplication.replicates());
        assert!(SchemeKind::LocalityAware.replicates());

        assert!(SchemeKind::VictimReplication.replicates_on_eviction());
        assert!(SchemeKind::AdaptiveSelectiveReplication.replicates_on_eviction());
        assert!(!SchemeKind::LocalityAware.replicates_on_eviction());
        assert!(!SchemeKind::StaticNuca.replicates_on_eviction());
    }
}
